"""E10 — goodput vs reordering intensity.

Regenerates the experiment's table into results/e10_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e10_reorder_sweep for the full story.
"""

from conftest import run_and_record


def test_e10_reorder_sweep(benchmark, results_dir):
    run_and_record(benchmark, "e10", results_dir)
