"""E11 — SR / go-back-N / alternating bit as degenerate corners.

Regenerates the experiment's table into results/e11_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e11_special_cases for the full story.
"""

from conftest import run_and_record


def test_e11_special_cases(benchmark, results_dir):
    run_and_record(benchmark, "e11", results_dir)
