"""E12 — premature-timeout safety-margin ablation.

Regenerates the experiment's table into results/e12_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e12_timeout_ablation for the full story.
"""

from conftest import run_and_record


def test_e12_timeout_ablation(benchmark, results_dir):
    run_and_record(benchmark, "e12", results_dir)
