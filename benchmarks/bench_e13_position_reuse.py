"""E13 — Section VI extension: aggressive reuse of acknowledged positions.

Regenerates the experiment's table into results/e13_<mode>.txt and
asserts the claim's shape reproduced (a real but modest gain, saturating
by K=2, at a linearly growing wire-number cost).  See
repro.experiments.e13_position_reuse.
"""

from conftest import run_and_record


def test_e13_position_reuse(benchmark, results_dir):
    run_and_record(benchmark, "e13", results_dir)
