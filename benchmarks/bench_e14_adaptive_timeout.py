"""E14 — adaptive retransmission under injected faults.

Regenerates the experiment's table into results/e14_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e14_adaptive_timeout for the full story.
"""

from conftest import run_and_record


def test_e14_adaptive_timeout(benchmark, results_dir):
    run_and_record(benchmark, "e14", results_dir)
