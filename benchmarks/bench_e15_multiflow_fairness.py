"""E15 — multi-flow fairness over a shared lossy link.

Regenerates the experiment's table into results/e15_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md §12 and
repro.experiments.e15_multiflow_fairness for the full story.
"""

from conftest import run_and_record


def test_e15_multiflow_fairness(benchmark, results_dir):
    run_and_record(benchmark, "e15", results_dir)
