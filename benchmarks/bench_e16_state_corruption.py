"""E16 — self-stabilizing recovery from state corruption.

Regenerates the experiment's table into results/e16_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e16_state_corruption for the full story.
"""

from conftest import run_and_record


def test_e16_state_corruption(benchmark, results_dir):
    run_and_record(benchmark, "e16", results_dir)
