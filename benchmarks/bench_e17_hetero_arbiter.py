"""Benchmark E17: heterogeneous flows on a capacity-limited link."""

from conftest import run_and_record


def test_e17_hetero_arbiter(benchmark, results_dir):
    run_and_record(benchmark, "e17", results_dir)
