"""E1 — Section-I scenario: bounded go-back-N corrupts, block ack survives.

Regenerates the experiment's table into results/e1_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e1_intro_scenario for the full story.
"""

from conftest import run_and_record


def test_e1_intro_scenario(benchmark, results_dir):
    run_and_record(benchmark, "e1", results_dir)
