"""E2 — lossless throughput parity with go-back-N across window sizes.

Regenerates the experiment's table into results/e2_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e2_lossless_parity for the full story.
"""

from conftest import run_and_record


def test_e2_lossless_parity(benchmark, results_dir):
    run_and_record(benchmark, "e2", results_dir)
