"""E3 — goodput and retransmission efficiency vs loss rate.

Regenerates the experiment's table into results/e3_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e3_loss_sweep for the full story.
"""

from conftest import run_and_record


def test_e3_loss_sweep(benchmark, results_dir):
    run_and_record(benchmark, "e3", results_dir)
