"""E4 — acknowledgment messages per delivered payload.

Regenerates the experiment's table into results/e4_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e4_ack_overhead for the full story.
"""

from conftest import run_and_record


def test_e4_ack_overhead(benchmark, results_dir):
    run_and_record(benchmark, "e4", results_dir)
