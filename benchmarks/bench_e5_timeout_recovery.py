"""E5 — recovery latency after a lost block ack: simple vs per-message vs oracle.

Regenerates the experiment's table into results/e5_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e5_timeout_recovery for the full story.
"""

from conftest import run_and_record


def test_e5_timeout_recovery(benchmark, results_dir):
    run_and_record(benchmark, "e5", results_dir)
