"""E6 — timer-constrained baseline throughput vs sequence-number domain.

Regenerates the experiment's table into results/e6_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e6_stenning_domain for the full story.
"""

from conftest import run_and_record


def test_e6_stenning_domain(benchmark, results_dir):
    run_and_record(benchmark, "e6", results_dir)
