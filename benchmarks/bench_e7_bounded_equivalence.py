"""E7 — bounded (mod-2w) variants behave identically to unbounded.

Regenerates the experiment's table into results/e7_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e7_bounded_equivalence for the full story.
"""

from conftest import run_and_record


def test_e7_bounded_equivalence(benchmark, results_dir):
    run_and_record(benchmark, "e7", results_dir)
