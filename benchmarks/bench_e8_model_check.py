"""E8 — exhaustive invariant check (assertions 6-8) plus ablations.

Regenerates the experiment's table into results/e8_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e8_model_check for the full story.
"""

from conftest import run_and_record


def test_e8_model_check(benchmark, results_dir):
    run_and_record(benchmark, "e8", results_dir)
