"""E9 — progress: na+ns+nr+vr climbs; fair walks complete.

Regenerates the experiment's table into results/e9_<mode>.txt and
asserts the paper claim's shape reproduced.  See DESIGN.md § per-
experiment index and repro.experiments.e9_progress for the full story.
"""

from conftest import run_and_record


def test_e9_progress(benchmark, results_dir):
    run_and_record(benchmark, "e9", results_dir)
