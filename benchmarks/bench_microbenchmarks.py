"""Microbenchmarks of the simulator's hot paths.

These are conventional repeated-timing benchmarks (unlike the experiment
benches, which time one full experiment).  They track the cost of the
pieces every experiment leans on: event-queue churn, channel transit,
full protocol round trips, and the model checker's state expansion.
"""

from repro.channel.channel import Channel
from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.core.numbering import ModularNumbering
from repro.core.seqnum import reconstruct
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.engine import Simulator
from repro.sim.runner import LinkSpec, run_transfer
from repro.verify.actions import AbstractProtocolModel
from repro.verify.explorer import Explorer
from repro.workloads.sources import GreedySource


def test_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_engine_fanout_throughput(benchmark):
    """Heap-heavy: 10k events pre-scheduled at jittered times, then drained."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for index in range(10_000):
            sim.schedule(((index * 7919) % 1000) * 0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_engine_run_while_drain(benchmark):
    """Predicate-driven drain (the run_transfer loop) over 10k events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        processed = sim.run_while(lambda: count[0] < 10_000)
        return processed

    assert benchmark(run) == 10_000


def test_channel_transit_throughput(benchmark):
    """Push 5k messages through a jittery lossy channel."""

    def run():
        import random

        sim = Simulator()
        channel = Channel(
            sim,
            delay=UniformDelay(0.5, 1.5),
            loss=BernoulliLoss(0.05),
            rng=random.Random(1),
        )
        received = []
        channel.connect(received.append)
        for index in range(5000):
            sim.schedule(index * 0.01, channel.send, index)
        sim.run()
        return channel.stats.delivered + channel.stats.lost

    assert benchmark(run) == 5000


def test_blockack_transfer_throughput(benchmark):
    """Full 1k-message transfer: lossy, reordering, bounded wire numbers."""

    def run():
        numbering = ModularNumbering(8)
        sender = BlockAckSender(
            8, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(8, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
        )
        result = run_transfer(
            sender, receiver, GreedySource(1000),
            forward=link(), reverse=link(), seed=1, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        return result.delivered

    assert benchmark(run) == 1000


def test_window_bookkeeping_ops(benchmark):
    """Window slide: 10k send/ack cycles."""

    def run():
        sender = SenderWindow(16)
        receiver = ReceiverWindow(16)
        for _ in range(10_000):
            seq = sender.take_next()
            receiver.accept(seq)
            receiver.advance()
            if receiver.ack_ready:
                lo, hi, _ = receiver.take_block()
                sender.apply_ack(lo, hi)
        return sender.na

    assert benchmark(run) == 10_000


def test_reconstruct_function(benchmark):
    """The paper's f: 100k reconstructions."""

    def run():
        total = 0
        for x in range(1000):
            for offset in range(100):
                total += reconstruct(x, (x + offset % 16) % 16, 16)
        return total

    benchmark(run)


def test_sweep_runner_grid(benchmark):
    """A 6-run protocol grid through the serial sweep runner."""
    from repro.perf.sweep import RunConfig, SweepRunner

    def run():
        configs = [
            RunConfig(
                protocol="blockack", window=8, total=200,
                forward=LinkSpec(
                    delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
                ),
                reverse=LinkSpec(
                    delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
                ),
                seed=seed,
            )
            for seed in range(6)
        ]
        results = SweepRunner(jobs=1, cache=False).run(configs)
        assert all(r.completed and r.in_order for r in results)
        return len(results)

    assert benchmark(run) == 6


def test_model_checker_expansion(benchmark):
    """Exhaustive exploration of the w=2, N=4 space with loss."""

    def run():
        model = AbstractProtocolModel(2, 4, timeout_mode="simple")
        report = Explorer(model, stop_at_first_violation=False).run()
        assert report.ok
        return report.states_explored

    assert benchmark(run) > 100
