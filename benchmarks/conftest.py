"""Shared infrastructure for the benchmark suite.

Every experiment benchmark:

* regenerates the experiment's table (the paper-claim "figure"),
* asserts the claim reproduced (the shape checks inside each experiment),
* writes the rendered table to ``results/<id>.txt`` so the benchmark run
  leaves the full set of regenerated tables on disk,
* reports wall-clock time through pytest-benchmark.

Set ``REPRO_FULL=1`` to run experiments at full size (more replications,
longer transfers); the default is quick mode so the whole suite finishes
in about a minute.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

FULL_MODE = os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_record(benchmark, exp_id: str, results_dir: pathlib.Path):
    """Benchmark one experiment run; persist and verify its output."""
    from repro.experiments.registry import run_experiment

    quick = not FULL_MODE
    result = benchmark.pedantic(
        run_experiment, args=(exp_id, quick), rounds=1, iterations=1
    )
    mode = "full" if FULL_MODE else "quick"
    (results_dir / f"{exp_id}_{mode}.txt").write_text(result.render() + "\n")
    assert result.reproduced, result.render()
    return result
