"""Shared infrastructure for the benchmark suite.

Every experiment benchmark:

* regenerates the experiment's table (the paper-claim "figure"),
* asserts the claim reproduced (the shape checks inside each experiment),
* writes the rendered table to ``results/<id>.txt`` so the benchmark run
  leaves the full set of regenerated tables on disk,
* reports wall-clock time through pytest-benchmark.

Set ``REPRO_FULL=1`` to run experiments at full size (more replications,
longer transfers); the default is quick mode so the whole suite finishes
in about a minute.

On top of pytest-benchmark's own reporting, the session writes the
per-experiment wall-clock times into ``BENCH_<mode>.json`` at the repo
root (same schema as ``blockack perf``), so a benchmark run doubles as a
perf-regression baseline — compare against a committed baseline with
``python -m repro.perf.bench --compare BENCH_quick.json --baseline ...``.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

FULL_MODE = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: exp_id -> wall-clock seconds, filled by run_and_record during the run
_EXPERIMENT_SECONDS: dict[str, float] = {}


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_record(benchmark, exp_id: str, results_dir: pathlib.Path):
    """Benchmark one experiment run; persist and verify its output."""
    from repro.experiments.registry import run_experiment

    quick = not FULL_MODE
    start = time.perf_counter()
    result = benchmark.pedantic(
        run_experiment, args=(exp_id, quick), rounds=1, iterations=1
    )
    _EXPERIMENT_SECONDS[exp_id] = time.perf_counter() - start
    mode = "full" if FULL_MODE else "quick"
    (results_dir / f"{exp_id}_{mode}.txt").write_text(result.render() + "\n")
    assert result.reproduced, result.render()
    return result


def pytest_sessionfinish(session, exitstatus):
    """Persist the experiment timings as a machine-readable baseline."""
    if not _EXPERIMENT_SECONDS:
        return
    from repro.perf.bench import update_bench_json

    mode = "full" if FULL_MODE else "quick"
    update_bench_json(
        REPO_ROOT / f"BENCH_{mode}.json", mode,
        experiments=dict(_EXPERIMENT_SECONDS),
    )
