#!/usr/bin/env python3
"""Tuning the receiver: how big should acknowledgment blocks be?

The paper's receiver actions 4 and 5 leave open *when* to acknowledge —
eagerly (small blocks, low latency) or after batching (large blocks, few
acks).  This example sweeps the counting-policy threshold on a bursty
workload and prints the trade-off between acknowledgment traffic, ack
delay exposure, and the sender's derived safe timeout (which must cover
the receiver's worst-case ack latency).

Run:  python examples/ack_policy_tuning.py
"""

from repro import (
    BlockAckReceiver,
    BlockAckSender,
    BurstySource,
    CountingAckPolicy,
    EagerAckPolicy,
    LinkSpec,
    UniformDelay,
    run_transfer,
)

WINDOW = 32
MESSAGES = 2000
BURST = 16


def run_with_policy(label, policy):
    sender = BlockAckSender(window=WINDOW, timeout_mode="per_message_safe")
    receiver = BlockAckReceiver(window=WINDOW, ack_policy=policy)
    link = lambda: LinkSpec(delay=UniformDelay(0.8, 1.2))
    result = run_transfer(
        sender,
        receiver,
        BurstySource(MESSAGES, burst_size=BURST, gap=6.0),
        forward=link(),
        reverse=link(),
        seed=3,
    )
    assert result.completed and result.in_order, f"{label} failed"
    return result


def main() -> None:
    print(f"bursty workload: {MESSAGES} messages in bursts of {BURST}, w={WINDOW}")
    print(f"\n{'policy':>22s} {'acks':>6s} {'acks/msg':>9s} "
          f"{'time':>8s} {'safe timeout':>12s}")
    policies = [("eager", EagerAckPolicy())]
    policies += [
        (f"counting k={k}", CountingAckPolicy(k, max_delay=1.0))
        for k in (2, 4, 8, 16)
    ]
    for label, policy in policies:
        result = run_with_policy(label, policy)
        print(
            f"{label:>22s} {result.receiver_stats['acks_sent']:6d} "
            f"{result.acks_per_message:9.3f} {result.duration:8.1f} "
            f"{result.timeout_period:12.2f}"
        )
    print(
        "\nLarger blocks slash acknowledgment traffic (toward 1/k acks per"
        "\nmessage) at near-zero cost in transfer time on bursty traffic —"
        "\nbut the batching backstop delay is charged to the sender's safe"
        "\ntimeout period, so unbounded batching is not free."
    )


if __name__ == "__main__":
    main()
