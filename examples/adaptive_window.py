#!/usr/bin/env python3
"""Variable-size windows (Section VI): an AIMD controller on top.

The paper closes by noting "it is possible ... to extend all our
protocols to have variable size windows".  This example builds a small
additive-increase / multiplicative-decrease controller on the sender's
``resize_window`` hook: every acknowledgment grows the window by a
fraction, every retransmission timeout halves it — TCP's congestion
control in miniature, running over the block-acknowledgment protocol with
a fixed mod-2w_max wire domain.

The link's loss rate changes mid-transfer (clean → lossy → clean); the
controller tracks it, and the transfer stays exactly-once in-order
throughout.

Run:  python examples/adaptive_window.py
"""

from repro import (
    BernoulliLoss,
    BlockAckReceiver,
    BlockAckSender,
    GreedySource,
    LinkSpec,
    ModularNumbering,
    UniformDelay,
    run_transfer,
)

MAX_WINDOW = 32


class AimdController:
    """Grow the window on acks, halve it on timeouts."""

    def __init__(self, sender: BlockAckSender) -> None:
        self.sender = sender
        self.window = float(sender.window.w)
        self.trajectory = []  # (time, window) samples
        # interpose on the sender's bookkeeping hooks
        self._orig_on_message = sender.on_message
        sender.on_message = self._on_message
        self._orig_timeout_fire = sender._on_message_timeout
        sender._on_message_timeout = self._on_timeout

    def _on_message(self, ack) -> None:
        before = self.sender.window.na
        self._orig_on_message(ack)
        if self.sender.window.na > before:  # additive increase per advance
            self.window = min(MAX_WINDOW, self.window + 1.0 / self.window)
            self._apply()

    def _on_timeout(self, seq) -> None:
        acked_before = self.sender.window.is_acked(seq)
        self._orig_timeout_fire(seq)
        if not acked_before:  # multiplicative decrease on real timeouts
            self.window = max(1.0, self.window / 2.0)
            self._apply()

    def _apply(self) -> None:
        self.sender.resize_window(max(1, int(self.window)))
        self.trajectory.append((self.sender.sim.now, int(self.window)))


class PhaseLoss(BernoulliLoss):
    """Loss rate that follows a schedule of (start_time, rate) phases."""

    def __init__(self, sim, phases) -> None:
        super().__init__(0.0)
        self._sim = sim
        self._phases = sorted(phases)

    def drops(self, rng) -> bool:
        rate = 0.0
        for start, phase_rate in self._phases:
            if self._sim.now >= start:
                rate = phase_rate
        self.p = rate
        return super().drops(rng)


def main() -> None:
    numbering = ModularNumbering(MAX_WINDOW)  # domain fixed at 2 * w_max
    sender = BlockAckSender(
        MAX_WINDOW, numbering=numbering, timeout_mode="per_message_safe"
    )
    sender.resize_window(4)  # slow start-ish initial window
    controller = AimdController(sender)
    receiver = BlockAckReceiver(MAX_WINDOW, numbering=numbering)

    # the loss schedule needs the simulator; run_transfer builds it, so we
    # wire the phase model through a mutable link spec via a late bind
    import repro.sim.runner as runner_module

    original_build = LinkSpec.build

    def build_with_phases(self, sim, rng, name):
        channel = original_build(self, sim, rng, name)
        if name == "SR":
            channel.loss = PhaseLoss(sim, [(0.0, 0.0), (150.0, 0.15), (450.0, 0.0)])
        return channel

    LinkSpec.build = build_with_phases
    try:
        result = run_transfer(
            sender,
            receiver,
            GreedySource(2000),
            forward=LinkSpec(delay=UniformDelay(0.8, 1.2)),
            reverse=LinkSpec(delay=UniformDelay(0.8, 1.2)),
            seed=5,
            max_time=1_000_000.0,
        )
    finally:
        LinkSpec.build = original_build

    assert result.completed and result.in_order
    print(result.summary())
    print("\nwindow trajectory (sampled):")
    samples = controller.trajectory
    for index in range(0, len(samples), max(1, len(samples) // 18)):
        when, window = samples[index]
        bar = "#" * window
        print(f"  t={when:7.1f}  w={window:3d}  {bar}")
    print(
        "\nThe window climbs during clean phases, collapses when the loss"
        "\nburst begins at t=150, and recovers after it ends at t=450 — all"
        f"\nover a fixed {2 * MAX_WINDOW}-number wire domain, exactly-once,"
        "\nin order."
    )


if __name__ == "__main__":
    main()
