#!/usr/bin/env python3
"""A bidirectional session with piggybacked acknowledgments.

The paper treats one data direction; real connections run both ways, and
mature window protocols let acknowledgments ride inside reverse-direction
data frames.  `repro.duplex` composes two unmodified block-ack machines
behind a piggyback multiplexer — this demo runs a chatty bidirectional
session (Poisson traffic both ways, loss both ways) and shows how much
frame traffic piggybacking saves as the acknowledgment hold budget grows.

Run:  python examples/duplex_session.py
"""

import random

from repro import BernoulliLoss, LinkSpec, ModularNumbering, UniformDelay
from repro.duplex import DuplexEndpoint, run_duplex
from repro.workloads.sources import PoissonSource

MESSAGES = 400
RATE = 1.5
WINDOW = 8


def session(hold: float, seed: int):
    numbering = lambda: ModularNumbering(WINDOW)
    a = DuplexEndpoint("A", WINDOW, numbering=numbering(), standalone_delay=hold)
    b = DuplexEndpoint("B", WINDOW, numbering=numbering(), standalone_delay=hold)
    link = lambda: LinkSpec(
        delay=UniformDelay(0.8, 1.2), loss=BernoulliLoss(0.03)
    )
    return run_duplex(
        a,
        b,
        PoissonSource(MESSAGES, rate=RATE, rng=random.Random(seed)),
        PoissonSource(MESSAGES, rate=RATE, rng=random.Random(seed + 1)),
        link_ab=link(),
        link_ba=link(),
        seed=seed,
        max_time=1_000_000.0,
    )


def main() -> None:
    print(
        f"bidirectional session: {MESSAGES} messages each way at Poisson "
        f"rate {RATE}, 3% loss both directions, w={WINDOW} (wire mod 16)"
    )
    print(f"\n{'ack hold':>9s} {'frames':>7s} {'piggyback':>10s} "
          f"{'duration':>9s} {'correct':>8s}")
    baseline = None
    for hold in (0.05, 0.25, 0.5, 1.0, 2.0):
        result = session(hold, seed=11)
        frames = result.a_mux["frames_sent"] + result.b_mux["frames_sent"]
        if baseline is None:
            baseline = frames
        print(
            f"{hold:9.2f} {frames:7d} {result.piggyback_ratio():10.0%} "
            f"{result.duration:9.1f} {str(result.correct):>8s}"
        )
        assert result.correct
    print(
        "\nA modest acknowledgment hold lets most acks ride on reverse data"
        "\n(the block pair costs nothing extra once the frame is going"
        "\nanyway), cutting total frames by roughly a third at equal"
        "\ncompletion time.  Duplicate (v,v) acks are never held: they"
        "\nanswer retransmissions, and delaying them would stretch recovery."
    )


if __name__ == "__main__":
    main()
