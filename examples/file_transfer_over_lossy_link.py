#!/usr/bin/env python3
"""Move real bytes: a chunked file transfer with integrity verification.

The paper abstracts data messages to their sequence numbers; this example
puts the payloads back.  A pseudo-random 256 KiB "file" is split into
1 KiB chunks, shipped over a lossy reordering link with each protocol,
and reassembled at the receiver.  SHA-256 digests prove bit-exact
delivery; the stats show what each protocol paid for it.

Run:  python examples/file_transfer_over_lossy_link.py
"""

import hashlib
import random

from repro import (
    BernoulliLoss,
    GreedySource,
    LinkSpec,
    UniformDelay,
    make_pair,
    run_transfer,
)

CHUNK = 1024
FILE_SIZE = 256 * 1024


class FileSource(GreedySource):
    """Greedy source whose payloads are consecutive chunks of a file."""

    def __init__(self, data: bytes, chunk_size: int) -> None:
        self._chunks = [
            data[offset : offset + chunk_size]
            for offset in range(0, len(data), chunk_size)
        ]
        super().__init__(total=len(self._chunks))

    def _make_payload(self) -> bytes:
        return self._chunks[len(self.submitted)]


def transfer_file(protocol: str, data: bytes, seed: int):
    sender, receiver = make_pair(protocol, window=16)
    source = FileSource(data, CHUNK)
    link = lambda: LinkSpec(
        delay=UniformDelay(0.6, 1.4), loss=BernoulliLoss(0.03)
    )
    result = run_transfer(
        sender,
        receiver,
        source,
        forward=link(),
        reverse=link(),
        seed=seed,
        collect_payloads=True,
    )
    received = b"".join(result.delivered_payloads)
    return result, hashlib.sha256(received).hexdigest()


def main() -> None:
    data = random.Random(2026).randbytes(FILE_SIZE)
    want = hashlib.sha256(data).hexdigest()
    print(f"file: {FILE_SIZE // 1024} KiB in {FILE_SIZE // CHUNK} chunks")
    print(f"sha256: {want[:16]}...")
    print()
    print(f"{'protocol':20s} {'time':>8s} {'sent':>6s} {'retx':>5s} "
          f"{'acks':>5s} {'digest ok':>9s}")
    for protocol in ("blockack", "blockack-simple", "gobackn",
                     "selective-repeat"):
        result, got = transfer_file(protocol, data, seed=7)
        ok = got == want and result.completed and result.in_order
        print(
            f"{protocol:20s} {result.duration:8.1f} "
            f"{result.sender_stats['data_sent']:6d} "
            f"{result.sender_stats['retransmissions']:5d} "
            f"{result.receiver_stats['acks_sent']:5d} {str(ok):>9s}"
        )
        assert ok, f"{protocol}: file corrupted in transfer!"
    print("\nAll protocols delivered the file bit-exactly; the columns show")
    print("what each paid in time, retransmissions, and acknowledgments.")


if __name__ == "__main__":
    main()
