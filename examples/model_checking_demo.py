#!/usr/bin/env python3
"""Formal side of the paper: replay the bug, verify the fix, break a guard.

Three acts:

1. **The motivating failure** — the Section-I scenario: a stale cumulative
   acknowledgment silently corrupts a bounded-number go-back-N transfer,
   narrated step by step; the same schedule against block acknowledgment
   is provably harmless.

2. **Exhaustive verification** — every reachable state of the abstract
   block-ack protocol (loss and reorder included) satisfies the paper's
   invariant, assertions 6 ∧ 7 ∧ 8, for both timeout designs.

3. **Breaking it on purpose** — remove the timeout guard's channel
   conjuncts ("impatient" mode) and the checker instantly produces a
   witness execution that puts two copies of one message in transit,
   violating assertion 8.

Run:  python examples/model_checking_demo.py
"""

from repro.verify import (
    AbstractProtocolModel,
    Explorer,
    run_intro_scenario_blockack,
    run_intro_scenario_gbn,
)


def act_one() -> None:
    print("=" * 72)
    print("ACT 1 — the Section-I scenario")
    print("=" * 72)
    print(run_intro_scenario_gbn().narrate())
    print()
    print(run_intro_scenario_blockack().narrate())


def act_two() -> None:
    print()
    print("=" * 72)
    print("ACT 2 — exhaustive verification of assertions 6 ∧ 7 ∧ 8")
    print("=" * 72)
    for window, max_send, mode in ((1, 3, "simple"), (2, 4, "simple"),
                                   (2, 4, "per_message"), (2, 5, "simple")):
        model = AbstractProtocolModel(
            window=window, max_send=max_send, timeout_mode=mode,
            allow_loss=True,
        )
        report = Explorer(model, stop_at_first_violation=False).run()
        print(f"w={window} N={max_send} {mode:12s} -> {report.summary()}")
        assert report.ok, "the paper's invariant failed?!"


def act_three() -> None:
    print()
    print("=" * 72)
    print("ACT 3 — delete the timeout guard, watch assertion 8 fall")
    print("=" * 72)
    model = AbstractProtocolModel(
        window=2, max_send=4, timeout_mode="impatient", allow_loss=True
    )
    explorer = Explorer(model)
    report = explorer.run()
    assert report.invariant_violations, "expected a violation"
    state, clauses = report.invariant_violations[0]
    print(f"violated: {'; '.join(clauses)}")
    print("witness execution:")
    for line in explorer.witness(state):
        print(f"  {line}")
    print()
    print("Retransmitting while a copy may still be in transit is exactly")
    print("what the paper's timeout guard exists to prevent.")


def main() -> None:
    act_one()
    act_two()
    act_three()


if __name__ == "__main__":
    main()
