#!/usr/bin/env python3
"""1989 meets 2026: block acknowledgment vs its TCP-SACK descendant.

The paper's idea — acknowledge exact *ranges* — is precisely what TCP's
SACK option (RFC 2018) standardised a few years later.  This demo sweeps
the loss rate and races:

* go-back-N (what both designs improved upon),
* block acknowledgment (the paper, provably-safe timers, mod-2w numbers),
* block acknowledgment with the Section-IV oracle guard (its intrinsic
  recovery speed),
* a NewReno/SACK-lite sender (duplicate-ack fast retransmit, advisory
  SACK blocks, effectively unbounded sequence numbers).

Besides throughput, watch the structural differences: SACK pays one ack
per arrival and needs an unbounded number space; block ack batches
acknowledgments and runs forever on 2w wire numbers, paying instead with
conservative (provably safe) retransmission timers.

Run:  python examples/modern_comparison.py
"""

from repro import BernoulliLoss, GreedySource, LinkSpec, UniformDelay, make_pair, run_transfer
from repro.analysis.plot import ascii_plot

WINDOW = 8
MESSAGES = 800
LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20)
PROTOCOLS = ("gobackn", "blockack", "blockack-oracle", "tcp-sack")


def measure(protocol: str, loss: float) -> dict:
    kwargs = {"bounded_wire": True} if protocol.startswith("blockack") else {}
    sender, receiver = make_pair(protocol, window=WINDOW, **kwargs)
    link = lambda: LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(loss))
    result = run_transfer(
        sender, receiver, GreedySource(MESSAGES),
        forward=link(), reverse=link(), seed=23, max_time=1_000_000.0,
    )
    assert result.completed and result.in_order, f"{protocol} @ {loss} failed"
    return {
        "throughput": result.throughput,
        "efficiency": result.goodput_efficiency,
        "acks": result.acks_per_message,
        "p95": result.latency_percentile(95),
    }


def main() -> None:
    print(f"loss sweep, w={WINDOW}, jittery links, {MESSAGES} messages\n")
    series = {name: [] for name in PROTOCOLS}
    print(f"{'loss':>5s}" + "".join(f"{name:>18s}" for name in PROTOCOLS))
    rows = {}
    for loss in LOSS_RATES:
        cells = []
        for name in PROTOCOLS:
            m = measure(name, loss)
            rows[(loss, name)] = m
            series[name].append((loss, m["throughput"]))
            cells.append(f"{m['throughput']:8.2f} ({m['efficiency']:.2f})")
        print(f"{loss:5.2f}" + "".join(f"{cell:>18s}" for cell in cells))
    print("  cells: goodput (efficiency = delivered per transmission)\n")

    print(ascii_plot(
        series, width=56, height=14,
        title="goodput vs loss rate",
        x_label="loss probability (each direction)",
    ))

    hi = LOSS_RATES[-1]
    print(f"""
At {hi:.0%} loss:
  go-back-N         {rows[(hi, 'gobackn')]['throughput']:.2f}/tu — window-scale retransmission storms
  block ack (safe)  {rows[(hi, 'blockack')]['throughput']:.2f}/tu — selective recovery, {rows[(hi, 'blockack')]['acks']:.2f} acks/msg, 16 wire numbers
  block ack (oracle){rows[(hi, 'blockack-oracle')]['throughput']:.2f}/tu — what the Section-IV guard buys
  tcp-sack          {rows[(hi, 'tcp-sack')]['throughput']:.2f}/tu — fast retransmit, {rows[(hi, 'tcp-sack')]['acks']:.2f} acks/msg, unbounded numbers

Same idea, different currencies: SACK spends acknowledgment traffic and
an unbounded number space to avoid conservative timers; the paper's
protocol spends timer conservatism to make 2w numbers provably enough.
The oracle row shows the two recoveries converge when timing information
is perfect.""")


if __name__ == "__main__":
    main()
