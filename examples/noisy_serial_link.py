#!/usr/bin/env python3
"""Real octets on a noisy serial line: bit errors become clean loss.

The paper assumes channels that *lose* messages; real links *corrupt*
them.  The bridge is framing: each protocol message travels as a
checksummed byte frame (`repro.wire`), any frame whose CRC fails on
arrival is discarded, and corruption thereby presents to the protocol as
exactly the loss model it was proven against.

This demo sweeps the bit-error rate of a jittery serial link from
pristine to dreadful, shipping a SHA-256-verified stream of 1 KiB chunks
with the bounded-number (mod-2w) protocol.  Watch the frame-kill
probability ``1 - (1-BER)^(8*frame_len)`` predict the retransmission rate.

Run:  python examples/noisy_serial_link.py
"""

import hashlib
import random

from repro import (
    BlockAckReceiver,
    BlockAckSender,
    GreedySource,
    LinkSpec,
    ModularNumbering,
    UniformDelay,
    run_transfer,
)
from repro.wire import frame_overhead

CHUNK = 256
CHUNKS = 400


class ChunkSource(GreedySource):
    """Greedy source over a pseudo-random byte stream."""

    def __init__(self, data: bytes, chunk: int) -> None:
        self._chunks = [
            data[offset : offset + chunk] for offset in range(0, len(data), chunk)
        ]
        super().__init__(total=len(self._chunks))

    def _make_payload(self) -> bytes:
        return self._chunks[len(self.submitted)]


def main() -> None:
    data = random.Random(99).randbytes(CHUNK * CHUNKS)
    digest = hashlib.sha256(data).hexdigest()
    frame_len = CHUNK + frame_overhead()
    print(
        f"stream: {len(data) // 1024} KiB in {CHUNKS} chunks of {CHUNK}B "
        f"({frame_len}B framed), window 8, wire numbers mod 16"
    )
    print(f"\n{'BER':>8s} {'P(frame killed)':>16s} {'retx':>6s} "
          f"{'discarded':>9s} {'time':>8s} {'intact':>6s}")
    for ber in (0.0, 1e-5, 1e-4, 3e-4, 1e-3):
        numbering = ModularNumbering(8)
        sender = BlockAckSender(
            8, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(8, numbering=numbering)
        result = run_transfer(
            sender,
            receiver,
            ChunkSource(data, CHUNK),
            forward=LinkSpec(delay=UniformDelay(0.8, 1.2), bit_error_rate=ber),
            reverse=LinkSpec(delay=UniformDelay(0.8, 1.2), bit_error_rate=ber),
            seed=4,
            collect_payloads=True,
            max_time=1_000_000.0,
        )
        received = b"".join(result.delivered_payloads)
        intact = hashlib.sha256(received).hexdigest() == digest
        p_kill = 1.0 - (1.0 - ber) ** (8 * frame_len)
        discarded = result.forward_stats.get("discarded", 0) + result.reverse_stats.get("discarded", 0)
        print(
            f"{ber:8.0e} {p_kill:16.3f} "
            f"{result.sender_stats['retransmissions']:6d} "
            f"{discarded:9d} {result.duration:8.1f} {str(intact):>6s}"
        )
        assert intact and result.completed and result.in_order
    print(
        "\nEvery stream arrived bit-exact.  The CRC turns corruption into"
        "\nthe loss model the proofs assume; the retransmission column tracks"
        "\nthe frame-kill probability."
    )


if __name__ == "__main__":
    main()
