#!/usr/bin/env python3
"""A guided tour of the paper, section by section, with live machinery.

Runs a miniature demonstration for each section of Brown, Gouda &
Miller's paper — the motivating failure, the protocol, the invariant, the
timeout designs, the finite-number transformation, and the concluding
generalizations — using the library's real components.  Read alongside
PROTOCOL.md.

Run:  python examples/paper_tour.py
"""

from repro import (
    BlockAckReceiver,
    BlockAckSender,
    GreedySource,
    LinkSpec,
    ModularNumbering,
    UniformDelay,
    BernoulliLoss,
    reconstruct,
    run_transfer,
)
from repro.verify import (
    AbstractProtocolModel,
    Explorer,
    run_intro_scenario_blockack,
    run_intro_scenario_gbn,
)
from repro.verify.refinement import check_refinement


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def section_1_introduction() -> None:
    banner("§I — why cumulative acks + bounded numbers + reorder cannot mix")
    gbn = run_intro_scenario_gbn()
    print(gbn.narrate())
    print()
    print(run_intro_scenario_blockack().narrate())


def section_2_the_protocol() -> None:
    banner("§II — the protocol, running (unbounded numbers, simple timeout)")
    sender = BlockAckSender(window=4, timeout_mode="simple")
    receiver = BlockAckReceiver(window=4)
    link = lambda: LinkSpec(
        delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
    )
    result = run_transfer(
        sender, receiver, GreedySource(12),
        forward=link(), reverse=link(), seed=1, trace=True, max_time=10_000.0,
    )
    print(result.trace.format(limit=40))
    print(f"\n{result.summary()}")
    assert result.completed and result.in_order


def section_3_the_invariant() -> None:
    banner("§III — assertions 6-8 (and 9-11) hold in every reachable state")
    for mode in ("simple", "per_message"):
        model = AbstractProtocolModel(
            window=2, max_send=4, timeout_mode=mode, allow_loss=True
        )
        report = Explorer(model, stop_at_first_violation=False).run()
        print(f"  {mode:12s} -> {report.summary()}")
        assert report.ok


def section_4_timeouts() -> None:
    banner("§IV — and the timed realizations refine the abstract spec")
    for mode in ("simple", "per_message_safe", "oracle"):
        report = check_refinement(window=5, total=80, seed=2, timeout_mode=mode)
        print(f"  {mode:18s} -> {report.summary()}")
        assert report.ok
    report = check_refinement(window=5, total=80, seed=2, timeout_mode="aggressive")
    print(f"  {'aggressive':18s} -> {report.summary()}  (expected: violates)")
    assert not report.ok


def section_5_finite_numbers() -> None:
    banner("§V — the reconstruction function f, and 2w being exactly enough")
    n = 8  # 2w for w = 4
    print(f"  domain n = {n} (w = 4); f(reference, wire) recovers true values:")
    for reference, true_value in ((5, 9), (12, 12), (14, 17)):
        wire = true_value % n
        recovered = reconstruct(reference, wire, n)
        print(
            f"    true {true_value:3d} -> wire {wire}  --f(ref={reference})--> "
            f"{recovered:3d}  {'OK' if recovered == true_value else 'WRONG'}"
        )
    print("\n  and a full lossy transfer with only 8 numbers on the wire:")
    numbering = ModularNumbering(4)
    sender = BlockAckSender(4, numbering=numbering, timeout_mode="per_message_safe")
    receiver = BlockAckReceiver(4, numbering=numbering)
    link = lambda: LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08))
    result = run_transfer(
        sender, receiver, GreedySource(200),
        forward=link(), reverse=link(), seed=3, max_time=100_000.0,
    )
    print(f"  {result.summary()}")
    assert result.completed and result.in_order


def section_6_conclusions() -> None:
    banner("§VI — the corners and extensions (see E11, E13, adaptive_window)")
    print(
        "  selective repeat = all-(v,v) acks; go-back-N = batched cumulative\n"
        "  blocks; alternating bit = w=1 with the 2-number domain; variable\n"
        "  windows and position reuse are implemented and measured (E13).\n"
        "  Where the idea went: TCP SACK (examples/modern_comparison.py)."
    )


def main() -> None:
    section_1_introduction()
    section_2_the_protocol()
    section_3_the_invariant()
    section_4_timeouts()
    section_5_finite_numbers()
    section_6_conclusions()
    print("\nTour complete — every demonstration above ran live.")


if __name__ == "__main__":
    main()
