#!/usr/bin/env python3
"""Quickstart: one reliable transfer over a lossy, reordering channel.

Builds the paper's protocol (block acknowledgment, per-message safe
timers, bounded mod-2w wire numbers), pushes 1000 messages through
channels that lose 5% of traffic and reorder aggressively, and verifies
exactly-once in-order delivery.  Prints a short protocol trace so you can
see block acknowledgments forming.

Run:  python examples/quickstart.py
"""

from repro import (
    BernoulliLoss,
    BlockAckReceiver,
    BlockAckSender,
    GreedySource,
    LinkSpec,
    ModularNumbering,
    UniformDelay,
    run_transfer,
)


def main() -> None:
    window = 8
    numbering = ModularNumbering(window)  # wire numbers mod 2w = 16

    sender = BlockAckSender(
        window=window,
        numbering=numbering,
        timeout_mode="per_message_safe",  # Section IV, implementable form
    )
    receiver = BlockAckReceiver(window=window, numbering=numbering)

    def lossy_reordering_link() -> LinkSpec:
        # delays uniform on [0.5, 1.5]: later messages overtake earlier
        # ones routinely; 5% of messages vanish.
        return LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05))

    result = run_transfer(
        sender,
        receiver,
        GreedySource(1000),
        forward=lossy_reordering_link(),
        reverse=lossy_reordering_link(),
        seed=42,
        trace=True,
        trace_capacity=4000,
    )

    print(result.summary())
    print(f"derived safe timeout period: {result.timeout_period:.2f} time units")
    print(f"forward channel: {result.forward_stats}")
    print(f"reverse channel: {result.reverse_stats}")
    assert result.completed, "transfer did not finish"
    assert result.in_order, "delivery order violated!"

    print("\nfirst 25 protocol events:")
    print(result.trace.format(limit=25))

    print("\nEvery payload arrived exactly once, in order, despite loss and")
    print("reorder — with only 16 distinct sequence numbers on the wire.")


if __name__ == "__main__":
    main()
