#!/usr/bin/env python3
"""Satellite-grade links: long delay, occasional loss, strict number budgets.

A geostationary hop has a one-way delay around 270 ms.  If a time unit is
10 ms, that is a delay of ~27 units — a bandwidth-delay product that
demands a large window, which in turn stresses the sequence-number
domain.  This example compares, across window sizes:

* go-back-N                — one loss costs a whole window-worth of repeats;
* block ack (mod 2w wire)  — selective recovery with only 2w wire numbers;
* stenning (same 2w domain)— pays the number-reuse delay on every send.

It is the paper's economics in one table: on long links, block
acknowledgment is the only bounded-number design that both fills the pipe
and survives loss.

Run:  python examples/satellite_link_comparison.py
"""

from repro import (
    BernoulliLoss,
    GreedySource,
    LinkSpec,
    UniformDelay,
    make_pair,
    run_transfer,
)

ONE_WAY = 27.0  # mean one-way delay in time units (10 ms units, GEO hop)
JITTER = 4.0
LOSS = 0.02
MESSAGES = 2000


def satellite_link() -> LinkSpec:
    return LinkSpec(
        delay=UniformDelay(ONE_WAY - JITTER / 2, ONE_WAY + JITTER / 2),
        loss=BernoulliLoss(LOSS),
    )


def run(protocol: str, window: int, **kwargs):
    sender, receiver = make_pair(protocol, window=window, **kwargs)
    return run_transfer(
        sender,
        receiver,
        GreedySource(MESSAGES),
        forward=satellite_link(),
        reverse=satellite_link(),
        seed=13,
        max_time=1_000_000.0,
    )


def main() -> None:
    print(
        f"GEO link: one-way {ONE_WAY}tu, loss {LOSS:.0%}, "
        f"RTT≈{2 * ONE_WAY:.0f}tu, {MESSAGES} messages"
    )
    print(f"\n{'window':>6s} {'protocol':>18s} {'goodput':>8s} "
          f"{'of w/RTT':>9s} {'efficiency':>10s} {'wire numbers':>12s}")
    for window in (8, 32, 128):
        bound = window / (2 * ONE_WAY)  # pipelining limit (pure-delay link)
        for protocol, kwargs, domain in (
            ("gobackn", {}, "unbounded"),
            ("blockack", {"bounded_wire": True}, f"{2 * window}"),
            ("blockack-oracle", {"bounded_wire": True}, f"{2 * window}"),
            ("stenning", {"domain": 2 * window}, f"{2 * window}"),
        ):
            result = run(protocol, window, **kwargs)
            assert result.completed and result.in_order, (
                f"{protocol} w={window} failed: {result.summary()}"
            )
            print(
                f"{window:6d} {protocol:>18s} {result.throughput:8.3f} "
                f"{result.throughput / bound:8.0%} "
                f"{result.goodput_efficiency:10.3f} {domain:>12s}"
            )
    print(
        "\ngo-back-N burns the long pipe on whole-window repeats (efficiency"
        "\ncolumn).  Block ack recovers per message with only 2w wire numbers;"
        "\nits timer-safe mode pays conservative waits when several losses"
        "\nshare a window — the oracle rows show the Section-IV guard's upper"
        "\nbound.  Stenning matches selective repeat here but only because"
        "\nits reuse cap D/reuse_delay stays above w/RTT; shrink the domain"
        "\nor stretch the lifetime bound and it throttles (see experiment E6)."
    )


if __name__ == "__main__":
    main()
