#!/usr/bin/env python3
"""Not just a simulation: the same endpoints over real UDP sockets.

Every other example runs on the virtual-time simulator.  This one takes
the *identical* `BlockAckSender` / `BlockAckReceiver` objects, binds them
to two loopback UDP sockets through the wall-clock scheduler
(`repro.transport`), injects egress loss (loopback itself doesn't lose),
and ships a thousand datagrams exactly-once, in-order, with 16 wire
sequence numbers — for real, in milliseconds of wall time.

Run:  python examples/udp_realtime.py
"""

import time

from repro.transport import transfer_over_udp

COUNT = 1000


def main() -> None:
    payloads = [f"datagram-{i:05d}".encode() for i in range(COUNT)]
    print(f"shipping {COUNT} datagrams over loopback UDP, window 8, "
          "wire numbers mod 16\n")
    print(f"{'injected loss':>13s} {'sent':>6s} {'retx':>5s} "
          f"{'wall time':>10s} {'goodput':>12s} {'in order':>8s}")
    for loss in (0.0, 0.05, 0.15):
        start = time.time()
        stats = transfer_over_udp(
            payloads, window=8, loss=loss, timeout_period=0.05,
            deadline=60.0, seed=7,
        )
        ok = stats.completed and stats.delivered == payloads
        rate = len(stats.delivered) / stats.duration if stats.duration else 0.0
        print(
            f"{loss:13.0%} {stats.data_sent:6d} {stats.retransmissions:5d} "
            f"{stats.duration:9.2f}s {rate:9.0f}/s {str(ok):>8s}"
        )
        assert ok, "UDP transfer failed!"
    print(
        "\nThe protocol objects here are byte-for-byte the ones the"
        "\nsimulator runs — only the scheduler (wall clock vs virtual time)"
        "\nand the channel (socket vs model) changed.  That is what the"
        "\nshared scheduling interface buys."
    )


if __name__ == "__main__":
    main()
