"""repro — Block Acknowledgment: Redesigning the Window Protocol.

A complete, executable reproduction of Brown, Gouda & Miller's
block-acknowledgment window protocol: the protocol itself in every form
the paper develops (unbounded, per-message timeouts, finite sequence
numbers, bounded storage), the baselines it is compared against
(go-back-N, selective repeat, the timer-constrained Stenning/Shankar–Lam
protocol, alternating bit), a discrete-event simulator with lossy and
reordering channels, a formal model with an explicit-state checker for
the paper's invariant, and the E1–E12 experiment suite reproducing every
claim in the paper.

Quick start::

    from repro import (
        BlockAckSender, BlockAckReceiver, GreedySource, run_transfer,
        LinkSpec, UniformDelay, BernoulliLoss,
    )

    sender = BlockAckSender(window=8, timeout_mode="per_message_safe")
    receiver = BlockAckReceiver(window=8)
    result = run_transfer(
        sender, receiver, GreedySource(1000),
        forward=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)),
        reverse=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)),
        seed=42,
    )
    assert result.completed and result.in_order
    print(result.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
measured reproduction of each paper claim.
"""

from repro.channel import (
    BernoulliLoss,
    Channel,
    ConstantDelay,
    ExponentialDelay,
    GilbertElliottLoss,
    NoLoss,
    ScriptedLoss,
    UniformDelay,
)
from repro.core import (
    BlockAck,
    CumulativeAck,
    DataMessage,
    ModularNumbering,
    ReceiverWindow,
    SenderWindow,
    SequenceDomain,
    UnboundedNumbering,
    minimum_domain_size,
    reconstruct,
)
from repro.protocols import (
    BlockAckReceiver,
    BlockAckSender,
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
    CountingAckPolicy,
    DelayedAckPolicy,
    EagerAckPolicy,
    GoBackNReceiver,
    GoBackNSender,
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
    StenningReceiver,
    StenningSender,
    make_pair,
    protocol_names,
    safe_timeout_period,
)
from repro.duplex import DuplexEndpoint, DuplexFrame, run_duplex
from repro.sim import Simulator, Timer, TimerBank
from repro.sim.runner import LinkSpec, TransferResult, run_transfer
from repro.transport import RealtimeScheduler, UdpTransport, transfer_over_udp
from repro.wire import FramedChannel, decode_message, encode_message
from repro.workloads import BurstySource, GreedySource, PoissonSource

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation
    "Simulator",
    "Timer",
    "TimerBank",
    "run_transfer",
    "LinkSpec",
    "TransferResult",
    # channels
    "Channel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "ScriptedLoss",
    # core
    "DataMessage",
    "BlockAck",
    "CumulativeAck",
    "SequenceDomain",
    "reconstruct",
    "minimum_domain_size",
    "UnboundedNumbering",
    "ModularNumbering",
    "SenderWindow",
    "ReceiverWindow",
    # protocols
    "BlockAckSender",
    "BlockAckReceiver",
    "BoundedBlockAckSender",
    "BoundedBlockAckReceiver",
    "GoBackNSender",
    "GoBackNReceiver",
    "SelectiveRepeatSender",
    "SelectiveRepeatReceiver",
    "StenningSender",
    "StenningReceiver",
    "EagerAckPolicy",
    "DelayedAckPolicy",
    "CountingAckPolicy",
    "safe_timeout_period",
    "make_pair",
    "protocol_names",
    # workloads
    "GreedySource",
    "PoissonSource",
    "BurstySource",
    # wire format
    "encode_message",
    "decode_message",
    "FramedChannel",
    # duplex
    "DuplexEndpoint",
    "DuplexFrame",
    "run_duplex",
    # real transports
    "RealtimeScheduler",
    "UdpTransport",
    "transfer_over_udp",
]
