"""Measurement aggregation: statistics, replication, and text reports."""

from repro.analysis.metrics import DEFAULT_METRICS, extract, replicate
from repro.analysis.plot import ascii_plot, sparkline
from repro.analysis.report import format_cell, render_table
from repro.analysis.series import Probe
from repro.analysis.stats import Summary, confidence_halfwidth, percentile, summarize
from repro.analysis.theory import (
    go_back_n_efficiency,
    pipelined_throughput_bound,
    selective_repeat_efficiency,
    stop_and_wait_throughput,
)

__all__ = [
    "Summary",
    "summarize",
    "confidence_halfwidth",
    "percentile",
    "render_table",
    "format_cell",
    "replicate",
    "extract",
    "DEFAULT_METRICS",
    "ascii_plot",
    "sparkline",
    "Probe",
    "selective_repeat_efficiency",
    "go_back_n_efficiency",
    "stop_and_wait_throughput",
    "pipelined_throughput_bound",
]
