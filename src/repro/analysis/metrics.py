"""Replication helpers and derived protocol metrics.

:func:`replicate` runs one experiment configuration across several seeds
and aggregates any :class:`~repro.sim.runner.TransferResult` attribute
into a :class:`~repro.analysis.stats.Summary`; it also enforces the
end-to-end correctness verdict on every replication — an experiment that
quietly lost or reordered data must fail loudly, not report a throughput.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.analysis.stats import Summary, summarize
from repro.sim.runner import TransferResult

__all__ = ["replicate", "summarize_replications", "MetricSet", "extract"]

MetricSet = Dict[str, Summary]

#: TransferResult attributes aggregated by default.
DEFAULT_METRICS = (
    "throughput",
    "goodput_efficiency",
    "acks_per_message",
    "duration",
)


def extract(result: TransferResult, metric: str) -> float:
    """Pull one numeric metric off a result (property or stats entry)."""
    if hasattr(result, metric):
        return float(getattr(result, metric))
    if metric in result.sender_stats:
        return float(result.sender_stats[metric])
    if metric in result.receiver_stats:
        return float(result.receiver_stats[metric])
    raise KeyError(f"unknown metric {metric!r}")


def replicate(
    run: Callable[[int], TransferResult],
    seeds: Sequence[int],
    metrics: Sequence[str] = DEFAULT_METRICS,
    require_correct: bool = True,
) -> MetricSet:
    """Run ``run(seed)`` for every seed and summarize the given metrics.

    Raises ``AssertionError`` if any replication failed to complete with
    exactly-once in-order delivery (unless ``require_correct=False``,
    used only by experiments that *study* failures).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize_replications(
        [run(seed) for seed in seeds], metrics=metrics, require_correct=require_correct
    )


def summarize_replications(
    results: Sequence[TransferResult],
    metrics: Sequence[str] = DEFAULT_METRICS,
    require_correct: bool = True,
) -> MetricSet:
    """Aggregate already-computed replications (see :func:`replicate`).

    This is the back half of :func:`replicate`, split out so sweeps that
    precompute their runs — the parallel grid runner — aggregate through
    the identical code path and produce identical summaries.
    """
    if not results:
        raise ValueError("need at least one replication result")
    if require_correct:
        for result in results:
            if not (result.completed and result.in_order):
                raise AssertionError(
                    f"replication violated correctness: {result.summary()}"
                )
    return {
        metric: summarize(extract(result, metric) for result in results)
        for metric in metrics
    }
