"""Terminal plots for sweep results.

Every experiment renders a table; for eyeballing shapes — crossovers,
saturation, collapse — a picture is faster.  :func:`ascii_plot` draws
multiple named series on one character grid with axis labels and a
legend, entirely dependency-free, so CLI output and EXPERIMENTS.md can
carry the figure next to the numbers.

>>> print(ascii_plot({"linear": [(x, x) for x in range(10)]}, height=5))
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot", "sparkline"]

_MARKERS = "o*x+#@%&"
_BLOCKS = "▁▂▃▄▅▆▇█"

Point = Tuple[float, float]


def _bounds(series: Dict[str, Sequence[Point]]):
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    if not xs:
        raise ValueError("cannot plot empty series")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_hi = x_lo + 1.0
    if y_lo == y_hi:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def ascii_plot(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as a character-grid scatter plot.

    Each series gets a marker from ``o * x + ...``; overlapping points
    show the later series' marker.  Axes are annotated with the data
    bounds; the legend maps markers to names.
    """
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    x_lo, x_hi, y_lo, y_hi = _bounds(series)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for index, (_name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][column] = marker

    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    margin = max(len(top_label), len(bottom_label)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}│{''.join(row)}")
    lines.append(" " * margin + "└" + "─" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    if y_label:
        lines.insert(1 if title else 0, f"{y_label}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character trend, e.g. for window-size trajectories."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return _BLOCKS[3] * len(values)
    scale = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[round((value - low) / (high - low) * scale)] for value in values
    )
