"""Plain-text tables for experiment output.

Every experiment prints its result as one aligned text table — the same
rows the paper's claims predict — so ``blockack run e3`` output can be
pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object) -> str:
    """Render one cell: floats get 4 significant digits, rest via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table with a rule under the header."""
    string_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in string_rows)
    return "\n".join(parts)
