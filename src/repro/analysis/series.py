"""Time-series probes: sample protocol state on a virtual-time grid.

A :class:`Probe` periodically evaluates named callables during a
simulation and stores ``(time, value)`` samples — window trajectories,
outstanding counts, buffer occupancy — for later plotting
(:func:`repro.analysis.plot.ascii_plot`) or assertions.

Usage::

    sim = Simulator()
    ...
    probe = Probe(sim, interval=1.0, signals={
        "na": lambda: sender.window.na,
        "buffered": lambda: len(receiver.window.received_unaccepted),
    })
    probe.start()
    sim.run()
    occupancy = probe.series["buffered"]     # [(t, value), ...]

Note: a running probe keeps re-scheduling itself, which keeps a bare
``sim.run()`` from draining — either :meth:`Probe.stop` it, bound it with
``max_samples``, or run under a harness that stops on its own completion
condition (``run_transfer`` does).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Event, Simulator

__all__ = ["Probe"]

Sample = Tuple[float, float]


class Probe:
    """Samples named signals every ``interval`` virtual time units."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        signals: Dict[str, Callable[[], float]],
        max_samples: int = 1_000_000,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not signals:
            raise ValueError("need at least one signal")
        self.sim = sim
        self.interval = interval
        self.signals = dict(signals)
        self.max_samples = max_samples
        self.series: Dict[str, List[Sample]] = {name: [] for name in signals}
        self._event: Optional[Event] = None
        self._samples_taken = 0

    def start(self) -> "Probe":
        """Take an immediate sample and begin the periodic schedule."""
        self._tick()
        return self

    def stop(self) -> None:
        """Stop sampling (safe to call repeatedly)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        now = self.sim.now
        for name, signal in self.signals.items():
            self.series[name].append((now, float(signal())))
        self._samples_taken += 1
        if self._samples_taken < self.max_samples:
            self._event = self.sim.schedule(self.interval, self._tick)

    # -- convenience accessors ----------------------------------------------

    def values(self, name: str) -> List[float]:
        """Just the sampled values of one signal, in time order."""
        return [value for _, value in self.series[name]]

    def last(self, name: str) -> float:
        """Most recent sample of one signal."""
        samples = self.series[name]
        if not samples:
            raise ValueError(f"no samples for {name!r}")
        return samples[-1][1]
