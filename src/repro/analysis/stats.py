"""Summary statistics for replicated simulation runs.

Comparative protocol studies need more than point estimates: every sweep
in the experiment suite runs several independent replications (different
master seeds) and reports mean ± a confidence half-width, so "A beats B"
claims in EXPERIMENTS.md are backed by non-overlapping intervals rather
than single-run noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = [
    "Summary",
    "summarize",
    "confidence_halfwidth",
    "percentile",
    "jain_fairness",
]

# two-sided 95% Student-t critical values for small samples, indexed by
# degrees of freedom; falls back to the normal 1.96 beyond the table.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000,
}


def _t_critical(dof: int) -> float:
    if dof <= 0:
        return float("inf")
    if dof in _T_95:
        return _T_95[dof]
    for bound in sorted(_T_95):
        if dof <= bound:
            return _T_95[bound]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and a 95% confidence half-width of one metric."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci95: float  # 95% confidence half-width of the mean

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """True if the two 95% intervals overlap (difference not clear)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from raw replication values."""
    data: List[float] = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Summary(n=1, mean=mean, stdev=0.0, minimum=mean, maximum=mean, ci95=0.0)
    var = sum((v - mean) ** 2 for v in data) / (n - 1)
    stdev = math.sqrt(var)
    half = _t_critical(n - 1) * stdev / math.sqrt(n)
    return Summary(
        n=n, mean=mean, stdev=stdev, minimum=min(data), maximum=max(data), ci95=half
    )


def confidence_halfwidth(values: Sequence[float]) -> float:
    """95% confidence half-width of the sample mean."""
    return summarize(values).ci95


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100]."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of per-flow allocations.

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when every flow gets the same
    share, ``1/n`` when one flow monopolizes the resource.  Defined as
    1.0 for the degenerate all-zero allocation (no flow is worse off
    than any other).
    """
    if not values:
        raise ValueError("cannot compute fairness of an empty allocation")
    data = [float(v) for v in values]
    if any(v < 0 for v in data):
        raise ValueError("fairness is defined for non-negative allocations")
    square_sum = sum(v * v for v in data)
    if square_sum == 0.0:
        return 1.0
    total = sum(data)
    return (total * total) / (len(data) * square_sum)
