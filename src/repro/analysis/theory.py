"""Closed-form throughput theory for cross-validating the simulator.

Textbook ARQ analysis gives closed forms for the efficiency (delivered
payloads per transmission) of the classic protocols under independent
per-message loss.  The test suite drives the simulator into the matching
regimes and checks the measured numbers against these formulas — an
end-to-end calibration of the whole stack (engine, channels, endpoints,
accounting) against results derived with pencil and paper.

Conventions: ``p`` is the probability that a *data* transmission is lost
(acknowledgment loss is analysed separately), the window is large enough
to fill the pipe, and losses are independent (Bernoulli channels).
"""

from __future__ import annotations

__all__ = [
    "selective_repeat_efficiency",
    "go_back_n_efficiency",
    "stop_and_wait_throughput",
    "pipelined_throughput_bound",
]


def selective_repeat_efficiency(p: float) -> float:
    """Selective repeat: every loss costs exactly one retransmission.

    Each transmission independently succeeds with probability ``1 - p``,
    and only lost messages are resent, so the expected number of
    transmissions per delivered payload is ``1 / (1 - p)``::

        efficiency = 1 - p

    Block acknowledgment shares this recovery economy (E3), so the same
    formula bounds its efficiency.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    return 1.0 - p


def go_back_n_efficiency(p: float, window: int) -> float:
    """Go-back-N: every loss triggers a whole-window retransmission.

    The classic result: the expected number of transmissions per
    delivered payload is ``(1 - p + w*p) / (1 - p)``, hence::

        efficiency = (1 - p) / (1 - p + w * p)

    Derivation sketch: a delivered payload needs a geometric number of
    "rounds"; each failed round costs ``w`` transmissions (the go-back),
    each successful one costs 1.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    return (1.0 - p) / (1.0 - p + window * p)


def stop_and_wait_throughput(rtt: float, p: float, timeout: float) -> float:
    """Stop-and-wait (w = 1) goodput with loss and a retransmission timer.

    A success costs one RTT; each failure (probability ``p`` per attempt,
    counting either direction's loss in ``p``) costs one timeout period.
    Expected time per payload: ``rtt + timeout * p / (1 - p)``.
    """
    if rtt <= 0 or timeout <= 0:
        raise ValueError("rtt and timeout must be positive")
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    return 1.0 / (rtt + timeout * p / (1.0 - p))


def pipelined_throughput_bound(window: int, rtt: float) -> float:
    """The lossless pipelining bound: ``w / RTT`` payloads per time unit."""
    if window <= 0 or rtt <= 0:
        raise ValueError("window and rtt must be positive")
    return window / rtt
