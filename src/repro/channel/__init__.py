"""Simulated lossy/reordering channels: the paper's set-of-messages model."""

from repro.channel.channel import Channel, ChannelStats
from repro.channel.delay import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    UniformDelay,
    reorder_probability,
)
from repro.channel.impairments import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    ScriptedLoss,
)
from repro.channel.sampling import BlockRandom, maybe_block, numpy_available

__all__ = [
    "Channel",
    "ChannelStats",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "reorder_probability",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "ScriptedLoss",
    "BlockRandom",
    "maybe_block",
    "numpy_available",
]
