"""Send-side link arbiter: a capacity-limited bottleneck with per-flow
scheduling.

The multi-flow stack (:class:`~repro.channel.mux.FlowMux` /
:class:`~repro.sim.host.SessionHost`) historically modelled contention
as pure loss/delay: every flow transmitted instantly and independently,
so a "shared" link never actually ran out of capacity.  The paper's
window protocols, though, were designed for links that are a shared,
capacity-limited resource — per-connection share of a bottleneck is the
constraint that makes window sizing, fairness, and scheduling matter at
all (Ghaderi & Towsley; Jain — see PAPERS.md).

:class:`LinkArbiter` puts that bottleneck in front of the shared
channel's ``send``:

* a **token bucket** models link capacity: ``rate`` tokens (frames)
  accrue per unit of *virtual* time up to a ``burst`` ceiling, refilled
  lazily from the simulator clock (no periodic tick events — both
  engines see the identical schedule of wake-ups, so decision traces
  stay engine-independent and seeded-deterministic);
* each flow owns a **bounded droptail queue**: frames submitted while
  the flow's queue is at ``queue_limit`` are dropped at the tail and
  counted (never silently), exactly like a store-and-forward output
  buffer;
* a pluggable **scheduler** picks which backlogged flow the next token
  serves: :class:`FifoScheduler` (global arrival order — the default),
  :class:`WrrScheduler` (weighted round-robin, integer weights), or
  :class:`DrrScheduler` (deficit round-robin: per-turn quantum scaled
  by the flow's weight, deficits carried across rounds so expensive
  flows are not starved and cheap flows cannot overdraw).

When ``ArbiterConfig.rate`` is ``None`` the arbiter is *inactive* and
never constructed: :class:`~repro.channel.mux.FlowPort.send` keeps its
historical direct path onto the link, which is what pins the
"``fifo`` + infinite capacity is byte-identical to the pre-arbiter
stack" property (see ``tests/test_session_golden.py``).

A deliberate asymmetry: sessions arbitrate the **forward (data)**
direction only.  The paper's asymmetric cost model treats
acknowledgements as small control frames — the whole point of block
acks is that ack traffic is cheap — so the reverse channel keeps the
pure loss/delay model.

One modelling caveat worth stating loudly: the safe-timeout derivation
(:func:`~repro.sim.runner._derive_timeout`) bounds retransmission
ambiguity using the *channel's* ``effective_max_lifetime``.  An arbiter
queue adds wait *before* the channel, so under a saturating offered
load the true submit→deliver lifetime is no longer bounded by the link
alone and an adaptive/static timeout may fire while the original frame
still sits in the queue.  That is a real phenomenon (spurious
retransmission under congestion), not a bug; experiments that want to
study scheduling in isolation should set a generous explicit
``timeout_period`` (E17 does).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "SCHEDULERS",
    "ArbiterConfig",
    "FlowQueueStats",
    "LinkArbiter",
    "FifoScheduler",
    "WrrScheduler",
    "DrrScheduler",
    "make_scheduler",
]

#: scheduler names accepted by :class:`ArbiterConfig` / ``--sched``
SCHEDULERS = ("fifo", "wrr", "drr")

#: tolerance for token-refill float drift: a wake-up scheduled at
#: ``(1 - tokens) / rate`` may refill to 0.999...9 tokens instead of
#: exactly 1.0; rounding within this bound prevents a livelock of
#: zero-length re-arms without ever granting a token early by more
#: than one part in 10^9
_TOKEN_EPSILON = 1e-9


@dataclass(frozen=True)
class ArbiterConfig:
    """Declarative description of the link bottleneck.

    ``rate=None`` (the default) means *no* bottleneck: the arbiter is
    never built and every ``FlowPort.send`` goes straight to the link,
    byte-identical to the pre-arbiter stack.
    """

    rate: Optional[float] = None  # link capacity, frames per unit time
    burst: float = 8.0  # token-bucket depth, frames
    scheduler: str = "fifo"
    queue_limit: Optional[int] = 64  # per-flow frames; None = unbounded
    quantum: float = 1.0  # DRR frames credited per turn per unit weight

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"link rate must be positive, got {self.rate}")
        if self.burst < 1.0:
            raise ValueError(
                f"burst must be >= 1 frame (else nothing ever sends), "
                f"got {self.burst}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULERS}"
            )
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1 or None, got {self.queue_limit}"
            )
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")

    @property
    def active(self) -> bool:
        """Whether this config describes an actual bottleneck."""
        return self.rate is not None


@dataclass
class FlowQueueStats:
    """Per-flow arbiter counters (droptail queue + grant accounting)."""

    enqueued: int = 0  # frames accepted into the queue
    granted: int = 0  # frames handed to the link
    dropped: int = 0  # droptail rejections at the queue limit
    wait_total: float = 0.0  # summed enqueue->grant wait (virtual time)
    max_depth: int = 0  # high-water queue occupancy

    def as_dict(self) -> dict:
        mean_wait = self.wait_total / self.granted if self.granted else 0.0
        return {
            "enqueued": self.enqueued,
            "granted": self.granted,
            "dropped": self.dropped,
            "wait_total": self.wait_total,
            "mean_wait": mean_wait,
            "max_depth": self.max_depth,
        }


class FifoScheduler:
    """Serve frames in global arrival order, regardless of flow.

    The work-conserving baseline: with one token per frame this is
    exactly a shared FIFO output buffer, so a flow that enqueues faster
    (larger window) captures a proportionally larger share of the link.
    """

    name = "fifo"

    def __init__(self, backlog: Callable[[int], int]) -> None:
        self._arrivals: Deque[int] = deque()

    def add_flow(self, flow: int, weight: float) -> None:
        pass

    def on_enqueue(self, flow: int) -> None:
        self._arrivals.append(flow)

    def select(self) -> int:
        return self._arrivals.popleft()


class WrrScheduler:
    """Weighted round-robin: up to ``int(weight)`` frames per turn.

    Flows are visited in ascending flow-id order (deterministic); an
    empty queue forfeits the rest of that flow's turn — credit does
    *not* carry over, which is what distinguishes WRR from DRR.
    """

    name = "wrr"

    def __init__(self, backlog: Callable[[int], int]) -> None:
        self._backlog = backlog
        self._order: List[int] = []
        self._weights: Dict[int, int] = {}
        self._idx = 0
        self._remaining = 0

    def add_flow(self, flow: int, weight: float) -> None:
        credit = max(1, int(weight))
        self._weights[flow] = credit
        self._order.append(flow)
        self._order.sort()
        self._idx = 0
        self._remaining = self._weights[self._order[0]]

    def on_enqueue(self, flow: int) -> None:
        pass

    def select(self) -> int:
        # only called with backlog somewhere, so the loop terminates
        while True:
            flow = self._order[self._idx]
            if self._remaining > 0 and self._backlog(flow) > 0:
                self._remaining -= 1
                return flow
            self._idx = (self._idx + 1) % len(self._order)
            self._remaining = self._weights[self._order[self._idx]]


class DrrScheduler:
    """Deficit round-robin (Shreedhar & Varghese) at frame granularity.

    Each time a flow's turn begins it earns ``quantum * weight`` deficit
    and serves frames while the deficit covers them (cost 1 per frame);
    unspent deficit carries to the flow's next turn, and a flow whose
    queue empties forfeits its deficit.  Equal weights therefore give
    per-flow (not per-frame) fairness even when enqueue rates differ —
    the property E17 measures against FIFO.
    """

    name = "drr"

    def __init__(
        self, backlog: Callable[[int], int], quantum: float = 1.0
    ) -> None:
        self._backlog = backlog
        self._quantum = quantum
        self._order: List[int] = []
        self._weights: Dict[int, float] = {}
        self._deficit: Dict[int, float] = {}
        self._idx = 0
        self._fresh_turn = True

    def add_flow(self, flow: int, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"DRR weight must be positive, got {weight}")
        self._weights[flow] = float(weight)
        self._deficit[flow] = 0.0
        self._order.append(flow)
        self._order.sort()
        self._idx = 0
        self._fresh_turn = True

    def on_enqueue(self, flow: int) -> None:
        pass

    def select(self) -> int:
        # terminates: every full rotation adds quantum*weight > 0 to at
        # least one backlogged flow's deficit, and select() is only
        # called when some flow is backlogged
        while True:
            flow = self._order[self._idx]
            if self._backlog(flow) == 0:
                self._deficit[flow] = 0.0  # empty queue forfeits deficit
                self._advance()
                continue
            if self._fresh_turn:
                self._deficit[flow] += self._quantum * self._weights[flow]
                self._fresh_turn = False
            if self._deficit[flow] >= 1.0:
                self._deficit[flow] -= 1.0
                return flow
            self._advance()

    def _advance(self) -> None:
        self._idx = (self._idx + 1) % len(self._order)
        self._fresh_turn = True


def make_scheduler(config: ArbiterConfig, backlog: Callable[[int], int]):
    """Instantiate the scheduler named by ``config.scheduler``."""
    if config.scheduler == "fifo":
        return FifoScheduler(backlog)
    if config.scheduler == "wrr":
        return WrrScheduler(backlog)
    if config.scheduler == "drr":
        return DrrScheduler(backlog, quantum=config.quantum)
    raise ValueError(f"unknown scheduler {config.scheduler!r}")


@dataclass
class _FlowQueue:
    """One flow's droptail buffer: (message, enqueued_at) pairs."""

    frames: Deque[Tuple[Any, float]] = field(default_factory=deque)
    stats: FlowQueueStats = field(default_factory=FlowQueueStats)


class LinkArbiter:
    """Token-bucket + scheduler gate in front of one channel's ``send``.

    Construction takes the owning simulator, the downstream send
    callable (usually ``link.send``), and an *active*
    :class:`ArbiterConfig`.  Flows register before submitting; frames
    enter per-flow queues via :meth:`submit` and leave, in scheduler
    order and at the token-bucket's pace, through the downstream send.

    Determinism: refill is a pure function of the virtual clock, the
    scheduler state is a pure function of the submit/grant history, and
    wake-ups are plain simulator events — so for a fixed seed the grant
    schedule is identical on the heap and calendar-queue engines.
    """

    def __init__(
        self,
        sim: Any,
        send: Callable[[Any], None],
        config: ArbiterConfig,
        name: str = "link",
    ) -> None:
        if not config.active:
            raise ValueError(
                "LinkArbiter requires a finite rate; with rate=None the "
                "mux bypasses the arbiter entirely"
            )
        self.sim = sim
        self.config = config
        self.name = name
        self._send = send
        self._queues: Dict[int, _FlowQueue] = {}
        self._scheduler = make_scheduler(config, self.queue_depth)
        self._backlog = 0
        self._tokens = float(config.burst)  # start full: first burst free
        self._last_refill = sim.now
        self._wake: Any = None
        self._pumping = False
        self.grants_total = 0
        self.drops_total = 0

    # -- registration ------------------------------------------------------

    def register(self, flow: int, weight: float = 1.0) -> FlowQueueStats:
        """Declare a flow (and its scheduling weight); idempotent."""
        queue = self._queues.get(flow)
        if queue is not None:
            return queue.stats
        queue = _FlowQueue()
        self._queues[flow] = queue
        self._scheduler.add_flow(flow, weight)
        return queue.stats

    # -- inspection --------------------------------------------------------

    def queue_depth(self, flow: int) -> int:
        """Frames currently buffered for ``flow``."""
        queue = self._queues.get(flow)
        return len(queue.frames) if queue is not None else 0

    def queued(self, flow: int):
        """Iterate ``flow``'s buffered messages, oldest first."""
        queue = self._queues.get(flow)
        if queue is not None:
            for message, _ in queue.frames:
                yield message

    def flow_stats(self, flow: int) -> FlowQueueStats:
        return self._queues[flow].stats

    def stats_dict(self) -> dict:
        """JSON-safe aggregate + per-flow arbiter counters."""
        return {
            "rate": self.config.rate,
            "burst": self.config.burst,
            "scheduler": self.config.scheduler,
            "queue_limit": self.config.queue_limit,
            "grants_total": self.grants_total,
            "drops_total": self.drops_total,
            # string keys so the dict survives a JSON round-trip exactly
            # (the sweep cache re-reads serialized results byte-identically)
            "per_flow": {
                str(flow): queue.stats.as_dict()
                for flow, queue in sorted(self._queues.items())
            },
        }

    # -- data path ---------------------------------------------------------

    def submit(self, flow: int, message: Any) -> bool:
        """Queue one frame for ``flow``; False on a droptail rejection."""
        queue = self._queues[flow]
        limit = self.config.queue_limit
        if limit is not None and len(queue.frames) >= limit:
            queue.stats.dropped += 1
            self.drops_total += 1
            return False
        queue.frames.append((message, self.sim.now))
        queue.stats.enqueued += 1
        depth = len(queue.frames)
        if depth > queue.stats.max_depth:
            queue.stats.max_depth = depth
        self._scheduler.on_enqueue(flow)
        self._backlog += 1
        self._pump()
        return True

    # -- token bucket ------------------------------------------------------

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                float(self.config.burst),
                self._tokens + elapsed * float(self.config.rate),
            )
            self._last_refill = now
        if 0 < 1.0 - self._tokens < _TOKEN_EPSILON:
            self._tokens = 1.0  # absorb wake-up float drift (see above)

    def _pump(self) -> None:
        """Grant while tokens and backlog last; re-arm a wake-up if not.

        Re-entrancy guard: granting calls the downstream ``send``, whose
        observers may synchronously submit more traffic (an endpoint
        reacting to a channel event); those submissions enqueue and the
        *outer* pump loop picks them up.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._backlog:
                self._refill(self.sim.now)
                if self._tokens < 1.0:
                    break
                flow = self._scheduler.select()
                queue = self._queues[flow]
                message, enqueued_at = queue.frames.popleft()
                self._backlog -= 1
                self._tokens -= 1.0
                queue.stats.granted += 1
                queue.stats.wait_total += self.sim.now - enqueued_at
                self.grants_total += 1
                self._send(message)
        finally:
            self._pumping = False
        if self._backlog and self._wake is None:
            delay = (1.0 - self._tokens) / float(self.config.rate)
            self._wake = self.sim.schedule(delay, self._on_wake)

    def _on_wake(self) -> None:
        self._wake = None
        self._pump()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkArbiter({self.name!r}, rate={self.config.rate}, "
            f"sched={self.config.scheduler}, backlog={self._backlog})"
        )
