"""The simulated unidirectional channel.

The paper models each channel as a *set* of in-transit messages whose
membership changes as messages are sent into it, lost from it, or received
from it.  :class:`Channel` realises that model on the event engine:

* **send** — the loss model may drop the message immediately (it leaves the
  set); otherwise a delay is drawn and delivery is scheduled;
* **reorder** — falls out of independent per-message delays;
* **aging** — if ``max_lifetime`` is set, a message whose sampled delay
  exceeds it is discarded instead of delivered.  This implements the
  paper's "mechanism for aging messages in transit, i.e., ensuring that
  they are eventually discarded if not received", and restores a finite
  message lifetime even under unbounded delay models.

The in-flight set is inspectable (:meth:`in_flight`,
:meth:`count_matching`).  Inspection exists for the *oracle* timeout of the
paper's abstract protocol, whose guard reads channel contents (e.g.
``C_SR = {}``); timer-based senders never touch it.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.channel.delay import ConstantDelay, DelayModel
from repro.channel.impairments import LossModel, NoLoss
from repro.sim.engine import Simulator

__all__ = ["Channel", "ChannelStats"]


@dataclass
class ChannelStats:
    """Counters maintained by a :class:`Channel` over its lifetime."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    aged_out: int = 0
    reordered: int = 0  # deliveries that overtook an earlier send
    duplicated: int = 0  # extra copies injected (see duplicate_probability)

    @property
    def in_flight_now(self) -> int:
        """Derived: copies sent but not yet delivered/lost/aged."""
        return (
            self.sent + self.duplicated - self.delivered - self.lost - self.aged_out
        )

    def as_dict(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "aged_out": self.aged_out,
            "reordered": self.reordered,
            "duplicated": self.duplicated,
        }


class Channel:
    """A lossy, reordering, unidirectional channel.

    Parameters
    ----------
    sim:
        The event engine this channel schedules deliveries on.
    delay:
        Per-message delay model; defaults to a unit constant delay (FIFO).
    loss:
        Loss model; defaults to no loss.
    rng:
        Random stream for delay and loss draws.  Pass a dedicated stream
        per channel for reproducible comparative studies.
    max_lifetime:
        If set, messages whose sampled delay exceeds this bound are aged
        out (discarded) instead of delivered.
    duplicate_probability:
        Probability that a message is delivered twice (an independent
        second copy with its own delay).  **The paper's channel model
        forbids duplication** — assertion 8 requires at most one copy of
        each message in transit — so this knob exists to *demonstrate*
        that assumption's boundary (see ``tests/test_duplication.py``),
        not for normal operation.
    name:
        Label used in traces and reprs.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: Optional[DelayModel] = None,
        loss: Optional[LossModel] = None,
        rng: Optional[random.Random] = None,
        max_lifetime: Optional[float] = None,
        duplicate_probability: float = 0.0,
        name: str = "channel",
    ) -> None:
        if max_lifetime is not None and max_lifetime <= 0:
            raise ValueError(f"max_lifetime must be positive, got {max_lifetime}")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError(
                f"duplicate_probability must be in [0, 1], got {duplicate_probability}"
            )
        self.sim = sim
        self.delay = delay if delay is not None else ConstantDelay(1.0)
        self.loss = loss if loss is not None else NoLoss()
        self.rng = rng if rng is not None else random.Random(0)
        self.max_lifetime = max_lifetime
        self.duplicate_probability = duplicate_probability
        self.name = name
        self.stats = ChannelStats()
        self._receiver: Optional[Callable[[Any], None]] = None
        # flight_id -> (message, send_seq, event); a plain tuple rather
        # than a bookkeeping object keeps the per-message send cost to one
        # small allocation on the hot path
        self._in_flight: dict[int, tuple] = {}
        self._ids = itertools.count()
        self._last_delivered_send_seq = -1
        self._observers: list[Callable[[str, Any], None]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Set the delivery callback.  Must be called before sending."""
        self._receiver = receiver

    def add_observer(self, observer: Callable[[str, Any], None]) -> None:
        """Register a callback invoked as ``observer(kind, message)``.

        ``kind`` is one of ``"send"``, ``"deliver"``, ``"lose"``, ``"age"``,
        or ``"duplicate"`` (an extra copy entering the channel).
        Observers feed the trace recorder and test probes.
        """
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # the data path
    # ------------------------------------------------------------------

    def send(self, message: Any) -> None:
        """Inject a message; it will be lost, aged out, or delivered later."""
        if self._receiver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver connected")
        stats = self.stats
        rng = self.rng
        send_seq = stats.sent
        stats.sent = send_seq + 1
        # the observer list is re-read at every notify point, never
        # aliased into a local: an observer attached mid-send (e.g. from
        # a callback fired between two sends, or a telemetry layer wired
        # up after traffic started) is seen by the very next event
        if self._observers:
            self._notify("send", message)

        if self.loss.drops_at(rng, self.sim.now):
            stats.lost += 1
            if self._observers:
                self._notify("lose", message)
            return

        copies = 1
        if (
            self.duplicate_probability > 0.0
            and rng.random() < self.duplicate_probability
        ):
            copies = 2
            stats.duplicated += 1
            if self._observers:
                self._notify("duplicate", message)  # second copy entering

        max_lifetime = self.max_lifetime
        sample = self.delay.sample
        for _ in range(copies):
            transit = sample(rng)
            if max_lifetime is not None and transit > max_lifetime:
                stats.aged_out += 1
                if self._observers:
                    self._notify("age", message)
                continue
            flight_id = next(self._ids)
            event = self.sim.schedule(transit, self._deliver, flight_id)
            self._in_flight[flight_id] = (message, send_seq, event)

    def _deliver(self, flight_id: int) -> None:
        message, send_seq, _ = self._in_flight.pop(flight_id)
        self.stats.delivered += 1
        if send_seq < self._last_delivered_send_seq:
            self.stats.reordered += 1
        else:
            self._last_delivered_send_seq = send_seq
        if self._observers:
            self._notify("deliver", message)
        self._receiver(message)

    def reset(self) -> None:
        """Return the channel to its just-built state for a repeat run.

        Cancels and discards everything in flight, zeroes the counters,
        and — crucially for reproducibility — resets the loss model, so
        stateful models (:class:`~repro.channel.impairments.\
GilbertElliottLoss`, :class:`~repro.channel.impairments.ScriptedLoss`)
        replay deterministically across repeated runs on one channel.
        The rng is owned by the caller and is *not* reseeded here.
        """
        for _, _, event in self._in_flight.values():
            event.cancel()
        self._in_flight.clear()
        self.stats = ChannelStats()
        self._last_delivered_send_seq = -1
        self.loss.reset()

    def drop_in_flight(self, predicate: Callable[[Any], bool]) -> int:
        """Forcibly lose in-flight messages matching ``predicate``.

        Returns the number dropped.  Used by fault-injection experiments to
        lose a specific message after it entered the channel.
        """
        doomed = [
            flight_id
            for flight_id, entry in self._in_flight.items()
            if predicate(entry[0])
        ]
        for flight_id in doomed:
            message, _, event = self._in_flight.pop(flight_id)
            event.cancel()
            self.stats.lost += 1
            self._notify("lose", message)
        return len(doomed)

    # ------------------------------------------------------------------
    # oracle inspection (used only by the paper's abstract timeout guard)
    # ------------------------------------------------------------------

    def in_flight(self) -> Iterator[Any]:
        """Iterate over the messages currently in transit."""
        return (entry[0] for entry in self._in_flight.values())

    @property
    def in_flight_count(self) -> int:
        """Number of messages currently in transit."""
        return len(self._in_flight)

    @property
    def is_empty(self) -> bool:
        """True if no message is in transit (the paper's ``C = {}``)."""
        return not self._in_flight

    def count_matching(self, predicate: Callable[[Any], bool]) -> int:
        """Count in-flight messages matching ``predicate``.

        Implements the paper's ``*SR^m`` / ``*RS^m`` occupancy counts.
        """
        return sum(1 for message in self.in_flight() if predicate(message))

    # ------------------------------------------------------------------
    # derived bounds
    # ------------------------------------------------------------------

    @property
    def effective_max_lifetime(self) -> Optional[float]:
        """Longest time any message can spend in this channel.

        ``min`` of the delay model's bound and the aging bound; ``None`` if
        neither is finite (in which case no timer-based sender can safely
        use this channel).
        """
        bounds = [
            bound
            for bound in (self.delay.max_delay, self.max_lifetime)
            if bound is not None
        ]
        return min(bounds) if bounds else None

    # ------------------------------------------------------------------

    def _notify(self, kind: str, message: Any) -> None:
        for observer in self._observers:
            observer(kind, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, delay={self.delay!r}, loss={self.loss!r}, "
            f"in_flight={self.in_flight_count})"
        )


# the raw channel is the reference implementation of the harness surface
from repro.channel.surface import ChannelSurface  # noqa: E402  (cycle-free)

ChannelSurface.register(Channel)
