"""Per-message delay models for simulated channels.

A delay model turns a random stream into a one-way transit delay for each
message.  The spread of the delay distribution is what produces *message
reorder*: with a constant delay the channel is FIFO; with jitter, a later
message can overtake an earlier one.  The reorder-sweep experiment (E10)
scales the jitter of a :class:`UniformDelay` to dial reordering from zero
to severe.

Every model reports a finite :attr:`max_delay` where one exists.  Bounded
delay is not a convenience: the correctness of the timer-based
retransmission policy (paper Sections II/IV) requires that *no copy of a
message or its acknowledgment is still in transit* when the timer fires,
which is only implementable when message lifetime in the channel is
bounded.  Unbounded distributions must be combined with channel aging
(``Channel(max_lifetime=...)``) to restore the bound, exactly as the paper
prescribes ("a mechanism for aging messages in transit").
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Optional

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "reorder_probability",
]


class DelayModel(ABC):
    """Samples a one-way transit delay for each message.

    Delay models sit on the per-message hot path, so the concrete models
    use ``__slots__`` and precompute derived constants (e.g. the
    exponential rate) at construction time.
    """

    __slots__ = ()

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw a delay for one message."""

    @property
    @abstractmethod
    def max_delay(self) -> Optional[float]:
        """Upper bound on any sampled delay, or None if unbounded."""

    @property
    @abstractmethod
    def mean_delay(self) -> float:
        """Expected delay; used to express timeouts in natural units."""


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units: a FIFO channel."""

    __slots__ = ("delay",)

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    @property
    def max_delay(self) -> float:
        return self.delay

    @property
    def mean_delay(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay})"


class UniformDelay(DelayModel):
    """Delay uniform on ``[low, high]``: tunable, bounded reordering.

    The ratio ``(high - low) / mean`` controls how aggressively messages
    overtake each other; see :func:`reorder_probability`.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def max_delay(self) -> float:
        return self.high

    @property
    def mean_delay(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDelay({self.low}, {self.high})"


class ExponentialDelay(DelayModel):
    """Delay ``offset + Exp(mean)``: heavy reordering, unbounded tail.

    Because the tail is unbounded, :attr:`max_delay` is None; a channel
    using this model must enforce ``max_lifetime`` aging before a
    timer-based sender may safely be attached to it.
    """

    __slots__ = ("mean", "offset", "_rate")

    def __init__(self, mean: float, offset: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.mean = mean
        self.offset = offset
        self._rate = 1.0 / mean  # same division, hoisted off the hot path

    def sample(self, rng: random.Random) -> float:
        return self.offset + rng.expovariate(self._rate)

    @property
    def max_delay(self) -> Optional[float]:
        return None

    @property
    def mean_delay(self) -> float:
        return self.offset + self.mean

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self.mean}, offset={self.offset})"


def reorder_probability(low: float, high: float, gap: float) -> float:
    """Probability that message B, sent ``gap`` after message A, arrives first.

    Both delays are independent Uniform(low, high).  This closed form lets
    E10 label its sweep axis with an interpretable reorder intensity rather
    than raw jitter numbers.

    With width ``W = high - low`` and ``g = gap``: B overtakes A iff
    ``dB + g < dA``, i.e. ``dA - dB > g``, where ``dA - dB`` is triangular
    on [-W, W].  For 0 <= g < W the tail probability is ``(W - g)^2 / (2 W^2)``;
    for g >= W it is 0.
    """
    width = high - low
    if width <= 0 or gap >= width:
        return 0.0
    if gap < 0:
        raise ValueError(f"gap must be non-negative, got {gap}")
    return (width - gap) ** 2 / (2.0 * width * width)


def _self_check() -> None:  # pragma: no cover - module sanity hook
    assert math.isclose(reorder_probability(0.0, 2.0, 0.0), 0.5)
    assert reorder_probability(0.0, 2.0, 2.0) == 0.0
