"""Loss and duplication models for simulated channels.

The paper's channel may *lose* messages (assertion 8 additionally rules out
duplication for the block-ack protocol, so duplication models exist mainly
to test baselines and to demonstrate which assumptions each protocol
needs).  Loss is decided per message at send time; a lost message never
enters the in-flight set, which matches the paper's set-of-messages channel
abstraction where a lost message simply leaves the set.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "ScriptedLoss",
    "BrownoutLoss",
    "FrameCorruption",
]


class LossModel(ABC):
    """Decides, per message, whether the channel loses it."""

    __slots__ = ()

    @abstractmethod
    def drops(self, rng: random.Random) -> bool:
        """Return True if the next message should be lost."""

    def drops_at(self, rng: random.Random, now: float) -> bool:
        """Time-aware loss decision; stateless models ignore ``now``.

        :class:`~repro.channel.channel.Channel` calls this entry point,
        so time-varying models (:class:`BrownoutLoss`) can script loss
        probability against the virtual clock while every existing model
        keeps its time-free :meth:`drops` signature.
        """
        return self.drops(rng)

    def reset(self) -> None:
        """Reset internal state (for stateful models); default no-op."""


class NoLoss(LossModel):
    """A perfect channel: nothing is ever dropped."""

    __slots__ = ()

    def drops(self, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability ``p`` per message."""

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = p

    def drops(self, rng: random.Random) -> bool:
        return self.p > 0.0 and rng.random() < self.p

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.p})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert–Elliott).

    The channel alternates between a GOOD state (loss ``p_good``) and a BAD
    state (loss ``p_bad``), with geometric sojourn times governed by the
    transition probabilities.  Bursty loss stresses the recovery-latency
    experiment (E5): a burst can take out a whole block acknowledgment's
    worth of messages at once.
    """

    __slots__ = ("p_good_to_bad", "p_bad_to_good", "p_good", "p_bad", "state")

    GOOD = "good"
    BAD = "bad"

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        p_good: float = 0.0,
        p_bad: float = 1.0,
    ) -> None:
        for name, value in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self.state = self.GOOD

    def drops(self, rng: random.Random) -> bool:
        if self.state == self.GOOD:
            if rng.random() < self.p_good_to_bad:
                self.state = self.BAD
        else:
            if rng.random() < self.p_bad_to_good:
                self.state = self.GOOD
        loss_p = self.p_good if self.state == self.GOOD else self.p_bad
        return loss_p > 0.0 and rng.random() < loss_p

    def reset(self) -> None:
        self.state = self.GOOD

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(g2b={self.p_good_to_bad}, "
            f"b2g={self.p_bad_to_good}, pg={self.p_good}, pb={self.p_bad})"
        )


class ScriptedLoss(LossModel):
    """Drop exactly the messages at the given 0-based send indices.

    Used for deterministic fault injection: E5 drops precisely the one
    acknowledgment that covers a block, then measures recovery time.
    """

    __slots__ = ("drop_indices", "_index")

    def __init__(self, drop_indices: set) -> None:
        self.drop_indices = set(drop_indices)
        self._index = 0

    def drops(self, rng: random.Random) -> bool:
        dropped = self._index in self.drop_indices
        self._index += 1
        return dropped

    def reset(self) -> None:
        self._index = 0

    @property
    def messages_seen(self) -> int:
        """How many send decisions this model has made."""
        return self._index

    def __repr__(self) -> str:
        return f"ScriptedLoss({sorted(self.drop_indices)!r})"


class BrownoutLoss(LossModel):
    """Scripted time-varying loss: a piecewise-linear probability ramp.

    ``breakpoints`` is a sorted sequence of ``(time, probability)``
    pairs; between consecutive breakpoints the loss probability is
    interpolated linearly, outside the scripted range it is zero.  A
    brownout — the channel degrading, bottoming out, then recovering —
    is ``[(t0, 0), (t1, p_peak), (t2, p_peak), (t3, 0)]``.

    An optional ``base`` model composes an always-on impairment
    (e.g. 2% Bernoulli loss) with the scripted ramp: a message is lost
    if *either* decides to drop it.  The base model draws first, so the
    rng stream stays deterministic.
    """

    __slots__ = ("breakpoints", "base")

    def __init__(self, breakpoints, base: "LossModel" = None) -> None:
        points = [(float(t), float(p)) for t, p in breakpoints]
        if not points:
            raise ValueError("BrownoutLoss needs at least one breakpoint")
        if any(b[0] < a[0] for a, b in zip(points, points[1:])):
            raise ValueError("breakpoint times must be non-decreasing")
        if any(not 0.0 <= p <= 1.0 for _, p in points):
            raise ValueError("breakpoint probabilities must be in [0, 1]")
        self.breakpoints = points
        self.base = base

    def probability_at(self, now: float) -> float:
        """Scripted loss probability at virtual time ``now``."""
        points = self.breakpoints
        if now < points[0][0] or now > points[-1][0]:
            return 0.0
        for (t0, p0), (t1, p1) in zip(points, points[1:]):
            if t0 <= now <= t1:
                if t1 == t0:
                    return p1
                return p0 + (p1 - p0) * (now - t0) / (t1 - t0)
        return points[-1][1]

    def drops(self, rng: random.Random) -> bool:
        raise RuntimeError(
            "BrownoutLoss is time-varying; the channel must call drops_at"
        )

    def drops_at(self, rng: random.Random, now: float) -> bool:
        if self.base is not None and self.base.drops_at(rng, now):
            return True
        p = self.probability_at(now)
        return p > 0.0 and rng.random() < p

    def reset(self) -> None:
        if self.base is not None:
            self.base.reset()

    def __repr__(self) -> str:
        return f"BrownoutLoss({self.breakpoints!r}, base={self.base!r})"


class FrameCorruption:
    """Decides, per delivery, whether a frame arrives corrupted.

    Corruption detected by a checksum is indistinguishable from loss at
    the protocol layer — the frame is discarded on arrival — but it is a
    *distinct fault* worth counting separately: it consumes channel
    capacity and shows up in receive-side stats, exactly like
    ``CorruptFrame`` drops on the UDP transport.  Used by
    :class:`~repro.robustness.faults.FaultPlan`, which draws from its
    own seeded stream so corruption never perturbs channel randomness.
    """

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"corruption probability must be in [0, 1], got {p}")
        self.p = p

    def corrupts(self, rng: random.Random) -> bool:
        """Return True if the next delivered frame should be corrupt."""
        return self.p > 0.0 and rng.random() < self.p

    def __repr__(self) -> str:
        return f"FrameCorruption({self.p})"
