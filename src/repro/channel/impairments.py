"""Loss and duplication models for simulated channels.

The paper's channel may *lose* messages (assertion 8 additionally rules out
duplication for the block-ack protocol, so duplication models exist mainly
to test baselines and to demonstrate which assumptions each protocol
needs).  Loss is decided per message at send time; a lost message never
enters the in-flight set, which matches the paper's set-of-messages channel
abstraction where a lost message simply leaves the set.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "ScriptedLoss",
]


class LossModel(ABC):
    """Decides, per message, whether the channel loses it."""

    @abstractmethod
    def drops(self, rng: random.Random) -> bool:
        """Return True if the next message should be lost."""

    def reset(self) -> None:
        """Reset internal state (for stateful models); default no-op."""


class NoLoss(LossModel):
    """A perfect channel: nothing is ever dropped."""

    def drops(self, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability ``p`` per message."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = p

    def drops(self, rng: random.Random) -> bool:
        return self.p > 0.0 and rng.random() < self.p

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.p})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert–Elliott).

    The channel alternates between a GOOD state (loss ``p_good``) and a BAD
    state (loss ``p_bad``), with geometric sojourn times governed by the
    transition probabilities.  Bursty loss stresses the recovery-latency
    experiment (E5): a burst can take out a whole block acknowledgment's
    worth of messages at once.
    """

    GOOD = "good"
    BAD = "bad"

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        p_good: float = 0.0,
        p_bad: float = 1.0,
    ) -> None:
        for name, value in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self.state = self.GOOD

    def drops(self, rng: random.Random) -> bool:
        if self.state == self.GOOD:
            if rng.random() < self.p_good_to_bad:
                self.state = self.BAD
        else:
            if rng.random() < self.p_bad_to_good:
                self.state = self.GOOD
        loss_p = self.p_good if self.state == self.GOOD else self.p_bad
        return loss_p > 0.0 and rng.random() < loss_p

    def reset(self) -> None:
        self.state = self.GOOD

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(g2b={self.p_good_to_bad}, "
            f"b2g={self.p_bad_to_good}, pg={self.p_good}, pb={self.p_bad})"
        )


class ScriptedLoss(LossModel):
    """Drop exactly the messages at the given 0-based send indices.

    Used for deterministic fault injection: E5 drops precisely the one
    acknowledgment that covers a block, then measures recovery time.
    """

    def __init__(self, drop_indices: set) -> None:
        self.drop_indices = set(drop_indices)
        self._index = 0

    def drops(self, rng: random.Random) -> bool:
        dropped = self._index in self.drop_indices
        self._index += 1
        return dropped

    def reset(self) -> None:
        self._index = 0

    @property
    def messages_seen(self) -> int:
        """How many send decisions this model has made."""
        return self._index

    def __repr__(self) -> str:
        return f"ScriptedLoss({sorted(self.drop_indices)!r})"
