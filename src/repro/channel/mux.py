"""Flow multiplexing: N endpoint pairs over one shared impaired link.

The paper's model (and this repo's :func:`~repro.sim.runner.run_transfer`)
wires one sender/receiver pair to dedicated channels.  A production
deployment of the window protocol looks different: *many* concurrent
flows share the same physical link, and loss, delay, aging, and fault
plans act on the link — not on per-flow copies of it.  :class:`FlowMux`
provides exactly that:

* every message a :class:`FlowPort` sends is wrapped in a
  :class:`~repro.core.messages.FlowEnvelope` tagging it with the port's
  flow id (plus a per-flow envelope counter for reorder accounting);
* the mux owns the shared channel's receiver slot and demultiplexes each
  delivered envelope to the destination flow's connected endpoint;
* each port exposes the full harness channel surface
  (:class:`~repro.channel.surface.ChannelSurface`) — per-flow stats,
  observers that see *unwrapped* protocol messages (so invariant
  monitors and probes work per flow unchanged), in-flight iteration
  filtered to the flow — while the shared link keeps the aggregate view.

The shared link may be a raw :class:`~repro.channel.channel.Channel`
(envelopes travel as objects) or a :class:`~repro.wire.framed
.FramedChannel` (envelopes serialize as ``0x03`` frames carrying the
inner frame; a bit flip anywhere discards the envelope whole, so a
damaged frame is never misdelivered to the wrong flow).

When the mux is built with an *active*
:class:`~repro.channel.arbiter.ArbiterConfig`, sends additionally pass
through a :class:`~repro.channel.arbiter.LinkArbiter` — a token-bucket
capacity model with pluggable per-flow scheduling — before reaching the
link.  With no arbiter (or ``rate=None``) the send path is exactly the
historical direct call, byte-identical to the pre-arbiter stack.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.channel.arbiter import ArbiterConfig, LinkArbiter
from repro.channel.channel import ChannelStats
from repro.channel.surface import ChannelSurface
from repro.core.messages import FlowEnvelope
from repro.wire.codec import MAX_FLOW_ID

__all__ = ["FlowMux", "FlowPort"]


class FlowMux:
    """Demultiplexer owning one shared channel's delivery path.

    Construction claims the link's receiver slot (``link.connect``); all
    subsequent endpoint wiring goes through per-flow ports obtained with
    :meth:`port`.  Messages arriving without a flow envelope, or for a
    flow with no connected receiver, raise — silent cross-flow delivery
    would invalidate every per-flow invariant.

    ``arbiter`` takes an :class:`~repro.channel.arbiter.ArbiterConfig`;
    when it is active (finite ``rate``) every port's sends are queued
    and paced by a shared :class:`~repro.channel.arbiter.LinkArbiter`.
    """

    def __init__(
        self, link: Any, arbiter: Optional[ArbiterConfig] = None
    ) -> None:
        self.link = link
        self._ports: Dict[int, FlowPort] = {}
        self.arbiter: Optional[LinkArbiter] = None
        if arbiter is not None and arbiter.active:
            self.arbiter = LinkArbiter(
                link.sim, link.send, arbiter, name=link.name
            )
        link.connect(self._demux)
        link.add_observer(self._observe)

    @property
    def sim(self):
        return self.link.sim

    @property
    def name(self) -> str:
        return self.link.name

    def port(self, flow: int, weight: float = 1.0) -> "FlowPort":
        """The (created-on-first-use) port for ``flow``.

        ``weight`` is the flow's scheduling weight at the arbiter
        (ignored without one, and on repeat lookups of an existing
        port — weights are fixed at registration).
        """
        if not 0 <= flow <= MAX_FLOW_ID:
            raise ValueError(
                f"flow id {flow} outside the 16-bit wire domain"
            )
        existing = self._ports.get(flow)
        if existing is not None:
            return existing
        if self.arbiter is not None:
            self.arbiter.register(flow, weight)
        port = FlowPort(self, flow)
        self._ports[flow] = port
        return port

    def ports(self) -> List["FlowPort"]:
        """All created ports, in flow-id order."""
        return [self._ports[flow] for flow in sorted(self._ports)]

    # -- delivery path -----------------------------------------------------

    def _demux(self, envelope: Any) -> None:
        if not isinstance(envelope, FlowEnvelope):
            raise TypeError(
                f"flow mux on {self.name!r} received an untagged message: "
                f"{envelope!r}"
            )
        port = self._ports.get(envelope.flow)
        if port is None or port._receiver is None:
            raise RuntimeError(
                f"no receiver connected for flow {envelope.flow} on "
                f"{self.name!r}"
            )
        port._receiver(envelope.message)

    def _observe(self, kind: str, message: Any) -> None:
        if not isinstance(message, FlowEnvelope):
            return
        port = self._ports.get(message.flow)
        if port is not None:
            port._on_event(kind, message)


class FlowPort:
    """One flow's channel-shaped view of the shared link.

    Implements the complete :class:`~repro.channel.surface.ChannelSurface`
    so endpoints, monitors, probes, and obs sessions attach to a port
    exactly as they would to a dedicated channel.  ``stats`` counts this
    flow's envelopes only; ``reordered`` uses the per-flow envelope
    counter, so link-level reordering between *different* flows (harmless
    to each) is not charged to either.
    """

    def __init__(self, mux: FlowMux, flow: int) -> None:
        self._mux = mux
        self.flow = flow
        self._receiver: Optional[Callable[[Any], None]] = None
        self._observers: List[Callable[[str, Any], None]] = []
        self.stats = ChannelStats()
        self._next_fseq = 0
        self._last_delivered_fseq: Optional[int] = None

    @property
    def sim(self):
        return self._mux.sim

    @property
    def name(self) -> str:
        return f"{self._mux.name}.f{self.flow}"

    def connect(self, receiver: Callable[[Any], None]) -> None:
        self._receiver = receiver

    def send(self, message: Any) -> None:
        envelope = FlowEnvelope(
            flow=self.flow, fseq=self._next_fseq, message=message
        )
        self._next_fseq += 1
        arbiter = self._mux.arbiter
        if arbiter is None:
            self._mux.link.send(envelope)
        else:
            arbiter.submit(self.flow, envelope)

    def add_observer(self, observer: Callable[[str, Any], None]) -> None:
        """Observers see this flow's *unwrapped* protocol messages."""
        self._observers.append(observer)

    def _on_event(self, kind: str, envelope: FlowEnvelope) -> None:
        if kind == "send":
            self.stats.sent += 1
        elif kind == "deliver":
            self.stats.delivered += 1
            last = self._last_delivered_fseq
            if last is not None and envelope.fseq < last:
                self.stats.reordered += 1
            else:
                self._last_delivered_fseq = envelope.fseq
        elif kind == "lose":
            self.stats.lost += 1
        elif kind == "age":
            self.stats.aged_out += 1
        elif kind == "duplicate":
            self.stats.duplicated += 1
        for observer in self._observers:
            observer(kind, envelope.message)

    # -- arbiter view ------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Frames waiting at the arbiter for this flow (0 without one)."""
        arbiter = self._mux.arbiter
        return arbiter.queue_depth(self.flow) if arbiter is not None else 0

    @property
    def queue_stats(self) -> Optional[dict]:
        """This flow's arbiter counters as a dict; None without one."""
        arbiter = self._mux.arbiter
        if arbiter is None:
            return None
        return arbiter.flow_stats(self.flow).as_dict()

    # -- in-flight inspection ----------------------------------------------

    def in_flight(self) -> Iterator[Any]:
        """This flow's in-flight messages, unwrapped.

        From the endpoints' perspective a frame is in transit from the
        moment ``send`` accepts it, so arbiter-queued (not yet granted)
        frames are included ahead of the link's own in-flight set — the
        invariant monitors and oracle senders keep a coherent view with
        and without a bottleneck.
        """
        arbiter = self._mux.arbiter
        if arbiter is not None:
            for envelope in arbiter.queued(self.flow):
                yield envelope.message
        for message in self._mux.link.in_flight():
            if isinstance(message, FlowEnvelope) and message.flow == self.flow:
                yield message.message

    @property
    def in_flight_count(self) -> int:
        return sum(1 for _ in self.in_flight())

    @property
    def is_empty(self) -> bool:
        return next(self.in_flight(), None) is None

    def count_matching(self, predicate: Callable[[Any], bool]) -> int:
        return sum(1 for message in self.in_flight() if predicate(message))

    @property
    def effective_max_lifetime(self) -> Optional[float]:
        return self._mux.link.effective_max_lifetime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowPort({self.name!r}, in_flight={self.in_flight_count})"


ChannelSurface.register(FlowPort)
