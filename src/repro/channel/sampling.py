"""Block-refilled random sampling for the fast engine's channel path.

The default engine draws one ``rng.random()`` per loss/duplication
decision and one ``rng.uniform``/``rng.expovariate`` per delay sample.
:class:`BlockRandom` amortizes those draws: it pre-fills a block of
uniforms — with numpy's MT19937 when available, a pure-python refill
otherwise — and serves every channel draw from the block.

**Stream identity is the load-bearing property.**  The fast engine's
correctness gate is decision-trace equivalence with the default engine,
which holds only if every draw returns bit-for-bit the value the wrapped
:class:`random.Random` would have produced:

* numpy refills transplant the Mersenne-Twister state into a
  ``numpy.random.RandomState``, draw the block with ``random_sample``
  (the same ``(a >> 5) * 2**26 + (b >> 6)) / 2**53`` double recipe
  CPython uses), and transplant the advanced state back — so the wrapped
  rng stays exactly in sync and the pure-python fallback is
  indistinguishable.
* ``uniform`` and ``expovariate`` reproduce CPython's scalar arithmetic
  (``a + (b - a) * u`` and ``-log(1.0 - u) / lambd`` with ``math.log``);
  the log is deliberately *not* vectorized, because numpy's SIMD ``log``
  is not guaranteed ulp-identical to libm's and a single flipped ulp in
  a delay sample would cascade into a trace divergence.

Set ``REPRO_NO_NUMPY=1`` to force the pure-python refill path (used by
the CI no-numpy leg); the flag is resolved once per instance, at
construction.
"""

from __future__ import annotations

import os
import random
from math import log as _log
from typing import Optional

__all__ = ["BlockRandom", "numpy_available"]

DEFAULT_BLOCK_SIZE = 1024


def numpy_available() -> bool:
    """True if numpy-backed refills are usable (and not disabled by env)."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return False
    try:
        import numpy  # noqa: F401
        import numpy.random  # noqa: F401
    except Exception:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        return False
    return True


class BlockRandom:
    """Serve ``random``/``uniform``/``expovariate`` from pre-filled blocks.

    Wraps a :class:`random.Random` and returns exactly the values the
    wrapped instance would produce, in the same order, for the three
    draw methods the channel models use.  Any other method is
    intentionally absent: a silent fallthrough to an unwrapped
    distribution would consume stream positions invisibly and desync
    the decision traces.

    BlockRandom *owns* the stream from construction onwards: with the
    numpy backend the Mersenne-Twister state is transplanted into a
    ``RandomState`` once (per-refill transplants would cost more than
    the draws), so direct use of the wrapped instance afterwards is not
    supported — the runner wraps each channel stream exactly once, at
    build time.  :meth:`getstate` syncs the wrapped rng back first, so
    snapshots remain exact.
    """

    __slots__ = ("rng", "block_size", "_block", "_np_state")

    def __init__(
        self,
        rng: random.Random,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.rng = rng
        self.block_size = block_size
        self._block: list = []
        self._np_state = None
        if numpy_available():
            self._adopt_stream()

    def _adopt_stream(self) -> None:
        """Transplant the rng's Mersenne-Twister state into numpy, once."""
        import numpy as np
        from numpy.random import RandomState

        version, internal, _gauss = self.rng.getstate()
        if version != 3:  # pragma: no cover - future-proofing
            return  # unknown state layout: stay on the python refill path
        # seeded construction skips the OS-entropy path; set_state
        # overwrites the seed immediately anyway.  python keeps the 624
        # key words plus the cursor in one tuple; numpy wants them split
        state = RandomState(0)
        state.set_state(
            ("MT19937", np.asarray(internal[:-1], dtype=np.uint32), internal[-1])
        )
        self._np_state = state

    def _sync_back(self) -> None:
        """Write the numpy stream position back into the wrapped rng."""
        if self._np_state is None:
            return
        version, _internal, gauss_next = self.rng.getstate()
        _name, key, pos = self._np_state.get_state()[:3]
        self.rng.setstate((version, tuple(key.tolist()) + (int(pos),), gauss_next))

    def _refill(self) -> None:
        """Fill the block with the stream's next ``block_size`` draws.

        The block is stored reversed so :meth:`random` is a bare
        ``list.pop()`` from the tail.
        """
        state = self._np_state
        if state is not None:
            block = state.random_sample(self.block_size).tolist()
        else:
            r = self.rng.random
            block = [r() for _ in range(self.block_size)]
        block.reverse()
        self._block = block

    def random(self) -> float:
        """Next uniform double in [0, 1) — identical to the wrapped rng's."""
        block = self._block
        if not block:
            self._refill()
            block = self._block
        return block.pop()

    def uniform(self, a: float, b: float) -> float:
        """Uniform in [a, b] — CPython's exact ``a + (b - a) * random()``."""
        block = self._block
        if not block:
            self._refill()
            block = self._block
        return a + (b - a) * block.pop()

    def expovariate(self, lambd: float) -> float:
        """Exponential deviate — CPython's ``-log(1 - random()) / lambd``."""
        block = self._block
        if not block:
            self._refill()
            block = self._block
        return -_log(1.0 - block.pop()) / lambd

    def getstate(self):
        """State of the wrapped rng plus the unconsumed block remainder."""
        self._sync_back()
        return (self.rng.getstate(), tuple(self._block))

    def setstate(self, state) -> None:
        rng_state, block = state
        self.rng.setstate(rng_state)
        self._block = list(block)
        if self._np_state is not None:
            self._adopt_stream()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if self._np_state is not None else "python"
        return (
            f"BlockRandom(block_size={self.block_size}, backend={backend}, "
            f"buffered={len(self._block)})"
        )


def maybe_block(
    rng: Optional[random.Random],
    engine: str,
    block_size: int = DEFAULT_BLOCK_SIZE,
):
    """Wrap ``rng`` in a :class:`BlockRandom` when the fast engine is on.

    The default engine keeps the raw stream (byte-identical legacy
    path); None passes through untouched for channels built without a
    stream of their own.
    """
    if rng is None or engine != "fast":
        return rng
    return BlockRandom(rng, block_size)
