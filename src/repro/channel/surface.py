"""The channel surface every link-layer wrapper must forward.

:func:`~repro.sim.runner.run_transfer` and the verification/observability
layers talk to a *channel-shaped* object: the raw :class:`~repro.channel
.channel.Channel`, the byte-framing :class:`~repro.wire.framed
.FramedChannel`, or a per-flow :class:`~repro.channel.mux.FlowPort`.
Historically each wrapper re-implemented the forwarding by hand, and a
missing passthrough (``stats``, ``effective_max_lifetime``, ...) only
surfaced when some harness feature silently misbehaved.  This module
pins the contract once:

* :class:`ChannelSurface` is an ABC naming every attribute the harness
  uses; implementations register as virtual subclasses so
  ``isinstance`` checks work without inheritance coupling;
* :func:`missing_surface` structurally audits a channel *instance*
  (several implementations create surface attributes in ``__init__``,
  so a class-level check cannot see them) and returns what is absent —
  the wrapper-parity tests assert it returns nothing for every wrapper.
"""

from __future__ import annotations

import abc
from typing import Any, List

__all__ = ["ChannelSurface", "CHANNEL_SURFACE_METHODS", "CHANNEL_SURFACE_ATTRS",
           "missing_surface"]

#: callables the harness invokes on every channel-shaped object
CHANNEL_SURFACE_METHODS = (
    "connect",  # wire the delivery callback
    "send",  # inject a message
    "add_observer",  # channel-event taps (monitor, probe, obs, drops)
    "in_flight",  # iterate undelivered copies (oracle mode, monitors)
    "count_matching",  # count undelivered copies by predicate
)

#: non-callable attributes/properties the harness reads
CHANNEL_SURFACE_ATTRS = (
    "sim",  # owning simulator
    "name",  # stable label used in traces and obs series
    "stats",  # ChannelStats-shaped counters
    "in_flight_count",
    "is_empty",
    "effective_max_lifetime",  # timeout derivation (aging bound)
)


class ChannelSurface(abc.ABC):
    """Abstract surface of a harness-usable channel.

    Concrete channels register as *virtual* subclasses
    (``ChannelSurface.register(...)``) rather than inheriting, keeping
    the wire/channel modules dependency-free; :func:`missing_surface`
    does the structural verification that registration alone cannot.
    """

    @abc.abstractmethod
    def connect(self, receiver) -> None:  # pragma: no cover - interface
        """Set the delivery callback messages are handed to."""

    @abc.abstractmethod
    def send(self, message: Any) -> None:  # pragma: no cover - interface
        """Inject one message for (possibly lossy, delayed) delivery."""

    @abc.abstractmethod
    def add_observer(self, observer) -> None:  # pragma: no cover - interface
        """Register ``observer(kind, message)`` for channel events."""

    @abc.abstractmethod
    def in_flight(self):  # pragma: no cover - interface
        """Iterate messages sent but not yet delivered/lost/aged."""

    @abc.abstractmethod
    def count_matching(self, predicate) -> int:  # pragma: no cover - interface
        """Count in-flight messages satisfying ``predicate``."""


def missing_surface(channel: Any) -> List[str]:
    """Audit a channel instance against the full harness surface.

    Returns the (possibly empty) list of missing or malformed attribute
    names: methods that are absent or not callable, and readable
    attributes that are absent.  An empty list means the object can be
    handed to ``run_transfer``/monitors/obs without losing capability.
    """
    problems: List[str] = []
    for method in CHANNEL_SURFACE_METHODS:
        if not callable(getattr(channel, method, None)):
            problems.append(method)
    for attr in CHANNEL_SURFACE_ATTRS:
        if not hasattr(channel, attr):
            problems.append(attr)
    return problems
