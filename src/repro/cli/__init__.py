"""Command-line entry points (run with ``python -m repro.cli`` or ``blockack``)."""

__all__ = ["main", "build_parser"]


def __getattr__(name):
    # Lazy import so `python -m repro.cli.main` does not re-import the
    # module under two names (runpy warning).
    if name in __all__:
        from repro.cli import main as _main_module

        return getattr(_main_module, name)
    raise AttributeError(name)
