"""Allow ``python -m repro.cli ...``."""

import sys

from repro.cli.main import main

sys.exit(main())
