"""Command-line interface: ``blockack`` (or ``python -m repro.cli.main``).

Subcommands
-----------

``blockack list``
    Show the available experiments and protocols.

``blockack run e3 [--quick] [--jobs N] [--cache]``
    Run one experiment (or ``all``) and print its table and verdict.
    ``--jobs`` fans the sweep-heavy experiments across worker processes;
    ``--cache`` memoizes completed runs under ``results/cache/``.

``blockack perf [--scale N] [--experiments] [--output BENCH_quick.json]``
    Measure the hot paths (engine events/sec, channel transit, transfer
    throughput) and optionally per-experiment wall-clock, writing a
    machine-readable ``BENCH_<mode>.json`` baseline.

``blockack transfer --protocol blockack --window 8 --messages 500 ...``
    Run a single ad-hoc transfer and print its summary (useful for
    exploring channel conditions interactively).  ``--flows N`` runs N
    concurrent flows of the protocol over one shared link pair and
    prints per-flow results (see :mod:`repro.sim.host`).

``blockack check --window 2 --max-send 4 [--timeout-mode simple]``
    Model-check the abstract protocol exhaustively and print the report.

``blockack obs export|summarize|diff``
    Telemetry (:mod:`repro.obs`): ``export`` runs one observed transfer
    and writes ``results/obs/<run_id>.jsonl`` (per-seq lifecycle spans,
    metric snapshot, optional live invariant probe); ``summarize``
    renders one export; ``diff`` compares the metric snapshots of two
    exports (e.g. two seeds, or the same cell before/after a change).

``blockack analyze results/obs/flight/<run_id>.jsonl [--perfetto OUT]``
    Root-cause analysis (:mod:`repro.obs.analyze`) of a causal flight
    dump (written when an anomaly trigger fires under ``--causal``) or
    any telemetry export: stall timeline, per-seq cause lines ("seq 41:
    3 losses -> Karn backoff x8 -> window stall 2.1tu"), and optional
    Chrome/Perfetto trace-event JSON.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss, NoLoss
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blockack",
        description=(
            "Block Acknowledgment: Redesigning the Window Protocol — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and protocols")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id, e.g. e3, or 'all'")
    run_p.add_argument(
        "--quick", action="store_true", help="reduced replications/sizes"
    )
    run_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep experiments (default: $REPRO_JOBS or 1)",
    )
    run_p.add_argument(
        "--cache", action="store_true",
        help="memoize completed runs in results/cache/ (like REPRO_CACHE=1)",
    )
    run_p.add_argument(
        "--obs", action="store_true",
        help="record telemetry for every grid cell and export it to "
        "results/obs/<run_id>.jsonl (like REPRO_OBS=1)",
    )
    run_p.add_argument(
        "--causal", action="store_true",
        help="keep the causal flight recorder on for every grid cell; "
        "anomalous cells dump results/obs/flight/<run_id>.jsonl "
        "(like REPRO_CAUSAL=1)",
    )
    run_p.add_argument(
        "--flows", type=int, default=None, metavar="N",
        help="pin the multi-flow experiments to exactly N concurrent flows "
        "(like REPRO_FLOWS=N; currently honoured by e15)",
    )
    run_p.add_argument(
        "--engine", default=None, choices=("default", "fast"),
        help="event-loop implementation: 'fast' selects the calendar-queue "
        "engine with batched drain and block-sampled channel randomness "
        "(like REPRO_ENGINE=fast; decision-trace equivalent)",
    )
    run_p.add_argument(
        "--sched", default=None, choices=("fifo", "wrr", "drr"),
        help="pin the arbiter experiments to one per-flow scheduler "
        "(like REPRO_SCHED=drr; currently honoured by e17)",
    )

    perf_p = sub.add_parser(
        "perf", help="measure hot paths, write a BENCH_<mode>.json baseline"
    )
    perf_p.add_argument(
        "--scale", type=int, default=1,
        help="workload multiplier (1 = quick/CI size)",
    )
    perf_p.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    perf_p.add_argument(
        "--experiments", action="store_true",
        help="also time every experiment (quick mode) end to end",
    )
    perf_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="output JSON path (default: BENCH_quick.json, or BENCH_full.json "
        "when --scale > 1)",
    )
    perf_p.add_argument(
        "--no-obs-overhead", action="store_true",
        help="skip the observability off-vs-on overhead measurements",
    )
    perf_p.add_argument(
        "--engine", default=None, choices=("default", "fast"),
        help="event-loop implementation for the --experiments timings "
        "(micros always measure both; like REPRO_ENGINE=fast)",
    )
    perf_p.add_argument(
        "--profile", action="store_true",
        help="cProfile the transfer micro and dump the hottest functions "
        "to results/profile/ (one .prof + .txt per engine mode)",
    )

    obs_p = sub.add_parser(
        "obs", help="telemetry: export a run, summarize or diff exports"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)

    obs_exp = obs_sub.add_parser(
        "export", help="run one observed transfer and export its telemetry"
    )
    obs_exp.add_argument("--protocol", default="blockack")
    obs_exp.add_argument("--window", type=int, default=8)
    obs_exp.add_argument("--messages", type=int, default=400)
    obs_exp.add_argument("--loss", type=float, default=0.05)
    obs_exp.add_argument(
        "--jitter", type=float, default=0.0,
        help="delay spread around mean 1 (reordering intensity)",
    )
    obs_exp.add_argument("--seed", type=int, default=11)
    obs_exp.add_argument(
        "--probe-every", type=int, default=0, metavar="N",
        help="sample the live invariant probe every N channel events "
        "(0 = probe off)",
    )
    obs_exp.add_argument(
        "--output", default=None, metavar="PATH",
        help="output .jsonl path (default: results/obs/<run_id>.jsonl)",
    )

    obs_sum = obs_sub.add_parser(
        "summarize", help="summarize one exported telemetry file"
    )
    obs_sum.add_argument("path", help="exported .jsonl file")
    obs_sum.add_argument(
        "--text", action="store_true",
        help="also dump the metrics snapshot in Prometheus text format",
    )

    obs_diff = obs_sub.add_parser(
        "diff", help="compare the metric snapshots of two exported runs"
    )
    obs_diff.add_argument("left", help="exported .jsonl file (baseline)")
    obs_diff.add_argument("right", help="exported .jsonl file (candidate)")

    tr = sub.add_parser("transfer", help="run one ad-hoc transfer")
    tr.add_argument("--protocol", default="blockack")
    tr.add_argument("--window", type=int, default=8)
    tr.add_argument("--messages", type=int, default=500)
    tr.add_argument("--loss", type=float, default=0.0, help="loss probability")
    tr.add_argument(
        "--jitter", type=float, default=0.0,
        help="delay spread around mean 1 (reordering intensity)",
    )
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="print the first N trace events",
    )
    tr.add_argument(
        "--flows", type=int, default=1, metavar="N",
        help="run N concurrent flows of the protocol over one shared "
        "link pair and print per-flow results (default: 1)",
    )
    tr.add_argument(
        "--flow-windows", default=None, metavar="W1,W2,...",
        help="heterogeneous session: one flow per listed window size "
        "(e.g. 4,8,16; overrides --flows/--window)",
    )
    tr.add_argument(
        "--flow-weights", default=None, metavar="X1,X2,...",
        help="per-flow arbiter scheduling weights (wrr/drr), matching "
        "--flow-windows or --flows",
    )
    tr.add_argument(
        "--link-rate", type=float, default=None, metavar="R",
        help="shared-link capacity in frames per unit time; enables the "
        "send-side link arbiter (default: unlimited)",
    )
    tr.add_argument(
        "--sched", default="fifo", choices=("fifo", "wrr", "drr"),
        help="arbiter scheduler when --link-rate is set (default: fifo)",
    )
    tr.add_argument(
        "--corrupt", action="append", default=[], metavar="SITE:SEV@T",
        help="inject adversarial state corruption at virtual time T, "
        "e.g. sender.window:worst@40 (repeatable; prints the "
        "stabilization verdict)",
    )
    tr.add_argument(
        "--engine", default="default", choices=("default", "fast"),
        help="event-loop implementation (fast = calendar queue + batched "
        "drain + block-sampled channel randomness)",
    )
    tr.add_argument(
        "--causal", action="store_true",
        help="record the causal event graph and flight-recorder ring; "
        "an anomalous run dumps results/obs/flight/transfer.jsonl",
    )

    an = sub.add_parser(
        "analyze",
        help="root-cause analysis of a causal flight dump or telemetry "
        "export",
    )
    an.add_argument("path", help="a repro.obs/v2 .jsonl file")
    an.add_argument(
        "--perfetto", default=None, metavar="OUT",
        help="also write Chrome/Perfetto trace-event JSON to OUT",
    )
    an.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="stalls / cause lines to print (default: 10)",
    )

    chk = sub.add_parser("check", help="model-check the abstract protocol")
    chk.add_argument("--window", type=int, default=2)
    chk.add_argument("--max-send", type=int, default=4)
    chk.add_argument(
        "--timeout-mode", default="simple",
        choices=("simple", "per_message", "impatient"),
    )
    chk.add_argument("--no-loss", action="store_true")

    cmp_p = sub.add_parser(
        "compare", help="sweep loss and race protocols (table + ASCII plot)"
    )
    cmp_p.add_argument(
        "--protocols", default="gobackn,blockack,selective-repeat",
        help="comma-separated protocol names",
    )
    cmp_p.add_argument("--window", type=int, default=8)
    cmp_p.add_argument("--messages", type=int, default=400)
    cmp_p.add_argument(
        "--losses", default="0,0.02,0.05,0.1,0.2",
        help="comma-separated loss probabilities",
    )
    cmp_p.add_argument("--jitter", type=float, default=1.0)
    cmp_p.add_argument("--seed", type=int, default=0)

    lint_p = sub.add_parser(
        "lint",
        help="determinism & contract static analysis (D/P/S rules)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint_p)
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS
    from repro.protocols.registry import protocol_names

    print("experiments:")
    for spec in EXPERIMENTS.values():
        print(f"  {spec.exp_id:4s} {spec.title}")
    print("\nprotocols:")
    for name in protocol_names():
        print(f"  {name}")
    return 0


def _cmd_run(
    experiment: str,
    quick: bool,
    jobs: Optional[int] = None,
    cache: bool = False,
    obs: bool = False,
    flows: Optional[int] = None,
    engine: Optional[str] = None,
    causal: bool = False,
    sched: Optional[str] = None,
) -> int:
    import os

    from repro.experiments.registry import experiment_ids, run_experiment

    # the sweep experiments read these knobs from the environment, which
    # keeps experiment signatures declarative (see repro.perf.sweep)
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)
    if cache:
        os.environ["REPRO_CACHE"] = "1"
    if obs:
        os.environ["REPRO_OBS"] = "1"
    if flows is not None:
        os.environ["REPRO_FLOWS"] = str(flows)
    if engine is not None:
        os.environ["REPRO_ENGINE"] = engine
    if causal:
        os.environ["REPRO_CAUSAL"] = "1"
    if sched is not None:
        os.environ["REPRO_SCHED"] = sched
    ids = experiment_ids() if experiment.lower() == "all" else [experiment]
    failures = 0
    for exp_id in ids:
        result = run_experiment(exp_id, quick=quick)
        print(result.render())
        print()
        if not result.reproduced:
            failures += 1
    return 1 if failures else 0


def _parse_corruption(text: str):
    """Parse one ``site:severity@time`` corruption spec."""
    from repro.robustness.corruption import StateCorruption

    try:
        head, at = text.rsplit("@", 1)
        site, severity = head.split(":", 1)
        return StateCorruption(at=float(at), site=site, severity=severity)
    except ValueError as exc:
        raise SystemExit(
            f"bad --corrupt spec {text!r} (want site:severity@time, "
            f"e.g. sender.window:worst@40): {exc}"
        ) from None


def _cmd_transfer(args: argparse.Namespace) -> int:
    from repro.protocols.registry import make_pair

    spread = args.jitter

    def link() -> LinkSpec:
        return LinkSpec(
            delay=UniformDelay(max(0.0, 1 - spread / 2), 1 + spread / 2),
            loss=BernoulliLoss(args.loss) if args.loss > 0 else NoLoss(),
        )

    fault_plan = None
    if args.corrupt:
        from repro.robustness.faults import FaultPlan

        fault_plan = FaultPlan(
            seed=args.seed,
            corruptions=[_parse_corruption(spec) for spec in args.corrupt],
        )

    flow_windows = (
        [int(w) for w in args.flow_windows.split(",")]
        if args.flow_windows
        else None
    )
    flow_weights = (
        [float(w) for w in args.flow_weights.split(",")]
        if args.flow_weights
        else None
    )
    arbiter = None
    if args.link_rate is not None:
        from repro.channel.arbiter import ArbiterConfig

        arbiter = ArbiterConfig(rate=args.link_rate, scheduler=args.sched)

    if args.flows > 1 or flow_windows is not None or arbiter is not None:
        if fault_plan is not None:
            raise SystemExit("--corrupt targets a single endpoint pair; "
                             "combine it with --flows 1")
        from repro.sim.host import mixed_flows, run_flows, uniform_flows

        if flow_windows is not None:
            specs = mixed_flows(
                args.protocol, flow_windows, args.messages,
                weights=flow_weights,
            )
        else:
            specs = uniform_flows(
                args.protocol, args.flows, args.window, args.messages
            )
            if flow_weights is not None:
                if len(flow_weights) != len(specs):
                    raise SystemExit(
                        "--flow-weights must list one weight per flow"
                    )
                for spec, weight in zip(specs, flow_weights):
                    spec.weight = weight
        session = run_flows(
            specs,
            forward=link(),
            reverse=link(),
            seed=args.seed,
            trace=args.trace > 0,
            max_time=1_000_000.0,
            causal=args.causal,
            engine=args.engine,
            arbiter=arbiter,
        )
        print(session.summary())
        _print_causal(session)
        # label per-flow lines only when the flows actually differ
        # (uniform sessions keep the historical "flow N:" format)
        labelled = len({flow.label for flow in session.flows}) > 1
        for flow in session.flows:
            retx = flow.sender_stats.get("retransmissions", 0)
            tag = f" [{flow.label}]" if labelled else ""
            line = (
                f"  flow {flow.flow}{tag}: "
                f"{flow.delivered}/{flow.submitted} "
                f"delivered, {retx} retransmission(s), "
                f"{'in-order' if flow.in_order else 'ORDER VIOLATION'}"
            )
            if flow.queue_stats:
                q = flow.queue_stats
                line += (
                    f", queue: depth<={q['max_depth']} "
                    f"drops={q['dropped']} mean_wait={q['mean_wait']:.3f}tu"
                )
            print(line)
        if session.arbiter_stats:
            arb = session.arbiter_stats
            print(
                f"  arbiter: rate={arb['rate']:g}/tu sched={arb['scheduler']} "
                f"grants={arb['grants_total']} drops={arb['drops_total']}"
            )
        if args.trace > 0 and session.trace is not None:
            print()
            print(session.trace.format(limit=args.trace))
        return 0 if session.completed and session.in_order else 1

    sender, receiver = make_pair(args.protocol, window=args.window)
    result = run_transfer(
        sender,
        receiver,
        GreedySource(args.messages),
        forward=link(),
        reverse=link(),
        seed=args.seed,
        trace=args.trace > 0,
        max_time=1_000_000.0,
        fault_plan=fault_plan,
        monitor_invariants=fault_plan is not None,
        causal=args.causal,
        engine=args.engine,
    )
    print(result.summary())
    _print_causal(result)
    if result.stabilization is not None:
        stab = result.stabilization
        reconv = stab["reconvergence_time"]
        print(
            f"stabilization: {stab['verdict']} "
            f"({stab['corruptions']} corruption(s), "
            f"{stab['repairs']} repair(s), reconvergence "
            f"{'n/a' if reconv is None else f'{reconv:g}tu'})"
        )
    if args.trace > 0 and result.trace is not None:
        print()
        print(result.trace.format(limit=args.trace))
    if result.stabilization is not None:
        ok = result.completed and result.stabilization["verdict"] != "diverged"
        return 0 if ok else 1
    return 0 if result.completed and result.in_order else 1


def _print_causal(result) -> None:
    """Summarize the causal layer of a transfer/session result, if on."""
    causal = getattr(result, "causal", None)
    if causal is None:
        return
    print(
        f"causal: {causal.events_recorded} event(s) recorded, "
        f"{len(causal.attributions)} attribution(s), "
        f"{len(causal.triggers)} trigger(s)"
    )
    for time, reason, detail in causal.triggers:
        suffix = f" ({detail})" if detail else ""
        print(f"  trigger @ {time:.2f}tu: {reason}{suffix}")
    if result.flight_path is not None:
        print(f"  flight dump: {result.flight_path}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analyze import load_analysis, render_report, write_perfetto

    analysis = load_analysis(args.path)
    print(render_report(analysis, limit=args.limit))
    if args.perfetto:
        path = write_perfetto(analysis, args.perfetto)
        print(f"wrote {path}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.perf.bench import (
        run_microbenchmarks,
        run_obs_overhead,
        run_profile,
        update_bench_json,
    )

    mode = "quick" if args.scale <= 1 else "full"
    output = args.output if args.output else f"BENCH_{mode}.json"
    if args.engine:
        os.environ["REPRO_ENGINE"] = args.engine

    if args.profile:
        print(f"profiling transfer micro (scale={args.scale}) ...")
        written = run_profile(pathlib.Path("results/profile"), scale=args.scale)
        for path in written:
            print(f"  wrote {path}")
        print()

    print(f"microbenchmarks (scale={args.scale}, best of {args.repeats}):")
    micro = run_microbenchmarks(scale=args.scale, repeats=args.repeats)
    for name, rate in sorted(micro.items()):
        print(f"  {name:36s} {rate:>14,.0f}")

    obs = None
    if not args.no_obs_overhead:
        obs = run_obs_overhead(scale=args.scale, repeats=args.repeats)
        print("\nobservability overhead (off vs. on):")
        for name, value in sorted(obs.items()):
            if name.endswith("_pct"):
                print(f"  {name:36s} {value:>13.1f}%")
            else:
                print(f"  {name:36s} {value:>14,.0f}")

    experiments = None
    if args.experiments:
        from repro.experiments.registry import experiment_ids, run_experiment

        experiments = {}
        print("\nexperiment wall-clock (quick mode):")
        for exp_id in experiment_ids():
            start = time.perf_counter()  # lint: ignore[D101] — wall-clock measurement
            result = run_experiment(exp_id, quick=True)
            elapsed = time.perf_counter() - start  # lint: ignore[D101] — wall-clock measurement

            experiments[exp_id] = elapsed
            verdict = "ok" if result.reproduced else "NOT REPRODUCED"
            print(f"  {exp_id:4s} {elapsed:8.2f}s  {verdict}")

    update_bench_json(output, mode, micro=micro, experiments=experiments, obs=obs)
    print(f"\nwrote {output}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "export":
        return _cmd_obs_export(args)
    if args.obs_command == "summarize":
        return _cmd_obs_summarize(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.protocols.registry import make_pair
    from repro.workloads.sources import GreedySource as _Greedy

    sender, receiver = make_pair(args.protocol, window=args.window)
    spread = args.jitter

    def link() -> LinkSpec:
        return LinkSpec(
            delay=UniformDelay(max(0.0, 1 - spread / 2), 1 + spread / 2),
            loss=BernoulliLoss(args.loss) if args.loss > 0 else NoLoss(),
        )

    run_id = (
        f"{args.protocol.replace('-', '_')}_w{args.window}"
        f"_n{args.messages}_s{args.seed}"
    )
    result = run_transfer(
        sender,
        receiver,
        _Greedy(args.messages),
        forward=link(),
        reverse=link(),
        seed=args.seed,
        max_time=1_000_000.0,
        obs=True,
        obs_run_id=run_id,
        obs_labels={
            "protocol": args.protocol,
            "window": str(args.window),
            "total": str(args.messages),
            "loss": str(args.loss),
            "jitter": str(args.jitter),
            "seed": str(args.seed),
        },
        obs_sample_invariants_every=args.probe_every,
    )
    path = result.obs.export(path=args.output)
    print(result.summary())
    if result.obs.probe is not None:
        probe = result.obs.probe
        print(
            f"invariant probe: {probe.checks_run} sweeps over "
            f"{probe.events_seen} events, "
            f"{len(probe.violations)} violation(s)"
        )
    print(f"wrote {path}")
    return 0 if result.completed and result.in_order else 1


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs.metrics import TextExposition
    from repro.obs.sink import load_run, summarize_run

    dump = load_run(args.path)
    print(summarize_run(dump))
    if args.text and dump.snapshot:
        print()
        print(TextExposition().render(dump.snapshot), end="")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.sink import diff_snapshots, load_run

    left = load_run(args.left)
    right = load_run(args.right)
    print(f"diff: {left.run_id} -> {right.run_id}")
    lines = diff_snapshots(left.snapshot, right.snapshot)
    if not lines:
        print("  snapshots agree on every series")
        return 0
    for line in lines:
        print(f"  {line}")
    print(f"  ({len(lines)} series differ)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.verify.actions import AbstractProtocolModel
    from repro.verify.explorer import Explorer

    model = AbstractProtocolModel(
        window=args.window,
        max_send=args.max_send,
        timeout_mode=args.timeout_mode,
        allow_loss=not args.no_loss,
    )
    explorer = Explorer(model, stop_at_first_violation=False)
    report = explorer.run()
    print(report.summary())
    if report.invariant_violations:
        state, clauses = report.invariant_violations[0]
        print("\nfirst violation:", "; ".join(clauses))
        print("witness trace:")
        for line in explorer.witness(state):
            print(f"  {line}")
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.plot import ascii_plot
    from repro.analysis.report import render_table
    from repro.protocols.registry import make_pair

    protocols = [name.strip() for name in args.protocols.split(",") if name.strip()]
    losses = [float(value) for value in args.losses.split(",")]
    spread = args.jitter
    series = {name: [] for name in protocols}
    rows = []
    failures = 0
    for loss in losses:
        cells = [loss]
        for name in protocols:
            sender, receiver = make_pair(name, window=args.window)
            link = lambda loss=loss: LinkSpec(
                delay=UniformDelay(max(0.0, 1 - spread / 2), 1 + spread / 2),
                loss=BernoulliLoss(loss) if loss > 0 else NoLoss(),
            )
            result = run_transfer(
                sender, receiver, GreedySource(args.messages),
                forward=link(), reverse=link(), seed=args.seed,
                max_time=1_000_000.0,
            )
            if not (result.completed and result.in_order):
                failures += 1
            series[name].append((loss, result.throughput))
            cells.append(result.throughput)
        rows.append(tuple(cells))
    print(render_table(["loss"] + protocols, rows, title="goodput (msgs/tu)"))
    print()
    print(ascii_plot(series, width=56, height=14, x_label="loss probability"))
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment, args.quick, args.jobs, args.cache, args.obs,
            args.flows, args.engine, args.causal, args.sched,
        )
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "transfer":
        return _cmd_transfer(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint_command

        return run_lint_command(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
