"""Protocol core: messages, sequence numbering, and window state machines."""

from repro.core.bounded import BoundedReceiverBook, BoundedSenderBook
from repro.core.messages import BlockAck, CumulativeAck, DataMessage, is_ack, is_data
from repro.core.numbering import ModularNumbering, Numbering, UnboundedNumbering
from repro.core.seqnum import SequenceDomain, minimum_domain_size, reconstruct
from repro.core.window import AcceptOutcome, AckOutcome, ReceiverWindow, SenderWindow

__all__ = [
    "DataMessage",
    "BlockAck",
    "CumulativeAck",
    "is_data",
    "is_ack",
    "SequenceDomain",
    "reconstruct",
    "minimum_domain_size",
    "Numbering",
    "UnboundedNumbering",
    "ModularNumbering",
    "SenderWindow",
    "ReceiverWindow",
    "AckOutcome",
    "AcceptOutcome",
    "BoundedSenderBook",
    "BoundedReceiverBook",
]
