"""Bounded-storage protocol state (paper Section V, final form).

The classes here are the byte-exact realisation of the paper's closing
transformation: **every** counter (``na``, ``ns``, ``nr``, ``vr``) is
stored mod ``n = 2w``, the ``ackd``/``rcvd`` arrays shrink to ``w`` boolean
cells indexed mod ``w``, and every comparison in the guards is performed
with modular arithmetic.  Nothing in these classes ever holds an integer
that grows with the length of the transfer.

Why the modular comparisons are sound (paper's argument, condensed):

* sender window: assertion 6 gives ``na <= ns <= na + w`` with ``w < n``,
  so ``(ns - na) mod n`` equals the true difference and the guard
  ``ns < na + w`` becomes ``(ns - na) mod n < w``;
* receiver accept test: assertion 11 gives ``nr - w <= v < nr + w``, so
  ``(v - nr) mod 2w`` lands in ``[0, w)`` exactly when ``v >= nr`` (fresh)
  and in ``[w, 2w)`` exactly when ``v < nr`` (duplicate);
* array cells: live ``ackd`` entries lie in ``[na, ns)`` and live ``rcvd``
  entries in ``[vr, ns)``, both ranges of width at most ``w``, so indexing
  mod ``w`` never aliases two live numbers.

The unbounded bookkeeping in :mod:`repro.core.window` is the reference;
``tests/test_bounded.py`` drives both in lockstep over randomized schedules
and asserts identical observable behaviour (E7).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.seqnum import SequenceDomain

__all__ = ["BoundedSenderBook", "BoundedReceiverBook"]


class BoundedSenderBook:
    """Sender state with O(w) storage and mod-``2w`` counters."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.w = window
        self.domain = SequenceDomain(2 * window)
        self.na = 0  # wire value: true na mod 2w
        self.ns = 0  # wire value: true ns mod 2w
        self._ackd = [False] * window

    # -- sending ----------------------------------------------------------

    @property
    def can_send(self) -> bool:
        """Bounded form of ``ns < na + w``: ``(ns - na) mod n < w``."""
        return self.domain.sub(self.ns, self.na) < self.w

    @property
    def in_flight_window(self) -> int:
        """Bounded form of ``ns - na``."""
        return self.domain.sub(self.ns, self.na)

    def take_next(self) -> int:
        """Allocate the next wire sequence number (action 0, bounded)."""
        if not self.can_send:
            raise RuntimeError(f"window full: na={self.na} ns={self.ns}")
        seq = self.ns
        self.ns = self.domain.add(self.ns, 1)
        return seq

    # -- acknowledgments ----------------------------------------------------

    def apply_ack(self, lo_wire: int, hi_wire: int) -> int:
        """Apply wire block ack ``(lo, hi)`` (action 1', bounded).

        Marks cells for every number from ``lo`` to ``hi`` mod ``n``, then
        slides ``na``, clearing each cell as it is vacated (the paper:
        "ackd[na mod w] is set to false in action 1'").  Returns how far
        ``na`` advanced.
        """
        i = lo_wire
        stop = self.domain.add(hi_wire, 1)
        # Note: a pair with stop == lo (a "full-domain" wrap) reads as an
        # empty range.  Real blocks cover at most w < n numbers (assertion
        # 6), so the case never arises from a conforming peer.
        while i != stop:
            self._ackd[i % self.w] = True
            i = self.domain.add(i, 1)
        advanced = 0
        while self._ackd[self.na % self.w]:
            self._ackd[self.na % self.w] = False
            self.na = self.domain.add(self.na, 1)
            advanced += 1
        return advanced

    def is_acked_cell(self, wire_seq: int) -> bool:
        """Raw cell inspection for tests: the bit for ``wire_seq``'s slot."""
        return self._ackd[wire_seq % self.w]

    def outstanding_wire(self) -> list[int]:
        """Wire numbers sent but not acknowledged, oldest first."""
        result = []
        seq = self.na
        while seq != self.ns:
            if not self._ackd[seq % self.w]:
                result.append(seq)
            seq = self.domain.add(seq, 1)
        return result

    @property
    def all_acknowledged(self) -> bool:
        return self.na == self.ns and not any(self._ackd)

    def __repr__(self) -> str:
        return f"BoundedSenderBook(na={self.na}, ns={self.ns}, w={self.w})"


class BoundedReceiverBook:
    """Receiver state with O(w) storage and mod-``2w`` counters."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.w = window
        self.domain = SequenceDomain(2 * window)
        self.nr = 0  # wire value
        self.vr = 0  # wire value
        self._rcvd = [False] * window
        self._payloads: list[Any] = [None] * window

    # -- receiving ----------------------------------------------------------

    def is_duplicate(self, wire_seq: int) -> bool:
        """Bounded form of ``v < nr``: ``(v - nr) mod 2w >= w``."""
        return self.domain.sub(wire_seq, self.nr) >= self.w

    def accept(self, wire_seq: int, payload: Any = None) -> bool:
        """Handle data message ``wire_seq`` (action 3', bounded).

        Returns True if the caller must reply with the duplicate ack
        ``(wire_seq, wire_seq)``; False if the message was recorded.
        """
        if self.is_duplicate(wire_seq):
            return True
        cell = wire_seq % self.w
        if not self._rcvd[cell]:
            self._rcvd[cell] = True
            self._payloads[cell] = payload
        return False

    def advance(self) -> int:
        """Slide ``vr`` over the received run (action 4, bounded).

        Clears each ``rcvd`` cell as ``vr`` passes it (the paper:
        "rcvd[vr mod w] is set to false in action 4").
        """
        moved = 0
        while self._rcvd[self.vr % self.w]:
            self._rcvd[self.vr % self.w] = False
            self.vr = self.domain.add(self.vr, 1)
            moved += 1
        return moved

    @property
    def ack_ready(self) -> bool:
        """Bounded form of ``nr < vr``: the counters differ."""
        return self.nr != self.vr

    def take_block(self) -> tuple[int, int, list[Any]]:
        """Emit the pending wire block ``(nr, vr - 1)`` (action 5, bounded).

        Returns ``(lo_wire, hi_wire, payloads)``; payloads come out in
        sequence order and their buffer cells are released.
        """
        if not self.ack_ready:
            raise RuntimeError(f"no block pending: nr={self.nr} vr={self.vr}")
        lo = self.nr
        hi = self.domain.sub(self.vr, 1)
        payloads = []
        seq = self.nr
        while seq != self.vr:
            cell = seq % self.w
            payloads.append(self._payloads[cell])
            self._payloads[cell] = None
            seq = self.domain.add(seq, 1)
        self.nr = self.vr
        return lo, hi, payloads

    def buffered_count(self) -> int:
        """Number of out-of-order messages currently buffered."""
        return sum(self._rcvd)

    def __repr__(self) -> str:
        return f"BoundedReceiverBook(nr={self.nr}, vr={self.vr}, w={self.w})"
