"""Bounded-storage protocol state (paper Section V, final form).

The classes here are the byte-exact realisation of the paper's closing
transformation: **every** counter (``na``, ``ns``, ``nr``, ``vr``) is
stored mod ``n = 2w``, the ``ackd``/``rcvd`` arrays shrink to ``w`` boolean
cells indexed mod ``w``, and every comparison in the guards is performed
with modular arithmetic.  Nothing in these classes ever holds an integer
that grows with the length of the transfer.

Why the modular comparisons are sound (paper's argument, condensed):

* sender window: assertion 6 gives ``na <= ns <= na + w`` with ``w < n``,
  so ``(ns - na) mod n`` equals the true difference and the guard
  ``ns < na + w`` becomes ``(ns - na) mod n < w``;
* receiver accept test: assertion 11 gives ``nr - w <= v < nr + w``, so
  ``(v - nr) mod 2w`` lands in ``[0, w)`` exactly when ``v >= nr`` (fresh)
  and in ``[w, 2w)`` exactly when ``v < nr`` (duplicate);
* array cells: live ``ackd`` entries lie in ``[na, ns)`` and live ``rcvd``
  entries in ``[vr, ns)``, both ranges of width at most ``w``, so indexing
  mod ``w`` never aliases two live numbers.

The unbounded bookkeeping in :mod:`repro.core.window` is the reference;
``tests/test_bounded.py`` drives both in lockstep over randomized schedules
and asserts identical observable behaviour (E7).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.seqnum import SequenceDomain

__all__ = ["BoundedSenderBook", "BoundedReceiverBook"]


class BoundedSenderBook:
    """Sender state with O(w) storage and mod-``2w`` counters."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.w = window
        self.domain = SequenceDomain(2 * window)
        self.na = 0  # wire value: true na mod 2w
        self.ns = 0  # wire value: true ns mod 2w
        self._ackd = [False] * window

    # -- sending ----------------------------------------------------------

    @property
    def can_send(self) -> bool:
        """Bounded form of ``ns < na + w``: ``(ns - na) mod n < w``."""
        return self.domain.sub(self.ns, self.na) < self.w

    @property
    def in_flight_window(self) -> int:
        """Bounded form of ``ns - na``."""
        return self.domain.sub(self.ns, self.na)

    def take_next(self) -> int:
        """Allocate the next wire sequence number (action 0, bounded)."""
        if not self.can_send:
            raise RuntimeError(f"window full: na={self.na} ns={self.ns}")
        seq = self.ns
        self.ns = self.domain.add(self.ns, 1)
        return seq

    # -- acknowledgments ----------------------------------------------------

    def apply_ack(self, lo_wire: int, hi_wire: int) -> int:
        """Apply wire block ack ``(lo, hi)`` (action 1', bounded).

        Marks cells for every number from ``lo`` to ``hi`` mod ``n``, then
        slides ``na``, clearing each cell as it is vacated (the paper:
        "ackd[na mod w] is set to false in action 1'").  Returns how far
        ``na`` advanced.
        """
        i = lo_wire
        stop = self.domain.add(hi_wire, 1)
        # Note: a pair with stop == lo (a "full-domain" wrap) reads as an
        # empty range.  Real blocks cover at most w < n numbers (assertion
        # 6), so the case never arises from a conforming peer.
        while i != stop:
            self._ackd[i % self.w] = True
            i = self.domain.add(i, 1)
        advanced = 0
        while self._ackd[self.na % self.w]:
            self._ackd[self.na % self.w] = False
            self.na = self.domain.add(self.na, 1)
            advanced += 1
        return advanced

    def is_acked_cell(self, wire_seq: int) -> bool:
        """Raw cell inspection for tests: the bit for ``wire_seq``'s slot."""
        return self._ackd[wire_seq % self.w]

    def marked_cells(self) -> list[int]:
        """Cells currently flagged acknowledged (ahead of a stalled na)."""
        return [cell for cell in range(self.w) if self._ackd[cell]]

    def _covered_cells(self) -> set[int]:
        """Cells some number in the live span ``[na, ns)`` maps to."""
        cells: set[int] = set()
        seq = self.na
        while seq != self.ns:
            cells.add(seq % self.w)
            seq = self.domain.add(seq, 1)
        return cells

    def outstanding_wire(self) -> list[int]:
        """Wire numbers sent but not acknowledged, oldest first."""
        result = []
        seq = self.na
        while seq != self.ns:
            if not self._ackd[seq % self.w]:
                result.append(seq)
            seq = self.domain.add(seq, 1)
        return result

    @property
    def all_acknowledged(self) -> bool:
        return self.na == self.ns and not any(self._ackd)

    def repair(self, witness_cells: Optional[set[int]] = None) -> list[str]:
        """Restore local consistency after arbitrary state corruption.

        With mod-``2w`` counters there is no unbounded history to consult,
        but assertion 6 still bounds the live span: ``(ns - na) mod n``
        must not exceed ``w``.  When it does, ``na`` is pulled back to
        ``ns - w`` — the demote-to-unacknowledged direction; spurious
        retransmissions are absorbed by the receiver's mod-``2w``
        duplicate test and re-acknowledged.  Cells of the ``ackd`` ring
        that no live number maps to (including ``na``'s own cell, which
        action 1' always leaves false) are cleared for the same reason.

        ``witness_cells`` — cells whose payload buffer is still occupied —
        lets the caller repair live cells too, in both directions: the
        sender releases a payload exactly when its number is
        acknowledged, so an "acked" cell still holding one is lying
        (demote), and a live cell holding *none* was acknowledged
        (promote — ``na`` advances over the released prefix; without
        this a rewound ``na`` leaves "unacknowledged" numbers nothing
        can retransmit).  Without that witness a false "acknowledged"
        bit on a live cell is locally indistinguishable from a real
        acknowledgment — the O(w)-storage stabilization gap discussed
        in PROTOCOL.md §9.  Returns a description of each repair
        applied.
        """
        repairs: list[str] = []
        n = self.domain.n
        if not 0 <= self.na < n:
            repairs.append(f"na {self.na} -> {self.na % n} (out of domain)")
            self.na %= n
        if not 0 <= self.ns < n:
            repairs.append(f"ns {self.ns} -> {self.ns % n} (out of domain)")
            self.ns %= n
        if self.domain.sub(self.ns, self.na) > self.w:
            pulled = self.domain.sub(self.ns, self.w)
            repairs.append(
                f"na {self.na} -> {pulled} (span exceeded w={self.w})"
            )
            self.na = pulled
        if witness_cells:
            # every occupied payload cell must map to a live number in
            # [na, ns); pull na back (demote) until it does — at span w
            # the live numbers cover all w cells, so this terminates
            pulled_from = self.na
            while self.domain.sub(self.ns, self.na) < self.w and not (
                witness_cells <= self._covered_cells()
            ):
                self.na = self.domain.sub(self.na, 1)
            if self.na != pulled_from:
                repairs.append(
                    f"na {pulled_from} -> {self.na} "
                    "(occupied payload cell outside the live span)"
                )
        if witness_cells is not None:
            # the payload cell empties exactly at acknowledgment, so a
            # live number whose cell holds nothing was acknowledged:
            # advance na over the released prefix (stops at the first
            # occupied cell, so the demotion above is never undone)
            advanced_from = self.na
            while self.na != self.ns and (self.na % self.w) not in witness_cells:
                self._ackd[self.na % self.w] = False
                self.na = self.domain.add(self.na, 1)
            if self.na != advanced_from:
                repairs.append(
                    f"na {advanced_from} -> {self.na} "
                    "(payload cells released at acknowledgment)"
                )
        live: set[int] = set()
        seq = self.domain.add(self.na, 1)
        while seq != self.ns:
            live.add(seq % self.w)
            seq = self.domain.add(seq, 1)
        live.discard(self.na % self.w)  # paper: ¬ackd[na]
        bogus = [
            cell for cell in range(self.w)
            if self._ackd[cell] and cell not in live
        ]
        if bogus:
            repairs.append(f"cleared ackd cells {bogus} (no live number)")
            for cell in bogus:
                self._ackd[cell] = False
        if witness_cells is not None:
            lying = [
                cell for cell in sorted(witness_cells)
                if self._ackd[cell] and cell in live
            ]
            if lying:
                repairs.append(
                    f"cleared ackd cells {lying} (payload still held)"
                )
                for cell in lying:
                    self._ackd[cell] = False
            released = [
                cell for cell in sorted(live - witness_cells)
                if not self._ackd[cell]
            ]
            if released:
                repairs.append(
                    f"set ackd cells {released} "
                    "(payload released at acknowledgment)"
                )
                for cell in released:
                    self._ackd[cell] = True
        return repairs

    def __repr__(self) -> str:
        return f"BoundedSenderBook(na={self.na}, ns={self.ns}, w={self.w})"


class BoundedReceiverBook:
    """Receiver state with O(w) storage and mod-``2w`` counters."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.w = window
        self.domain = SequenceDomain(2 * window)
        self.nr = 0  # wire value
        self.vr = 0  # wire value
        self._rcvd = [False] * window
        self._payloads: list[Any] = [None] * window

    # -- receiving ----------------------------------------------------------

    def is_duplicate(self, wire_seq: int) -> bool:
        """Bounded form of ``v < nr``: ``(v - nr) mod 2w >= w``."""
        return self.domain.sub(wire_seq, self.nr) >= self.w

    def accept(self, wire_seq: int, payload: Any = None) -> bool:
        """Handle data message ``wire_seq`` (action 3', bounded).

        Returns True if the caller must reply with the duplicate ack
        ``(wire_seq, wire_seq)``; False if the message was recorded.
        """
        if self.is_duplicate(wire_seq):
            return True
        cell = wire_seq % self.w
        if not self._rcvd[cell]:
            self._rcvd[cell] = True
            self._payloads[cell] = payload
        return False

    def advance(self) -> int:
        """Slide ``vr`` over the received run (action 4, bounded).

        Clears each ``rcvd`` cell as ``vr`` passes it (the paper:
        "rcvd[vr mod w] is set to false in action 4").
        """
        moved = 0
        while self._rcvd[self.vr % self.w]:
            self._rcvd[self.vr % self.w] = False
            self.vr = self.domain.add(self.vr, 1)
            moved += 1
        return moved

    @property
    def ack_ready(self) -> bool:
        """Bounded form of ``nr < vr``: the counters differ."""
        return self.nr != self.vr

    def take_block(self) -> tuple[int, int, list[Any]]:
        """Emit the pending wire block ``(nr, vr - 1)`` (action 5, bounded).

        Returns ``(lo_wire, hi_wire, payloads)``; payloads come out in
        sequence order and their buffer cells are released.
        """
        if not self.ack_ready:
            raise RuntimeError(f"no block pending: nr={self.nr} vr={self.vr}")
        lo = self.nr
        hi = self.domain.sub(self.vr, 1)
        payloads: list[Any] = []
        seq = self.nr
        while seq != self.vr:
            cell = seq % self.w
            payloads.append(self._payloads[cell])
            self._payloads[cell] = None
            seq = self.domain.add(seq, 1)
        self.nr = self.vr
        return lo, hi, payloads

    def buffered_count(self) -> int:
        """Number of out-of-order messages currently buffered."""
        return sum(self._rcvd)

    def repair(self) -> list[str]:
        """Restore local consistency after arbitrary state corruption.

        ``nr`` is the durable anchor (numbers behind it were covered by
        emitted acknowledgments).  The accepted run ``(vr - nr) mod n``
        can never legitimately exceed ``w``; when it does, ``vr`` rolls
        back to ``nr`` and the volatile rings are cleared — exactly the
        crash-restart demotion, which the sender repairs by
        retransmission.  Within a legal-looking span the payload buffer
        is the witness: a number accepted into ``[nr, vr)`` holds its
        payload until :meth:`take_block` releases it, so ``vr`` is
        clamped to the payload-backed run and ``rcvd`` cells without a
        payload (or without a live number) are cleared — always the
        demote-to-not-received direction, repaired by retransmission.
        Returns a description of each repair applied.
        """
        repairs: list[str] = []
        n = self.domain.n
        if not 0 <= self.nr < n:
            repairs.append(f"nr {self.nr} -> {self.nr % n} (out of domain)")
            self.nr %= n
        if not 0 <= self.vr < n:
            repairs.append(f"vr {self.vr} -> {self.vr % n} (out of domain)")
            self.vr %= n
        if self.domain.sub(self.vr, self.nr) > self.w:
            repairs.append(
                f"vr {self.vr} -> {self.nr} (span exceeded w={self.w}); "
                "volatile rings cleared"
            )
            self.vr = self.nr
            self._rcvd = [False] * self.w
            self._payloads = [None] * self.w
            return repairs
        # payload-witness the accepted run: clamp vr to the cells that
        # still hold the payloads take_block would deliver
        seq = self.nr
        while seq != self.vr:
            if self._payloads[seq % self.w] is None:
                repairs.append(
                    f"vr {self.vr} -> {seq} (no payload backing)"
                )
                self.vr = seq
                break
            seq = self.domain.add(seq, 1)
        # cells a buffered number could live in: [vr, nr + w) mod n
        live: set[int] = set()
        seq = self.vr
        stop = self.domain.add(self.nr, self.w)
        while seq != stop:
            live.add(seq % self.w)
            seq = self.domain.add(seq, 1)
        # cells holding accepted-run payloads awaiting take_block
        accepted: set[int] = set()
        seq = self.nr
        while seq != self.vr:
            accepted.add(seq % self.w)
            seq = self.domain.add(seq, 1)
        bogus = [
            cell for cell in range(self.w)
            if self._rcvd[cell]
            and (cell not in live or self._payloads[cell] is None)
        ]
        if bogus:
            repairs.append(
                f"cleared rcvd cells {bogus} (no live number or no payload)"
            )
            for cell in bogus:
                self._rcvd[cell] = False
                if cell not in accepted:
                    self._payloads[cell] = None
        return repairs

    def __repr__(self) -> str:
        return f"BoundedReceiverBook(nr={self.nr}, vr={self.vr}, w={self.w})"
