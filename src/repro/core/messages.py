"""Wire message types shared by all protocol implementations.

The paper abstracts a data message to *just its sequence number*; we keep
an optional payload so the examples can move real bytes, but protocol logic
never inspects it.  Acknowledgments come in two shapes:

* :class:`BlockAck` — the paper's contribution: a pair ``(lo, hi)``
  acknowledging every data message with sequence number in ``lo..hi``
  inclusive.
* :class:`CumulativeAck` — the traditional go-back-N acknowledgment: a
  single number meaning "everything up to and including this".

All message types are frozen dataclasses: channel code treats messages as
immutable values, so a retransmission is a *new* message object and the
in-flight multiset semantics of the paper carry over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DataMessage",
    "BlockAck",
    "CumulativeAck",
    "FlowEnvelope",
    "is_data",
    "is_ack",
]


@dataclass(frozen=True)
class DataMessage:
    """A data message.

    Attributes
    ----------
    seq:
        The sequence number *as carried on the wire*.  For unbounded
        protocol variants this is the true sequence number; for the
        Section-V bounded variants it is the true number mod ``2w`` and
        the receiver reconstructs the rest.
    payload:
        Opaque application data; never inspected by protocol logic.
    attempt:
        0 for the first transmission, incremented per retransmission.
        Diagnostic only — the paper's messages carry no such field and no
        protocol decision may depend on it (tests enforce this by checking
        behaviour is invariant under it).
    """

    seq: int
    payload: Any = None
    attempt: int = 0

    def __str__(self) -> str:
        suffix = f"#{self.attempt}" if self.attempt else ""
        return f"DATA({self.seq}){suffix}"


@dataclass(frozen=True)
class BlockAck:
    """The paper's block acknowledgment: acks sequence numbers ``lo..hi``.

    Invariant: ``lo <= hi`` for unbounded numbering.  For bounded (mod-n)
    numbering the pair may wrap, e.g. ``(6, 1)`` in a domain of 8, so the
    constructor does not enforce ordering; the numbering scheme in
    :mod:`repro.core.seqnum` gives the pair its meaning.

    ``urgent`` marks acknowledgments that answer a retransmission (the
    paper's duplicate ``(v, v)`` ack from action 3).  It is endpoint
    metadata, not wire content: the byte codec does not serialize it,
    equality ignores it, and no protocol decision depends on it — it only
    tells transmission schedulers (e.g. the duplex piggyback mux) that
    delaying this ack would stretch a peer's loss recovery.
    """

    lo: int
    hi: int
    urgent: bool = field(default=False, compare=False)

    @property
    def is_singleton(self) -> bool:
        """True if this ack covers exactly one sequence number."""
        return self.lo == self.hi

    def spans(self, seq: int) -> bool:
        """True if ``seq`` lies in ``lo..hi`` (unbounded numbering only)."""
        return self.lo <= seq <= self.hi

    def __str__(self) -> str:
        return f"ACK({self.lo},{self.hi})"


@dataclass(frozen=True)
class CumulativeAck:
    """Traditional cumulative acknowledgment: everything ``<= seq``.

    Used only by the go-back-N and alternating-bit baselines.
    """

    seq: int

    def __str__(self) -> str:
        return f"CACK({self.seq})"


@dataclass(frozen=True)
class FlowEnvelope:
    """A flow-tagged wrapper around one protocol message on a shared link.

    :class:`~repro.channel.mux.FlowMux` wraps every message a flow port
    sends into one of these so N independent endpoint pairs can share a
    single impaired channel; the mux strips the envelope again before the
    destination endpoint sees the message.  Protocol logic never inspects
    envelopes — they are link-layer addressing, exactly like the flow
    label of a real multiplexed link.

    Attributes
    ----------
    flow:
        The flow identifier (16 bits on the wire).
    fseq:
        Per-flow envelope counter stamped at send time, used for
        per-flow reorder accounting.  Diagnostic only; carried mod
        ``2**16`` on framed links.
    message:
        The wrapped protocol message (data or acknowledgment).
    """

    flow: int
    fseq: int
    message: Any

    def __str__(self) -> str:
        return f"f{self.flow}:{self.message}"


def is_data(message: Any) -> bool:
    """True if ``message`` is a data message."""
    return isinstance(message, DataMessage)


def is_ack(message: Any) -> bool:
    """True if ``message`` is an acknowledgment of any kind."""
    return isinstance(message, (BlockAck, CumulativeAck))
