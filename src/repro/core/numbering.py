"""Numbering schemes: what goes on the wire, and how it is decoded.

The Section-II protocol puts true (unbounded) sequence numbers on the
wire; the Section-V protocol puts ``seq mod n`` with ``n = 2w`` and each
side reconstructs the true number from a local reference using the
function ``f`` (:func:`repro.core.seqnum.reconstruct`):

* the **sender** decodes an ack pair ``(i, j)`` with reference ``na``
  (paper assertions 9/10 guarantee ``na <= i, j < na + w``);
* the **receiver** decodes a data number ``v`` with reference
  ``max(0, nr - w)`` (assertion 11 guarantees
  ``max(0, nr - w) <= v < nr + w``).

Making the scheme a strategy object lets one protocol implementation run
in both modes, which is exactly what the bounded-equivalence experiment
(E7) exercises: same endpoint code, identical behaviour, different bits on
the wire.  An intentionally undersized domain (``n < 2w``) can also be
constructed to demonstrate *why* ``2w`` is the minimum (E8 ablation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.seqnum import SequenceDomain, minimum_domain_size

__all__ = ["Numbering", "UnboundedNumbering", "ModularNumbering"]


class Numbering(ABC):
    """Encodes true sequence numbers for the wire and decodes them back."""

    @abstractmethod
    def encode(self, seq: int) -> int:
        """True sequence number -> wire representation."""

    @abstractmethod
    def decode_at_sender(self, wire: int, na: int) -> int:
        """Wire ack number -> true number, using the sender's ``na``."""

    @abstractmethod
    def decode_at_receiver(self, wire: int, nr: int, w: int) -> int:
        """Wire data number -> true number, using the receiver's ``nr``."""

    @property
    @abstractmethod
    def domain_size(self) -> int | None:
        """Size of the wire domain, or None if unbounded."""


class UnboundedNumbering(Numbering):
    """Section II: the true sequence number itself travels on the wire."""

    def encode(self, seq: int) -> int:
        return seq

    def decode_at_sender(self, wire: int, na: int) -> int:
        return wire

    def decode_at_receiver(self, wire: int, nr: int, w: int) -> int:
        return wire

    @property
    def domain_size(self) -> None:
        return None

    def __repr__(self) -> str:
        return "UnboundedNumbering()"


class ModularNumbering(Numbering):
    """Section V: ``seq mod n`` travels on the wire, ``n = 2w`` by default.

    Parameters
    ----------
    window:
        The protocol window size ``w`` (the *maximum* window when the
        sender resizes at runtime).
    domain_size:
        Wire domain ``n``.  Defaults to the safe minimum ``2*K*w`` where
        ``K`` is the lookahead.  Smaller values are accepted (with
        ``strict=False``) solely so the test suite and E8 can demonstrate
        the resulting ambiguity.
    lookahead:
        Position-reuse factor ``K`` (Section VI extension).  Live
        sequence numbers then span up to ``K*w`` on each side of the
        receiver's ``nr``, so the safe minimum domain grows to ``2*K*w``.
    strict:
        When True (default), reject domains below the safe minimum.
    """

    def __init__(
        self,
        window: int,
        domain_size: int | None = None,
        strict: bool = True,
        lookahead: int = 1,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.window = window
        self.lookahead = lookahead
        self.span = window * lookahead  # width of the live range each side
        minimum = 2 * self.span
        n = domain_size if domain_size is not None else minimum
        if strict and n < minimum:
            raise ValueError(
                f"domain {n} is unsafe for window {window} x lookahead "
                f"{lookahead}: need n >= 2*K*w = {minimum} "
                "(pass strict=False to build a deliberately broken scheme)"
            )
        self.domain = SequenceDomain(n)

    def encode(self, seq: int) -> int:
        return self.domain.wrap(seq)

    def decode_at_sender(self, wire: int, na: int) -> int:
        return self.domain.reconstruct(na, wire)

    def decode_at_receiver(self, wire: int, nr: int, w: int) -> int:
        return self.domain.reconstruct(max(0, nr - self.span), wire)

    @property
    def domain_size(self) -> int:
        return self.domain.n

    def __repr__(self) -> str:
        return f"ModularNumbering(w={self.window}, n={self.domain.n})"
