"""Finite sequence-number arithmetic (paper Section V).

The bounded protocol sends ``m mod n`` on the wire instead of the true
sequence number ``m``, with ``n = 2w``.  The receiver of a wire number
reconstructs the true number using a locally known *reference* value ``x``
for which the protocol invariant guarantees ``x <= y < x + n``:

* the sender reconstructs ack numbers ``i, j`` with reference ``na``
  (assertions 9, 10: ``na <= i, j < na + w``);
* the receiver reconstructs data numbers ``v`` with reference
  ``max(0, nr - w)`` (assertion 11: ``max(0, nr - w) <= v < nr + w``).

Both windows have width at most ``2w - 1 < n``, which is exactly why
``n = 2w`` suffices — and why ``n = w`` does not (the model-checking
experiment E8 demonstrates the failure).

The reconstruction function :func:`reconstruct` is the paper's ``f``:

    f(x, y mod n) = n*(x div n) + (y mod n)        if (y mod n) >= (x mod n)
                    n*(x div n + 1) + (y mod n)    otherwise

:class:`SequenceDomain` packages ``n`` together with the wrap/reconstruct
helpers and the modular comparisons needed by the fully bounded-storage
variant of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "reconstruct",
    "minimum_domain_size",
    "SequenceDomain",
]


def reconstruct(reference: int, wire: int, n: int) -> int:
    """The paper's function ``f``: recover ``y`` from ``y mod n``.

    Parameters
    ----------
    reference:
        A value ``x`` known to satisfy ``x <= y < x + n``.
    wire:
        The received value ``y mod n``; must lie in ``0..n-1``.
    n:
        The sequence-number domain size.

    Returns the unique ``y`` in ``[reference, reference + n)`` congruent to
    ``wire`` mod ``n``.
    """
    if n <= 0:
        raise ValueError(f"domain size must be positive, got {n}")
    if not 0 <= wire < n:
        raise ValueError(f"wire value {wire} outside domain 0..{n - 1}")
    if reference < 0:
        raise ValueError(f"reference must be non-negative, got {reference}")
    base = reference - (reference % n)  # n * (reference div n)
    if wire >= reference % n:
        return base + wire
    return base + n + wire


def minimum_domain_size(window: int) -> int:
    """Smallest safe wire domain for window size ``w``: the paper's ``2w``."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    return 2 * window


@dataclass(frozen=True)
class SequenceDomain:
    """A finite sequence-number domain of size ``n``.

    Provides wrapping, reconstruction, and the modular comparisons the
    bounded-storage protocol performs on its (wrapped) counters.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"domain size must be positive, got {self.n}")

    # -- wire encoding --------------------------------------------------

    def wrap(self, seq: int) -> int:
        """Encode a true sequence number for the wire: ``seq mod n``."""
        return seq % self.n

    def reconstruct(self, reference: int, wire: int) -> int:
        """Recover the true number from its wire encoding; see module doc."""
        return reconstruct(reference, wire, self.n)

    # -- modular counter arithmetic (bounded-storage variant) -----------

    def add(self, a: int, b: int) -> int:
        """``(a + b) mod n`` — counter increment in the bounded variant."""
        return (a + b) % self.n

    def sub(self, a: int, b: int) -> int:
        """``(a - b) mod n`` — modular distance from ``b`` up to ``a``.

        When the true values satisfy ``b <= a < b + n`` this equals the
        true difference ``a - b``; the protocol invariant guarantees that
        precondition everywhere the bounded variant subtracts.
        """
        return (a - b) % self.n

    def in_window(self, wire: int, base_wire: int, width: int) -> bool:
        """True if ``wire`` is within ``width`` slots past ``base_wire``.

        Implements comparisons like ``ns < na + w`` on wrapped counters:
        valid whenever the true values are within ``n`` of each other,
        which assertion 6 guarantees for the sender window
        (``na <= ns <= na + w`` and ``w < n``).
        """
        if not 0 < width <= self.n:
            raise ValueError(f"width must be in 1..{self.n}, got {width}")
        return self.sub(wire, base_wire) < width

    def __str__(self) -> str:
        return f"SequenceDomain(n={self.n})"
