"""Window bookkeeping for the block-acknowledgment protocol.

These two classes are the *unbounded-counter* bookkeeping of the paper's
Section II processes, factored out so that protocol endpoints, the formal
model, and tests all share one implementation of the fiddly parts:

* :class:`SenderWindow` owns ``na`` (next to be acknowledged), ``ns``
  (next to send), the window size ``w``, and the ``ackd`` record for the
  in-window range.
* :class:`ReceiverWindow` owns ``nr`` (next to accept), ``vr`` (upper
  bound of the received-but-unacknowledged run), and the ``rcvd`` record.

The paper reasons with infinite boolean arrays ``ackd[0..]`` / ``rcvd[0..]``
but notes an implementation needs only ``w`` cells.  Here we store the
true (unbounded) integers but only for the live window — sets hold just
the in-window members, so memory is O(w), matching the paper's remark
while keeping the reasoning simple.  The byte-exact bounded-storage
variant of Section V lives in :mod:`repro.core.bounded` and is
equivalence-tested against this one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["SenderWindow", "ReceiverWindow", "AckOutcome", "AcceptOutcome"]


@dataclass
class AckOutcome:
    """Result of applying one block acknowledgment at the sender."""

    newly_acked: list[int] = field(default_factory=list)
    na_before: int = 0
    na_after: int = 0
    stale: bool = False  # every covered number was already acknowledged

    @property
    def advanced(self) -> int:
        """How far ``na`` moved."""
        return self.na_after - self.na_before


@dataclass
class AcceptOutcome:
    """Result of handling one data message at the receiver."""

    duplicate: bool = False  # message was below nr (already accepted)
    recorded: bool = False  # message newly recorded in rcvd
    redundant: bool = False  # in-window but already recorded (protocol
    # invariant says this cannot happen with safe timeouts; counted so
    # the E12 ablation can observe invariant decay)


class SenderWindow:
    """Sender-side window state: ``na``, ``ns``, ``ackd``.

    Invariant (paper assertion 6 restricted to the sender):
    ``na <= ns <= na + K*w``, and ``ackd`` contains only numbers in
    ``[na, ns)`` (numbers below ``na`` are implicitly acknowledged,
    numbers at/above ``ns`` have never been sent).

    Two Section-VI extensions are supported:

    * **variable window** — :meth:`resize` changes ``w`` at runtime
      (within ``max_window``, which fixes the wire-number domain);
    * **position reuse** (``lookahead = K > 1``) — the paper's closing
      remark: because block acknowledgments identify *exactly* which
      positions were received, the sender may reuse acknowledged
      positions for new messages before older ones are acknowledged.
      The send guard becomes "fewer than ``w`` messages unacknowledged
      AND ``ns < na + K*w``"; with ``K = 1`` this degenerates to the
      paper's action-0 guard (``ns - na < w`` implies both).  The price
      is a ``2*K*w`` wire domain (live numbers span up to ``K*w`` on each
      side of ``nr``) — the complexity/number-budget trade-off the paper
      predicts.
    """

    def __init__(
        self,
        window: int,
        lookahead: int = 1,
        max_window: Optional[int] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if max_window is not None and max_window < window:
            raise ValueError(
                f"max_window {max_window} smaller than window {window}"
            )
        self.w = window
        self.lookahead = lookahead
        self.max_window = max_window if max_window is not None else window
        self.na = 0
        self.ns = 0
        self._ackd: set[int] = set()

    # -- sending --------------------------------------------------------

    @property
    def unacked_count(self) -> int:
        """Messages sent but not acknowledged (window occupancy)."""
        return (self.ns - self.na) - len(self._ackd)

    @property
    def can_send(self) -> bool:
        """Send guard.

        ``K = 1``: the paper's action 0 guard ``ns < na + w``.
        ``K > 1``: position reuse — occupancy below ``w`` and sequence
        lookahead below ``K*w``.
        """
        if self.lookahead == 1:
            return self.ns < self.na + self.w
        return (
            self.unacked_count < self.w
            and self.ns < self.na + self.lookahead * self.w
        )

    def resize(self, new_window: int) -> None:
        """Change the window size at runtime (Section VI remark).

        The new size must stay within ``max_window`` — the wire-number
        domain is sized from ``max_window`` at construction and cannot
        grow.  Shrinking below the current occupancy is allowed; sending
        simply stays blocked until acknowledgments drain the excess.
        """
        if not 0 < new_window <= self.max_window:
            raise ValueError(
                f"window must be in 1..{self.max_window}, got {new_window}"
            )
        self.w = new_window

    @property
    def in_flight_window(self) -> int:
        """Number of sequence numbers currently outstanding: ``ns - na``."""
        return self.ns - self.na

    def take_next(self) -> int:
        """Allocate the next sequence number (paper action 0 body)."""
        if not self.can_send:
            raise RuntimeError(
                f"window full: na={self.na} ns={self.ns} w={self.w}"
            )
        seq = self.ns
        self.ns += 1
        return seq

    # -- acknowledgments -------------------------------------------------

    def apply_ack(self, lo: int, hi: int) -> AckOutcome:
        """Apply block ack ``(lo, hi)`` (paper action 1).

        Records every number in ``lo..hi`` as acknowledged, then slides
        ``na`` over the acknowledged prefix.
        """
        if lo > hi:
            raise ValueError(f"malformed block ack ({lo}, {hi})")
        if hi >= self.ns:
            raise ValueError(
                f"ack ({lo}, {hi}) covers never-sent numbers (ns={self.ns})"
            )
        outcome = AckOutcome(na_before=self.na, na_after=self.na)
        for seq in range(max(lo, self.na), hi + 1):
            if seq not in self._ackd:
                self._ackd.add(seq)
                outcome.newly_acked.append(seq)
        while self.na in self._ackd:
            self._ackd.discard(self.na)
            self.na += 1
        outcome.na_after = self.na
        outcome.stale = not outcome.newly_acked and outcome.advanced == 0
        return outcome

    def is_acked(self, seq: int) -> bool:
        """True if ``seq`` has been acknowledged (below ``na`` or recorded)."""
        return seq < self.na or seq in self._ackd

    def outstanding(self) -> list[int]:
        """Unacknowledged sequence numbers, ascending (subset of [na, ns))."""
        return [
            seq for seq in range(self.na, self.ns) if seq not in self._ackd
        ]

    @property
    def oldest_outstanding(self) -> Optional[int]:
        """``na`` when anything is outstanding (``na`` is never acked)."""
        return self.na if self.na != self.ns else None

    @property
    def all_acknowledged(self) -> bool:
        """True if every sent message has been acknowledged."""
        return self.na == self.ns

    def check_invariant(self) -> None:
        """Assert the sender share of paper assertions 6 and 7.

        With position reuse the window bound generalizes to
        ``ns <= na + K*w`` plus the occupancy bound ``unacked <= w``
        (occupancy may transiently exceed a *shrunk* ``w`` after
        :meth:`resize`, bounded by ``max_window``).
        """
        assert self.na <= self.ns, (self.na, self.ns)
        assert self.ns <= self.na + self.lookahead * self.max_window
        assert self.unacked_count <= self.max_window
        assert all(self.na < s < self.ns for s in self._ackd) or not self._ackd
        assert self.na not in self._ackd  # paper: ¬ackd[na]

    def repair(self, witness: Optional[Iterable[int]] = None) -> list[str]:
        """Restore local consistency after arbitrary state corruption.

        ``witness`` is the set of sequence numbers whose payloads the
        sender still holds.  The payload store is the repair's ledger of
        authority, in *both* directions: a payload is stored at send and
        popped exactly at acknowledgment, so a held payload proves its
        number sent-but-unacknowledged (bounding ``na`` below and ``ns``
        above), and an *absent* payload for a number in ``[na, ns)``
        proves it was acknowledged.  Cursor and ``ackd`` record are
        rewritten to the unique state consistent with that ledger.
        Demotions are safe because a spurious retransmission is absorbed
        by the receiver's duplicate handling; promotions are safe
        because the pop-on-ack discipline means the ledger cannot
        under-report an unacknowledged number (and without them a
        rewound ``na`` leaves "unacknowledged" numbers nothing can
        retransmit — a deadlock, not a recovery).  Passing ``None``
        (unknown witness) repairs only the locally detectable
        inconsistencies — the conservative, demote-only subset.
        Returns a description of each repair applied (empty if the state
        was already consistent).
        """
        repairs: list[str] = []
        if witness is None:
            if self.na > self.ns:
                repairs.append(f"na {self.na} -> {self.ns} (cursor inversion)")
                self.na = self.ns
            bogus = {s for s in self._ackd if not (self.na < s < self.ns)}
            if bogus:
                repairs.append(f"ackd -= {sorted(bogus)} (outside (na, ns))")
                self._ackd -= bogus
            return repairs
        held = set(witness)
        if held and self.ns < max(held) + 1:
            repairs.append(
                f"ns {self.ns} -> {max(held) + 1} (held payload witness)"
            )
            self.ns = max(held) + 1
        target = min(held) if held else self.ns
        if self.na != target:
            reason = (
                "held payload witness" if self.na > target
                else "payloads below released at acknowledgment"
            )
            repairs.append(f"na {self.na} -> {target} ({reason})")
            self.na = target
        canonical = {s for s in range(self.na, self.ns) if s not in held}
        demoted = sorted(self._ackd - canonical)
        promoted = sorted(canonical - self._ackd)
        if demoted:
            repairs.append(
                f"ackd -= {demoted} (payload still held or outside (na, ns))"
            )
        if promoted:
            repairs.append(
                f"ackd += {promoted} (payload released at acknowledgment)"
            )
        if demoted or promoted:
            self._ackd = canonical
        return repairs

    def __repr__(self) -> str:
        return (
            f"SenderWindow(na={self.na}, ns={self.ns}, w={self.w}, "
            f"ackd={sorted(self._ackd)})"
        )


class ReceiverWindow:
    """Receiver-side window state: ``nr``, ``vr``, ``rcvd``, payload buffer.

    Invariant (paper assertion 6 restricted to the receiver):
    ``nr <= vr`` and every number in ``[nr, vr)`` has been received.
    Payloads of received-but-not-yet-accepted messages are buffered and
    released in order as ``nr`` advances.
    """

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.w = window
        self.nr = 0
        self.vr = 0
        self._rcvd: set[int] = set()
        self._payloads: dict[int, Any] = {}

    # -- receiving --------------------------------------------------------

    def accept(self, seq: int, payload: Any = None) -> AcceptOutcome:
        """Handle data message ``seq`` (paper action 3).

        Returns an outcome telling the caller whether to emit a duplicate
        acknowledgment ``(seq, seq)``.
        """
        if seq < self.nr:
            return AcceptOutcome(duplicate=True)
        if seq in self._rcvd or seq < self.vr:
            return AcceptOutcome(redundant=True)
        self._rcvd.add(seq)
        self._payloads[seq] = payload
        return AcceptOutcome(recorded=True)

    def advance(self) -> int:
        """Slide ``vr`` over the received run (paper action 4, iterated).

        Returns how far ``vr`` moved.
        """
        moved = 0
        while self.vr in self._rcvd:
            self._rcvd.discard(self.vr)
            self.vr += 1
            moved += 1
        return moved

    @property
    def ack_ready(self) -> bool:
        """Paper action 5 guard: ``nr < vr``."""
        return self.nr < self.vr

    def take_block(self) -> tuple[int, int, list[Any]]:
        """Emit the pending block (paper action 5).

        Returns ``(lo, hi, payloads)`` where ``(lo, hi) = (nr, vr - 1)``
        and ``payloads`` are the newly accepted messages' payloads in
        sequence order.  Advances ``nr`` to ``vr``.
        """
        if not self.ack_ready:
            raise RuntimeError(f"no block pending: nr={self.nr} vr={self.vr}")
        lo, hi = self.nr, self.vr - 1
        payloads = [self._payloads.pop(seq, None) for seq in range(lo, hi + 1)]
        self.nr = self.vr
        return lo, hi, payloads

    def drop_volatile(self) -> int:
        """Crash semantics: forget everything not yet acknowledged.

        ``nr`` is durable — every number below it was covered by an
        emitted block acknowledgment — but the reorder buffer and the
        accepted-but-unacknowledged run ``[nr, vr)`` live in volatile
        memory.  A restarting receiver rolls ``vr`` back to ``nr`` and
        clears the buffers; the sender retransmits the forgotten
        messages because they were never acknowledged.  Returns how many
        received messages were forgotten.
        """
        forgotten = (self.vr - self.nr) + len(self._rcvd)
        self.vr = self.nr
        self._rcvd.clear()
        self._payloads.clear()
        return forgotten

    @property
    def received_unaccepted(self) -> list[int]:
        """Out-of-order numbers received above ``vr`` (buffered)."""
        return sorted(self._rcvd)

    def has_received(self, seq: int) -> bool:
        """True if ``seq`` was ever received (accepted or buffered)."""
        return seq < self.vr or seq in self._rcvd

    def check_invariant(self) -> None:
        """Assert the receiver share of paper assertions 6 and 7."""
        assert self.nr <= self.vr, (self.nr, self.vr)
        assert all(s > self.vr for s in self._rcvd) or not self._rcvd

    def repair(self) -> list[str]:
        """Restore local consistency after arbitrary state corruption.

        ``nr`` is durable (every number below it was covered by an
        emitted acknowledgment) so it anchors the repair; the payload
        buffer is the witness for ``vr``: every accepted-but-unclaimed
        number in ``[nr, vr)`` must hold a payload.  ``vr`` is clamped to
        the longest payload-backed run above ``nr``; payload-backed
        numbers stranded above the clamped ``vr`` are re-buffered as
        out-of-order receipts, so nothing genuinely received is redone.
        As at the sender, repairs only demote numbers to *not yet
        accepted* — the sender retransmits anything demoted because it
        was never acknowledged.  Returns a description of each repair.
        """
        repairs: list[str] = []
        if self.vr < self.nr:
            repairs.append(f"vr {self.vr} -> {self.nr} (cursor inversion)")
            self.vr = self.nr
        run = self.nr
        while run < self.vr and run in self._payloads:
            run += 1
        if run < self.vr:
            stranded = [
                s for s in range(run + 1, self.vr) if s in self._payloads
            ]
            repairs.append(
                f"vr {self.vr} -> {run} (no payload for {run}); "
                f"re-buffered {stranded}"
            )
            self.vr = run
            self._rcvd.update(stranded)
        stale = {s for s in self._rcvd if s < self.vr}
        if stale:
            repairs.append(f"rcvd -= {sorted(stale)} (below vr)")
            self._rcvd -= stale
        unbacked = {s for s in self._rcvd if s not in self._payloads}
        if unbacked:
            repairs.append(f"rcvd -= {sorted(unbacked)} (no payload held)")
            self._rcvd -= unbacked
        orphans = {
            s for s in self._payloads
            if s < self.nr or (s >= self.vr and s not in self._rcvd)
        }
        if orphans:
            repairs.append(f"dropped orphan payloads {sorted(orphans)}")
            for s in sorted(orphans):
                del self._payloads[s]
        if self.advance():
            repairs.append(f"vr advanced to {self.vr} over re-buffered run")
        return repairs

    def __repr__(self) -> str:
        return (
            f"ReceiverWindow(nr={self.nr}, vr={self.vr}, w={self.w}, "
            f"buffered={sorted(self._rcvd)})"
        )
