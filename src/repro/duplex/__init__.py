"""Full-duplex operation: two paper protocols plus piggybacked acks."""

from repro.duplex.codec import decode_frame, encode_frame
from repro.duplex.endpoint import (
    DuplexEndpoint,
    DuplexFrame,
    DuplexStats,
    PiggybackMux,
)
from repro.duplex.runner import DuplexResult, duplex_over_udp, run_duplex

__all__ = [
    "DuplexEndpoint",
    "DuplexFrame",
    "DuplexStats",
    "PiggybackMux",
    "DuplexResult",
    "run_duplex",
    "duplex_over_udp",
    "encode_frame",
    "decode_frame",
]
