"""Byte framing for duplex (data + piggybacked ack) frames.

Extends the flat wire format of :mod:`repro.wire.codec` with a combined
frame so duplex sessions can run over byte transports (UDP, serial):

    offset  size  field
    0       1     frame type: 0x03 duplex
    1       1     flags: bit0 = has data part, bit1 = has ack part
    2       2     ack lo    (0 when absent)
    4       2     ack hi    (0 when absent)
    6       2     data wire sequence number (0 when absent)
    8       2     data attempt counter
    10      2     payload length L
    12      L     payload bytes
    12+L    4     CRC-32 over bytes [0, 12+L)

The ``urgent`` ack flag is endpoint metadata and is not carried — a
standalone urgent ack is simply never held by the peer's mux, so nothing
downstream needs the bit.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

from repro.core.messages import BlockAck, DataMessage
from repro.duplex.endpoint import DuplexFrame
from repro.wire.codec import CorruptFrame, FrameError, MAX_WIRE_SEQ

__all__ = ["encode_frame", "decode_frame", "DUPLEX_FRAME_TYPE"]

DUPLEX_FRAME_TYPE = 0x03
_HEADER = struct.Struct(">BBHHHHH")
_CRC = struct.Struct(">I")
_FLAG_DATA = 0x01
_FLAG_ACK = 0x02


def _check(value: int, what: str) -> None:
    if not 0 <= value <= MAX_WIRE_SEQ:
        raise FrameError(f"{what} {value} does not fit the 16-bit field")


def encode_frame(frame: DuplexFrame) -> bytes:
    """Serialize a duplex frame into checksummed bytes."""
    flags = 0
    ack_lo = ack_hi = seq = attempt = 0
    payload = b""
    if frame.data is not None:
        flags |= _FLAG_DATA
        data = frame.data
        payload = data.payload if data.payload is not None else b""
        if not isinstance(payload, (bytes, bytearray)):
            raise FrameError(
                f"framed payloads must be bytes, got {type(payload).__name__}"
            )
        if len(payload) > 0xFFFF:
            raise FrameError(f"payload of {len(payload)} bytes exceeds 64 KiB")
        _check(data.seq, "data sequence number")
        _check(data.attempt, "attempt counter")
        seq, attempt = data.seq, data.attempt
    if frame.ack is not None:
        flags |= _FLAG_ACK
        _check(frame.ack.lo, "ack lower bound")
        _check(frame.ack.hi, "ack upper bound")
        ack_lo, ack_hi = frame.ack.lo, frame.ack.hi
    if flags == 0:
        raise FrameError("refusing to encode an empty duplex frame")
    body = _HEADER.pack(
        DUPLEX_FRAME_TYPE, flags, ack_lo, ack_hi, seq, attempt, len(payload)
    ) + bytes(payload)
    return body + _CRC.pack(zlib.crc32(body))


def decode_frame(blob: bytes) -> DuplexFrame:
    """Parse and validate a duplex frame; raises :class:`CorruptFrame`."""
    if len(blob) < _HEADER.size + _CRC.size:
        raise CorruptFrame(f"duplex frame of {len(blob)} bytes is too short")
    body, trailer = blob[: -_CRC.size], blob[-_CRC.size :]
    (expected,) = _CRC.unpack(trailer)
    if zlib.crc32(body) != expected:
        raise CorruptFrame("CRC mismatch")
    frame_type, flags, ack_lo, ack_hi, seq, attempt, length = _HEADER.unpack_from(
        body
    )
    if frame_type != DUPLEX_FRAME_TYPE:
        raise CorruptFrame(f"unexpected frame type 0x{frame_type:02x}")
    payload = body[_HEADER.size :]
    if len(payload) != length:
        raise CorruptFrame(
            f"length field says {length}, frame carries {len(payload)}"
        )
    data: Optional[DataMessage] = None
    ack: Optional[BlockAck] = None
    if flags & _FLAG_DATA:
        data = DataMessage(seq=seq, payload=payload, attempt=attempt)
    elif length:
        raise CorruptFrame("payload present without a data part")
    if flags & _FLAG_ACK:
        ack = BlockAck(lo=ack_lo, hi=ack_hi)
    if data is None and ack is None:
        raise CorruptFrame("frame carries neither data nor ack")
    return DuplexFrame(data=data, ack=ack)
