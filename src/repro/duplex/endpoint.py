"""Full-duplex operation with piggybacked acknowledgments.

The paper develops the protocol for one data direction; real deployments
run data both ways and carry acknowledgments inside reverse-direction
data messages ("piggybacking") instead of as separate packets.  This
package composes two independent block-acknowledgment machines — each
direction is exactly the paper's protocol — behind a piggyback
multiplexer, without modifying the protocol logic at all:

* each :class:`DuplexEndpoint` owns a :class:`BlockAckSender` (for its
  outgoing data) and a :class:`BlockAckReceiver` (for incoming data);
* both halves "send" into a :class:`PiggybackMux` instead of a raw
  channel.  The mux combines an outgoing data message with the newest
  pending acknowledgment into one :class:`DuplexFrame`; an acknowledgment
  with no data to ride on is flushed alone after ``standalone_delay``;
* on reception the frame is split: the ack part feeds the local sender
  half, the data part feeds the local receiver half.

Because each direction is the unmodified paper protocol, all safety
results carry over — the mux only changes *how acknowledgments travel*,
and its ``standalone_delay`` is accounted into the senders' safe timeout
like any other acknowledgment latency.

Holding discipline: only the *newest* block acknowledgment is held.  That
is safe because a receiver's block acks are cumulative-disjoint —
superseding an unsent ``(nr, vr-1)`` with a later one never skips
coverage: the later block starts where the earlier ended, and the two are
merged into one span when both are pending.  Duplicate acks ``(v, v)``
are never merged or delayed (they answer a retransmission; delaying them
would stretch recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.core.messages import BlockAck, DataMessage
from repro.core.numbering import Numbering
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.engine import Simulator
from repro.sim.timers import Timer

__all__ = ["DuplexFrame", "PiggybackMux", "DuplexEndpoint", "DuplexStats"]


@dataclass(frozen=True)
class DuplexFrame:
    """One frame on a duplex link: data, acknowledgment, or both."""

    data: Optional[DataMessage] = None
    ack: Optional[BlockAck] = None

    def __str__(self) -> str:
        parts = [str(p) for p in (self.data, self.ack) if p is not None]
        return "+".join(parts) if parts else "EMPTY"


@dataclass
class DuplexStats:
    """Frame accounting for one direction of a duplex link."""

    frames_sent: int = 0
    piggybacked_acks: int = 0  # acks that rode on data frames
    standalone_acks: int = 0  # acks that needed their own frame
    data_only_frames: int = 0

    @property
    def piggyback_ratio(self) -> float:
        """Share of acknowledgments that travelled for free."""
        total = self.piggybacked_acks + self.standalone_acks
        return self.piggybacked_acks / total if total else 0.0


class PiggybackMux:
    """Combines a direction's data and acknowledgments into frames.

    Looks like a channel (``send``) to both protocol halves; writes
    :class:`DuplexFrame` objects to the real channel.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Any,
        standalone_delay: float = 0.5,
        merge_spans: Optional[Callable[[BlockAck, BlockAck], Optional[BlockAck]]] = None,
    ) -> None:
        if standalone_delay < 0:
            raise ValueError(
                f"standalone_delay must be non-negative, got {standalone_delay}"
            )
        self.sim = sim
        self.channel = channel
        self.standalone_delay = standalone_delay
        self.stats = DuplexStats()
        self._pending_ack: Optional[BlockAck] = None
        self._merge = merge_spans
        self._flush_timer = Timer(sim, self._flush_standalone, name="pg-flush")

    # -- the facade both protocol halves write into ------------------------

    def send(self, message: Any) -> None:
        if isinstance(message, DataMessage):
            ack, self._pending_ack = self._pending_ack, None
            if ack is not None:
                self._flush_timer.stop()
                self.stats.piggybacked_acks += 1
            else:
                self.stats.data_only_frames += 1
            self._emit(DuplexFrame(data=message, ack=ack))
        elif isinstance(message, BlockAck):
            if message.urgent:
                # duplicate acks answer retransmissions: never delay them
                # (flush anything already held first, preserving order)
                self._flush_standalone()
                self.stats.standalone_acks += 1
                self._emit(DuplexFrame(ack=message))
                return
            self._hold_ack(message)
        else:
            raise TypeError(f"piggyback mux got {message!r}")

    def _hold_ack(self, ack: BlockAck) -> None:
        if self._pending_ack is not None and self._merge is not None:
            merged = self._merge(self._pending_ack, ack)
            if merged is not None:
                self._pending_ack = merged
            else:
                # disjoint non-adjacent blocks: flush the old one now
                self.stats.standalone_acks += 1
                self._emit(DuplexFrame(ack=self._pending_ack))
                self._pending_ack = ack
        elif self._pending_ack is not None:
            self.stats.standalone_acks += 1
            self._emit(DuplexFrame(ack=self._pending_ack))
            self._pending_ack = ack
        else:
            self._pending_ack = ack
        if not self._flush_timer.running:
            self._flush_timer.start(self.standalone_delay)

    def _flush_standalone(self) -> None:
        if self._pending_ack is None:
            return
        self.stats.standalone_acks += 1
        self._emit(DuplexFrame(ack=self._pending_ack))
        self._pending_ack = None

    def _emit(self, frame: DuplexFrame) -> None:
        self.stats.frames_sent += 1
        self.channel.send(frame)

    @property
    def max_ack_holding(self) -> float:
        """Worst-case extra latency the mux adds to an acknowledgment."""
        return self.standalone_delay


class DuplexEndpoint:
    """One end of a full-duplex block-acknowledgment connection."""

    def __init__(
        self,
        name: str,
        window: int,
        numbering: Optional[Numbering] = None,
        timeout_mode: str = "per_message_safe",
        standalone_delay: float = 0.5,
    ) -> None:
        self.name = name
        self.numbering = numbering
        self.sender = BlockAckSender(
            window, numbering=numbering, timeout_mode=timeout_mode
        )
        self.sender.actor_name = f"{name}.sender"
        self.receiver = BlockAckReceiver(window, numbering=numbering)
        self.receiver.actor_name = f"{name}.receiver"
        self.standalone_delay = standalone_delay
        self.mux: Optional[PiggybackMux] = None
        self.delivered: List[Any] = []

    # -- wiring ---------------------------------------------------------

    def attach(
        self,
        sim: Simulator,
        out_channel: Any,
        timeout_period: float,
        trace=None,
    ) -> None:
        """Bind to the simulator and this endpoint's outgoing channel.

        ``timeout_period`` must cover: forward lifetime + receiver ack
        latency + mux holding delay + reverse lifetime (the duplex
        variant of :func:`repro.protocols.blockack.safe_timeout_period`).
        """
        self.mux = PiggybackMux(
            sim,
            out_channel,
            standalone_delay=self.standalone_delay,
            merge_spans=self._merge_adjacent,
        )
        self.sender.timeout_period = timeout_period
        self.sender.attach(sim, self.mux, trace)
        self.receiver.attach(sim, self.mux, trace)
        self.receiver.on_deliver = lambda seq, payload: self.delivered.append(
            payload
        )

    def _merge_adjacent(self, old: BlockAck, new: BlockAck) -> Optional[BlockAck]:
        """Merge two held block acks when they form one contiguous span.

        Receiver blocks are emitted in order — ``new.lo`` continues where
        ``old.hi`` ended (mod the wire domain, for bounded numbering) —
        so successive held blocks merge exactly.  Returns None when not
        adjacent (the caller flushes the older one instead).
        """
        domain = (
            self.numbering.domain_size if self.numbering is not None else None
        )
        successor = old.hi + 1 if domain is None else (old.hi + 1) % domain
        if new.lo == successor:
            return BlockAck(lo=old.lo, hi=new.hi)
        return None

    # -- frame reception ---------------------------------------------------

    def on_frame(self, frame: DuplexFrame) -> None:
        """Channel delivery callback: split and route the frame.

        The data half is processed *before* the ack half: the data part
        generates this side's acknowledgment into the mux first, so when
        the ack part opens the send window and new data goes out, the
        fresh acknowledgment rides along.  (Routing order affects only
        piggybacking efficiency, never correctness — the halves are
        independent protocol machines.)
        """
        if frame.data is not None:
            self.receiver.on_message(frame.data)
        if frame.ack is not None:
            self.sender.on_message(frame.ack)

    # -- convenience -------------------------------------------------------

    @property
    def all_done(self) -> bool:
        """All outgoing data acknowledged and nothing pending in the mux."""
        return (
            self.sender.all_acknowledged
            and (self.mux is None or self.mux._pending_ack is None)
        )
