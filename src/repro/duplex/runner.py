"""Harnesses for full-duplex transfers: simulated and over real UDP."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.duplex.endpoint import DuplexEndpoint
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.runner import LinkSpec
from repro.workloads.sources import Source

__all__ = ["DuplexResult", "run_duplex", "duplex_over_udp"]


@dataclass
class DuplexResult:
    """Measurements from one bidirectional transfer."""

    completed: bool
    duration: float
    a_to_b_delivered: int
    b_to_a_delivered: int
    a_in_order: bool
    b_in_order: bool
    a_stats: dict = field(default_factory=dict)
    b_stats: dict = field(default_factory=dict)
    a_mux: dict = field(default_factory=dict)
    b_mux: dict = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        return self.completed and self.a_in_order and self.b_in_order

    def piggyback_ratio(self) -> float:
        """Overall share of acknowledgments that rode on data frames."""
        rode = self.a_mux["piggybacked_acks"] + self.b_mux["piggybacked_acks"]
        alone = self.a_mux["standalone_acks"] + self.b_mux["standalone_acks"]
        total = rode + alone
        return rode / total if total else 0.0

    def summary(self) -> str:
        status = "completed" if self.completed else "INCOMPLETE"
        order = (
            "in-order"
            if self.a_in_order and self.b_in_order
            else "ORDER VIOLATION"
        )
        return (
            f"{status}/{order}: A->B {self.a_to_b_delivered}, "
            f"B->A {self.b_to_a_delivered} in {self.duration:.2f}tu; "
            f"piggyback ratio {self.piggyback_ratio():.0%}"
        )


def run_duplex(
    endpoint_a: DuplexEndpoint,
    endpoint_b: DuplexEndpoint,
    source_a: Source,
    source_b: Source,
    link_ab: Optional[LinkSpec] = None,
    link_ba: Optional[LinkSpec] = None,
    seed: int = 0,
    max_time: Optional[float] = None,
    max_events: int = 20_000_000,
) -> DuplexResult:
    """Run a bidirectional transfer between two duplex endpoints.

    ``source_a`` drives A's outgoing data (delivered at B) and vice
    versa.  Timeout periods are derived from the channel bounds plus each
    mux's acknowledgment-holding delay.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    spec_ab = link_ab if link_ab is not None else LinkSpec()
    spec_ba = link_ba if link_ba is not None else LinkSpec()
    channel_ab = spec_ab.build(sim, streams.get("channel.ab"), "AB")
    channel_ba = spec_ba.build(sim, streams.get("channel.ba"), "BA")

    bound_ab = channel_ab.effective_max_lifetime
    bound_ba = channel_ba.effective_max_lifetime
    if bound_ab is None or bound_ba is None:
        raise ValueError(
            "duplex timeout derivation needs bounded channels; set "
            "LinkSpec.max_lifetime for unbounded delay models"
        )
    # each direction's ack returns on the opposite channel and may sit in
    # the peer's mux for its standalone delay first
    timeout_a = (
        bound_ab + endpoint_b.standalone_delay + bound_ba + 0.05
    )
    timeout_b = (
        bound_ba + endpoint_a.standalone_delay + bound_ab + 0.05
    )

    endpoint_a.attach(sim, channel_ab, timeout_period=timeout_a)
    endpoint_b.attach(sim, channel_ba, timeout_period=timeout_b)
    channel_ab.connect(endpoint_b.on_frame)
    channel_ba.connect(endpoint_a.on_frame)

    source_a.attach(sim, endpoint_a.sender)
    source_b.attach(sim, endpoint_b.sender)

    def finished() -> bool:
        return (
            source_a.exhausted
            and source_b.exhausted
            and endpoint_a.all_done
            and endpoint_b.all_done
            and len(endpoint_b.delivered) >= source_a.total
            and len(endpoint_a.delivered) >= source_b.total
        )

    events = 0
    while not finished():
        if max_time is not None and sim.now > max_time:
            break
        if events >= max_events or not sim.step():
            break
        events += 1

    return DuplexResult(
        completed=finished(),
        duration=sim.now,
        a_to_b_delivered=len(endpoint_b.delivered),
        b_to_a_delivered=len(endpoint_a.delivered),
        a_in_order=endpoint_b.delivered
        == source_a.submitted[: len(endpoint_b.delivered)],
        b_in_order=endpoint_a.delivered
        == source_b.submitted[: len(endpoint_a.delivered)],
        a_stats=endpoint_a.sender.stats.as_dict(),
        b_stats=endpoint_b.sender.stats.as_dict(),
        a_mux={
            "frames_sent": endpoint_a.mux.stats.frames_sent,
            "piggybacked_acks": endpoint_a.mux.stats.piggybacked_acks,
            "standalone_acks": endpoint_a.mux.stats.standalone_acks,
            "data_only_frames": endpoint_a.mux.stats.data_only_frames,
        },
        b_mux={
            "frames_sent": endpoint_b.mux.stats.frames_sent,
            "piggybacked_acks": endpoint_b.mux.stats.piggybacked_acks,
            "standalone_acks": endpoint_b.mux.stats.standalone_acks,
            "data_only_frames": endpoint_b.mux.stats.data_only_frames,
        },
    )


def duplex_over_udp(
    payloads_a: Sequence[bytes],
    payloads_b: Sequence[bytes],
    window: int = 8,
    loss: float = 0.0,
    timeout_period: float = 0.25,
    standalone_delay: float = 0.02,
    deadline: float = 30.0,
    seed: Optional[int] = None,
) -> "DuplexResult":
    """Bidirectional transfer over two real loopback UDP sockets.

    The duplex endpoints (including the piggyback mux) run unchanged on
    the wall-clock scheduler; frames travel as checksummed bytes using
    the combo codec of :mod:`repro.duplex.codec`.  ``loss`` injects
    egress drops both ways.  Returns the same :class:`DuplexResult` shape
    as the simulated harness (with wall-clock ``duration`` in seconds).
    """
    import random as _random

    from repro.core.numbering import ModularNumbering
    from repro.duplex.codec import decode_frame, encode_frame
    from repro.transport.clock import RealtimeScheduler
    from repro.transport.udp import UdpTransport

    for payload in list(payloads_a) + list(payloads_b):
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("UDP duplex payloads must be bytes")

    endpoint_a = DuplexEndpoint(
        "A", window, numbering=ModularNumbering(window),
        standalone_delay=standalone_delay,
    )
    endpoint_b = DuplexEndpoint(
        "B", window, numbering=ModularNumbering(window),
        standalone_delay=standalone_delay,
    )
    rng = _random.Random(seed)
    done = threading.Event()

    with RealtimeScheduler() as clock:
        socket_a = UdpTransport(
            clock, drop_probability=loss, rng=rng,
            encode=encode_frame, decode=decode_frame,
        )
        socket_b = UdpTransport(
            clock, drop_probability=loss, rng=rng,
            encode=encode_frame, decode=decode_frame,
        )
        socket_a.set_remote(socket_b.local_address)
        socket_b.set_remote(socket_a.local_address)
        try:
            endpoint_a.attach(clock, socket_a, timeout_period=timeout_period)
            endpoint_b.attach(clock, socket_b, timeout_period=timeout_period)
            socket_a.connect(endpoint_a.on_frame)
            socket_b.connect(endpoint_b.on_frame)

            pending_a = list(payloads_a)
            pending_b = list(payloads_b)

            def pump(endpoint: DuplexEndpoint, pending: list) -> None:
                while pending and endpoint.sender.can_accept:
                    endpoint.sender.submit(pending.pop(0))

            endpoint_a.sender.on_window_open = lambda: pump(endpoint_a, pending_a)
            endpoint_b.sender.on_window_open = lambda: pump(endpoint_b, pending_b)

            def watch() -> None:
                if (
                    not pending_a
                    and not pending_b
                    and endpoint_a.all_done
                    and endpoint_b.all_done
                    and len(endpoint_b.delivered) >= len(payloads_a)
                    and len(endpoint_a.delivered) >= len(payloads_b)
                ):
                    done.set()
                else:
                    clock.schedule(0.02, watch)

            start = clock.now
            clock.call_soon(pump, endpoint_a, pending_a)
            clock.call_soon(pump, endpoint_b, pending_b)
            clock.call_soon(watch)
            completed = done.wait(timeout=deadline)
            elapsed = clock.now - start
        finally:
            socket_a.close()
            socket_b.close()

    return DuplexResult(
        completed=completed,
        duration=elapsed,
        a_to_b_delivered=len(endpoint_b.delivered),
        b_to_a_delivered=len(endpoint_a.delivered),
        a_in_order=list(endpoint_b.delivered) == list(payloads_a)[: len(endpoint_b.delivered)],
        b_in_order=list(endpoint_a.delivered) == list(payloads_b)[: len(endpoint_a.delivered)],
        a_stats=endpoint_a.sender.stats.as_dict(),
        b_stats=endpoint_b.sender.stats.as_dict(),
        a_mux={
            "frames_sent": endpoint_a.mux.stats.frames_sent,
            "piggybacked_acks": endpoint_a.mux.stats.piggybacked_acks,
            "standalone_acks": endpoint_a.mux.stats.standalone_acks,
            "data_only_frames": endpoint_a.mux.stats.data_only_frames,
        },
        b_mux={
            "frames_sent": endpoint_b.mux.stats.frames_sent,
            "piggybacked_acks": endpoint_b.mux.stats.piggybacked_acks,
            "standalone_acks": endpoint_b.mux.stats.standalone_acks,
            "data_only_frames": endpoint_b.mux.stats.data_only_frames,
        },
    )
