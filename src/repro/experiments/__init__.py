"""The E1-E12 experiment suite reproducing every claim in the paper.

Each module is one experiment; see DESIGN.md for the per-experiment index
mapping paper claims to modules and benchmark targets.  Import
:mod:`repro.experiments.registry` to enumerate or run them.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    fifo_link,
    jitter_link,
    longtail_link,
    lossy_link,
    run_protocol,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "fifo_link",
    "jitter_link",
    "lossy_link",
    "longtail_link",
    "run_protocol",
]
