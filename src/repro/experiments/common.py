"""Shared infrastructure for the E1–E12 experiment suite.

Each experiment module exposes an :class:`ExperimentSpec`; running it
produces an :class:`ExperimentResult` holding the rendered table (the
"figure" the paper's claim predicts), the structured data behind it, and
a ``reproduced`` verdict computed from explicit shape checks.

The channel configurations used across experiments are standardized here
so results are comparable:

* :func:`fifo_link` — constant unit delay: a perfect FIFO pipe.
* :func:`jitter_link` — uniform delay around a unit mean; the spread
  controls reordering intensity (see
  :func:`repro.channel.delay.reorder_probability`).
* :func:`lossy_link` — jittered delay plus independent Bernoulli loss.
* :func:`longtail_link` — mostly-fast delay with a heavy exponential tail
  truncated by channel aging at ``LIFETIME_BOUND``.  This is the regime
  that separates the paper's protocol from the timer-constrained
  baseline: the *maximum* message lifetime (which real-time constraints
  must respect) is ~25x the *typical* delay (which throughput is paid
  in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.channel.delay import ConstantDelay, ExponentialDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, NoLoss
from repro.perf.sweep import (
    RunConfig,
    SweepRunner,
    causal_enabled_by_env,
    engine_from_env,
    obs_enabled_by_env,
)
from repro.sim.runner import LinkSpec, TransferResult, run_transfer
from repro.workloads.sources import GreedySource

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "fifo_link",
    "jitter_link",
    "lossy_link",
    "longtail_link",
    "run_protocol",
    "protocol_config",
    "run_grid",
    "SEEDS",
    "SEEDS_QUICK",
    "LIFETIME_BOUND",
]

#: replication seeds for full runs and for quick (test/bench) runs
SEEDS = (11, 23, 37, 41, 59)
SEEDS_QUICK = (11, 23)

#: channel aging bound used by long-tail links (the paper's "mechanism
#: for aging messages in transit"); also determines safe timeout periods.
LIFETIME_BOUND = 25.0


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    claim: str
    table: str
    data: Dict = field(default_factory=dict)
    findings: List[str] = field(default_factory=list)
    reproduced: bool = True

    def render(self) -> str:
        lines = [
            f"[{self.exp_id}] {self.title}",
            f"paper claim: {self.claim}",
            "",
            self.table,
            "",
        ]
        lines.extend(f"- {finding}" for finding in self.findings)
        lines.append(
            f"verdict: {'REPRODUCED' if self.reproduced else 'NOT REPRODUCED'}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: identity plus the run function."""

    exp_id: str
    title: str
    claim: str
    run: Callable[[bool], ExperimentResult]  # run(quick) -> result


# ----------------------------------------------------------------------
# standard links
# ----------------------------------------------------------------------


def fifo_link() -> LinkSpec:
    """Perfect FIFO pipe with unit delay."""
    return LinkSpec(delay=ConstantDelay(1.0), loss=NoLoss())


def jitter_link(spread: float, loss_p: float = 0.0) -> LinkSpec:
    """Uniform delay on ``[1 - spread/2, 1 + spread/2]`` (mean 1).

    ``spread`` doubles as the reorder-intensity knob: 0 is FIFO, larger
    values let later messages overtake earlier ones more often.
    """
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    low = max(0.0, 1.0 - spread / 2.0)
    high = 1.0 + spread / 2.0
    loss = BernoulliLoss(loss_p) if loss_p > 0 else NoLoss()
    return LinkSpec(delay=UniformDelay(low, high), loss=loss)


def lossy_link(loss_p: float, spread: float = 1.0) -> LinkSpec:
    """Jittered link with independent Bernoulli loss."""
    return jitter_link(spread, loss_p=loss_p)


def longtail_link(loss_p: float = 0.0) -> LinkSpec:
    """Typical delay ~1, heavy tail truncated by aging at LIFETIME_BOUND."""
    loss = BernoulliLoss(loss_p) if loss_p > 0 else NoLoss()
    return LinkSpec(
        delay=ExponentialDelay(mean=0.3, offset=0.7),
        loss=loss,
        max_lifetime=LIFETIME_BOUND,
    )


# ----------------------------------------------------------------------
# one-line protocol run
# ----------------------------------------------------------------------


def run_protocol(
    name: str,
    window: int,
    total: int,
    forward: LinkSpec,
    reverse: LinkSpec,
    seed: int,
    max_time: Optional[float] = None,
    engine: Optional[str] = None,
    **protocol_kwargs,
) -> TransferResult:
    """Build the named protocol pair, drive it greedily, return the result.

    ``engine=None`` resolves against ``REPRO_ENGINE`` (the CLI's
    ``--engine`` flag), so every experiment runs on either event loop
    without code changes.
    """
    from repro.protocols.registry import make_pair  # local: avoid cycles

    if engine is None:
        engine = engine_from_env()
    sender, receiver = make_pair(name, window=window, **protocol_kwargs)
    return run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=forward,
        reverse=reverse,
        seed=seed,
        max_time=max_time,
        engine=engine,
    )


# ----------------------------------------------------------------------
# grid runs (the parallel sweep path)
# ----------------------------------------------------------------------


def protocol_config(
    name: str,
    window: int,
    total: int,
    forward: LinkSpec,
    reverse: LinkSpec,
    seed: int,
    max_time: Optional[float] = None,
    monitor_invariants: bool = False,
    fault_plan=None,
    obs: Optional[bool] = None,
    flows: int = 1,
    engine: Optional[str] = None,
    causal: Optional[bool] = None,
    link_rate: Optional[float] = None,
    link_burst: float = 8.0,
    sched: str = "fifo",
    queue_limit: Optional[int] = 64,
    flow_windows: Optional[Sequence[int]] = None,
    flow_weights: Optional[Sequence[float]] = None,
    **protocol_kwargs,
) -> RunConfig:
    """The declarative twin of :func:`run_protocol`: one grid cell run.

    ``obs=None`` (the default) resolves against the ``REPRO_OBS``
    environment variable (the CLI's ``--obs`` flag), so experiments opt
    into telemetry without changing their code; the resolved value is
    part of the config — and therefore of its cache key — because an
    observed run does strictly more work than an unobserved one.

    ``flows > 1`` runs that many identical flows of the protocol over
    one shared link pair (:mod:`repro.sim.host`); ``total`` is then the
    per-flow payload count and the result carries per-flow rows plus a
    Jain fairness index.

    ``engine=None`` resolves against ``REPRO_ENGINE`` (the CLI's
    ``--engine`` flag); like ``obs``, the resolved value is part of the
    config and its cache key, so fast-engine results never masquerade
    as default-engine ones.

    ``causal=None`` resolves against ``REPRO_CAUSAL`` (the CLI's
    ``--causal`` flag): the causal flight recorder rides every cell of
    the grid, and anomalous cells leave ``results/obs/flight/`` dumps.
    The resolved value joins the cache key like ``obs``/``engine``.

    ``link_rate`` (finite) puts the send-side link arbiter
    (:mod:`repro.channel.arbiter`) in front of the forward channel:
    ``sched``/``link_burst``/``queue_limit`` configure it, and
    ``flow_windows``/``flow_weights`` describe a heterogeneous session
    (one flow per window entry, built by
    :func:`repro.sim.host.mixed_flows`).  The arbiter block only joins
    the cache key when a rate is set.
    """
    if obs is None:
        obs = obs_enabled_by_env()
    if engine is None:
        engine = engine_from_env()
    if causal is None:
        causal = causal_enabled_by_env()
    if flow_windows is not None:
        flow_windows = tuple(flow_windows)
        if flows == 1:
            flows = len(flow_windows)
    if flow_weights is not None:
        flow_weights = tuple(flow_weights)
    return RunConfig(
        protocol=name,
        window=window,
        total=total,
        forward=forward,
        reverse=reverse,
        seed=seed,
        max_time=max_time,
        monitor_invariants=monitor_invariants,
        fault_plan=fault_plan,
        protocol_kwargs=protocol_kwargs,
        obs=obs,
        flows=flows,
        engine=engine,
        causal=causal,
        link_rate=link_rate,
        link_burst=link_burst,
        sched=sched,
        queue_limit=queue_limit,
        flow_windows=flow_windows,
        flow_weights=flow_weights,
    )


def run_grid(configs) -> List[TransferResult]:
    """Run a list of :class:`~repro.perf.sweep.RunConfig` and return results
    in config order.

    Parallelism and memoization come from the environment —
    ``REPRO_JOBS`` (or the CLI's ``--jobs``) picks the process count and
    ``REPRO_CACHE`` opts into the on-disk cache — so experiment code
    stays declarative and byte-identical across serial, parallel, and
    cached executions.
    """
    return SweepRunner().run(configs)
