"""E10 — tolerance of message disorder.

Claim (Sections I, III-C, VI): the protocol tolerates message disorder —
channels are modelled as *sets*, so all proofs hold under arbitrary
reordering — while keeping window-protocol throughput.  Go-back-N, whose
receiver discards anything out of order, pays for every overtaken message
with window-scale retransmissions.

Sweep: delay jitter spread on both (lossless) channels, from FIFO
(spread 0) to severe reordering (spread 2 = delays uniform on [0, 2]).
The adjacent-message reorder probability for each spread is printed from
the closed form in :func:`repro.channel.delay.reorder_probability`.

Expected shape: block ack and selective repeat flat near channel capacity
across the sweep; go-back-N decays sharply as reordering grows.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize_replications
from repro.analysis.report import render_table
from repro.channel.delay import reorder_probability
from repro.experiments.common import (
    SEEDS,
    SEEDS_QUICK,
    ExperimentResult,
    ExperimentSpec,
    jitter_link,
    protocol_config,
    run_grid,
)

__all__ = ["EXPERIMENT"]

WINDOW = 8
SPREADS = (0.0, 0.5, 1.0, 1.5, 2.0)
PROTOCOLS = ("gobackn", "selective-repeat", "blockack")
SEND_GAP = 0.25  # greedy source at w=8, RTT=2: ~4 msgs/tu


def run(quick: bool = False) -> ExperimentResult:
    spreads = (0.0, 1.0, 2.0) if quick else SPREADS
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 300 if quick else 1500

    configs = [
        protocol_config(
            name, WINDOW, total, jitter_link(spread), jitter_link(spread), seed
        )
        for spread in spreads
        for name in PROTOCOLS
        for seed in seeds
    ]
    results = iter(run_grid(configs))

    rows = []
    data = {}
    for spread in spreads:
        low = max(0.0, 1.0 - spread / 2.0)
        high = 1.0 + spread / 2.0
        p_reorder = reorder_probability(low, high, SEND_GAP)
        cell = {}
        for name in PROTOCOLS:
            metrics = summarize_replications(
                [next(results) for _ in seeds],
                metrics=("throughput", "goodput_efficiency"),
            )
            cell[name] = (
                metrics["throughput"].mean,
                metrics["goodput_efficiency"].mean,
            )
        rows.append(
            (spread, f"{p_reorder:.2f}")
            + tuple(cell[name][0] for name in PROTOCOLS)
            + (cell["gobackn"][1], cell["blockack"][1])
        )
        data[spread] = cell

    table = render_table(
        ["jitter spread", "P(adj. reorder)"]
        + [f"thr:{n}" for n in PROTOCOLS]
        + ["eff:gobackn", "eff:blockack"],
        rows,
        title=f"goodput vs reordering intensity (lossless, w={WINDOW})",
    )

    s_lo, s_hi = spreads[0], spreads[-1]
    parity_fifo = (
        abs(data[s_lo]["blockack"][0] - data[s_lo]["gobackn"][0])
        <= 0.05 * data[s_lo]["gobackn"][0]
    )
    gbn_decays = data[s_hi]["gobackn"][0] < 0.6 * data[s_lo]["gobackn"][0]
    # block ack must match selective repeat — the disorder-tolerant bound —
    # at every spread (residual decay at high jitter is head-of-line window
    # stalling, which any w-bounded protocol pays; SR pays it identically)
    ba_matches_sr = all(
        data[s]["blockack"][0] >= 0.95 * data[s]["selective-repeat"][0]
        for s in spreads
    )
    ba_no_waste = all(data[s]["blockack"][1] > 0.999 for s in spreads)
    reproduced = parity_fifo and gbn_decays and ba_matches_sr and ba_no_waste
    findings = [
        "with FIFO channels all three protocols are equal (the E2 parity)",
        f"at spread={s_hi}, go-back-N keeps only "
        f"{data[s_hi]['gobackn'][0] / data[s_lo]['gobackn'][0]:.0%} of its FIFO "
        "goodput: every overtaken message triggers go-back retransmissions",
        "block ack never retransmits under pure reorder (efficiency 1.0) and "
        "matches selective repeat at every spread; the mild decay at extreme "
        "jitter is window head-of-line stalling, paid equally by any "
        "w-bounded protocol",
    ]
    return ExperimentResult(
        exp_id="E10",
        title="Goodput vs reordering intensity",
        claim=EXPERIMENT.claim,
        table=table,
        data={
            str(s): {n: v[0] for n, v in cell.items()} for s, cell in data.items()
        },
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E10",
    title="Message disorder: block ack flat, go-back-N collapses",
    claim=(
        "Sections I/III-C: the protocol tolerates message disorder (channels "
        "are sets; reordering is inherent in the model) with no throughput "
        "penalty, unlike the in-order-only traditional receiver."
    ),
    run=run,
)
