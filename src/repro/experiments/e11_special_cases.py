"""E11 — go-back-N, selective repeat, and alternating bit as corners.

Claim (Sections I and VI): "selective-repeat and go-back-N are special
cases of block acknowledgment where only acknowledgments of the form
(v, v) and (0, 0) are sent, respectively"; and the window protocol (hence
block ack at w = 1) generalizes the alternating-bit protocol.

Three demonstrations:

* **selective-repeat corner** — under heavy reordering with an eager ack
  policy, the receiver is forced toward singleton blocks; we measure the
  block-size distribution and show mass at size 1;
* **go-back-N corner** — on smooth in-order traffic with a counting
  policy, every ack is one large cumulative block ``(nr, nr + k - 1)``;
  mass moves to size k;
* **alternating bit** — the ``w = 1``, domain-2 configuration from
  :mod:`repro.protocols.alternating_bit` transfers correctly and achieves
  exactly one message per RTT, the alternating-bit bound.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.report import render_table
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    fifo_link,
    jitter_link,
)
from repro.protocols.ack_policy import CountingAckPolicy, EagerAckPolicy
from repro.protocols.alternating_bit import (
    make_alternating_bit_receiver,
    make_alternating_bit_sender,
)
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import run_transfer
from repro.trace.events import EventKind
from repro.workloads.sources import GreedySource

__all__ = ["EXPERIMENT", "block_size_distribution"]


def block_size_distribution(ack_policy, spread: float, total: int, seed: int):
    """Histogram of acknowledged block sizes for one configuration."""
    sender = BlockAckSender(window=16, timeout_mode="per_message_safe")
    receiver = BlockAckReceiver(window=16, ack_policy=ack_policy)
    result = run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=jitter_link(spread),
        reverse=jitter_link(spread),
        seed=seed,
        trace=True,
    )
    if not (result.completed and result.in_order):
        raise AssertionError(f"run failed: {result.summary()}")
    sizes = Counter()
    for event in result.trace.filter(kind=EventKind.SEND_ACK):
        sizes[event.seq_hi - event.seq + 1] += 1
    return sizes, result


def run(quick: bool = False) -> ExperimentResult:
    total = 300 if quick else 1000

    sr_sizes, _ = block_size_distribution(
        EagerAckPolicy(), spread=1.5, total=total, seed=9
    )
    gbn_sizes, _ = block_size_distribution(
        CountingAckPolicy(8, 2.0), spread=0.0, total=total, seed=9
    )

    ab_sender = make_alternating_bit_sender(timeout_period=2.5)
    ab_receiver = make_alternating_bit_receiver()
    ab_result = run_transfer(
        ab_sender,
        ab_receiver,
        GreedySource(total),
        forward=fifo_link(),
        reverse=fifo_link(),
        seed=9,
    )

    def top(counter, k=4):
        return ", ".join(
            f"{size}x{count}" for size, count in counter.most_common(k)
        )

    sr_singleton_share = sr_sizes[1] / sum(sr_sizes.values())
    gbn_mode_size = gbn_sizes.most_common(1)[0][0]
    ab_throughput = ab_result.throughput

    rows = [
        ("selective-repeat corner", "eager acks + reorder", top(sr_sizes),
         f"{sr_singleton_share:.0%} singletons"),
        ("go-back-N corner", "counting(8) + in-order", top(gbn_sizes),
         f"modal block = {gbn_mode_size}"),
        ("alternating bit", "w=1, domain 2w=2", "all (b,b) singletons",
         f"throughput {ab_throughput:.3f} ≈ 1/RTT = 0.5"),
    ]
    table = render_table(
        ["corner", "configuration", "block sizes (size x count)", "observation"],
        rows,
        title="degenerate configurations of the block-ack protocol",
    )

    reproduced = (
        sr_singleton_share > 0.35
        and gbn_mode_size >= 8
        and ab_result.completed
        and ab_result.in_order
        and abs(ab_throughput - 0.5) < 0.02
    )
    findings = [
        f"reorder + eager acks drives the receiver toward singleton (v,v) "
        f"blocks ({sr_singleton_share:.0%}) — the selective-repeat corner",
        f"smooth traffic + batching yields cumulative blocks of size "
        f"{gbn_mode_size} — the go-back-N corner; both are one policy knob apart",
        "w=1 with the 2-value wire domain IS the alternating-bit protocol: "
        f"correct transfer at {ab_throughput:.3f} msg/tu (stop-and-wait bound 0.5)",
    ]
    return ExperimentResult(
        exp_id="E11",
        title="Special cases: SR, GBN, and alternating bit as corners",
        claim=EXPERIMENT.claim,
        table=table,
        data={
            "sr_singleton_share": sr_singleton_share,
            "gbn_mode_size": gbn_mode_size,
            "ab_throughput": ab_throughput,
        },
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E11",
    title="Prior protocols are degenerate block-ack configurations",
    claim=(
        "Section VI: selective repeat and go-back-N are special cases of "
        "block acknowledgment ((v,v)-only and cumulative-only acks); the "
        "window protocol generalizes the alternating-bit protocol (w = 1)."
    ),
    run=run,
)
