"""E12 — ablation: the timeout period's safety margin is load-bearing.

Claim (Section II): "the correctness of the protocol requires that at
most one copy of each data message or its acknowledgment is in transit at
any instant.  Thus, the timeout period should be chosen large enough to
guarantee that a data message is resent only when the last copy of this
message or its acknowledgment is lost" — and (Section VI) accurate
timeouts are a *requirement* of any bounded-number protocol tolerating
loss and disorder.

Sweep: scale the sender's timeout period by a factor ``f`` of the
provably safe bound, for two senders over mod-2w wire numbers:

* ``simple`` (retransmit ``na`` only, the paper's guard) — at ``f >= 1``
  every transfer is correct; below the bound, duplicate copies coexist in
  flight, stale acknowledgments decode onto live sequence numbers, and
  transfers waste transmissions massively and eventually fail: the
  period *is* the correctness argument, not a tuning knob;
* ``aggressive`` (retransmit any expired message, ignoring the paper's
  ``¬rcvd[i]`` conjunct) — broken **even at safe periods**: a buffered
  out-of-order message gets retransmitted, its eventual block ack
  coexists with the stray copy (assertion 8 violated), and over bounded
  wire numbers the resulting stale singleton acks misdecode.  The two
  halves of the paper's guard — the period and the receiver-state
  conjunct — are each independently load-bearing.

Expected shape: ``simple`` clean at ``f >= 1`` and failing below;
``aggressive`` showing failures at every factor, safe period included.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    lossy_link,
    protocol_config,
    run_grid,
)
from repro.protocols.blockack import safe_timeout_period

__all__ = ["EXPERIMENT"]

WINDOW = 6
LOSS = 0.08
SPREAD = 1.2
FACTORS = (0.25, 0.5, 0.75, 1.0, 1.5)


def _config(mode: str, factor: float, total: int, seed: int):
    link = lossy_link(LOSS, SPREAD)
    safe = safe_timeout_period(
        link.delay.max_delay, link.delay.max_delay, 0.0, margin=0.05
    )
    return protocol_config(
        "blockack",
        WINDOW,
        total,
        link,
        lossy_link(LOSS, SPREAD),
        seed,
        max_time=50_000.0,
        bounded_wire=True,
        timeout_mode=mode,
        timeout_period=factor * safe,
    )


def run(quick: bool = False) -> ExperimentResult:
    factors = (0.25, 1.0) if quick else FACTORS
    seeds = (5, 6) if quick else (5, 6, 7, 8)
    total = 200 if quick else 500

    configs = [
        _config(mode, factor, total, seed)
        for mode in ("simple", "aggressive")
        for factor in factors
        for seed in seeds
    ]
    results = iter(run_grid(configs))

    rows = []
    data = {}
    for mode in ("simple", "aggressive"):
        for factor in factors:
            failures = 0
            redundant = 0
            efficiency = 0.0
            for _seed in seeds:
                result = next(results)
                if not (result.completed and result.in_order):
                    failures += 1
                redundant += result.receiver_stats["redundant"]
                efficiency += result.goodput_efficiency
            efficiency /= len(seeds)
            rows.append(
                (
                    mode,
                    factor,
                    f"{failures}/{len(seeds)}",
                    redundant,
                    efficiency,
                )
            )
            data[f"{mode}/{factor}"] = {
                "failures": failures,
                "redundant": redundant,
                "efficiency": efficiency,
            }

    table = render_table(
        ["timeout mode", "factor of safe period", "failed transfers",
         "redundant receptions", "efficiency"],
        rows,
        title=(
            f"timeout-period ablation over mod-2w wire numbers "
            f"(w={WINDOW}, loss={LOSS}, jitter={SPREAD})"
        ),
    )

    safe_factors = [f for f in factors if f >= 1.0]
    unsafe_factors = [f for f in factors if f < 1.0]
    paper_guard_clean_when_safe = all(
        data[f"simple/{f}"]["failures"] == 0 for f in safe_factors
    )
    premature_visible = all(
        data[f"simple/{f}"]["failures"] > 0
        or data[f"simple/{f}"]["redundant"] > 0
        for f in unsafe_factors
    )
    guard_matters_independently = any(
        data[f"aggressive/{f}"]["failures"] > 0
        or data[f"aggressive/{f}"]["redundant"] > 0
        for f in safe_factors
    )
    reproduced = (
        paper_guard_clean_when_safe
        and premature_visible
        and guard_matters_independently
    )
    findings = [
        "with the paper's guard (simple mode) and a period at or above the "
        "safe bound, every transfer completes in order — the derived bound "
        "is sufficient",
        "below the safe period, duplicate copies coexist in flight "
        "(assertion 8's at-most-one-copy clause breaks): transfers waste "
        "transmissions and fail outright over bounded wire numbers",
        "dropping the guard's ¬rcvd[i] conjunct (aggressive mode) breaks "
        "transfers even at SAFE periods: buffered messages get "
        "retransmitted, their block acks coexist with the stray copies, and "
        "stale singleton acks misdecode — the period and the receiver-state "
        "conjunct are each independently load-bearing, exactly why Section "
        "VI calls accurate timeouts a requirement of such protocols",
    ]
    return ExperimentResult(
        exp_id="E12",
        title="Timeout-period safety-margin ablation",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E12",
    title="Premature timeouts violate the one-copy-in-transit requirement",
    claim=(
        "Sections II/VI: the timeout period must exceed the maximum "
        "round-trip message lifetime; accurate timeouts are a requirement "
        "of all practical bounded-number protocols tolerating loss and "
        "disorder."
    ),
    run=run,
)
