"""E13 — Section VI extension: aggressive reuse of acknowledged positions.

Claim (§VI, concluding remarks): "since block acknowledgment provides an
exact acknowledgment of those messages that have been received, this
opens up the possibility of utilizing any positions that have been
acknowledged for transmission of new messages, even though some earlier
messages in different positions have not yet been acknowledged. ...
Clearly, there is some tradeoff here between the added complexity versus
the potential gain in performance by more aggressive reuse of
acknowledgment message positions."

The extension (implemented as ``lookahead = K`` on the sender and the
numbering): the send guard relaxes from ``ns < na + w`` to "fewer than
``w`` unacknowledged AND ``ns < na + K*w``", so acknowledged positions
ahead of a stalled ``na`` are reused for new messages.  The wire-number
cost is exact and measurable: the live range widens to ``K*w`` on each
side of ``nr``, so the safe domain grows from ``2w`` to ``2*K*w``.

Where the gain lives: acknowledged holes ahead of ``na`` only form when
*acknowledgments* are lost or reordered while data flows — so the
experiment uses a clean forward channel, a lossy reverse channel, and
batched acks (losing one ack strands a whole block).  Expected shape:
K = 2 yields a consistent but modest goodput gain over K = 1, saturating
quickly with K — the measured form of the paper's "some tradeoff"
caution.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize_replications
from repro.analysis.report import render_table
from repro.channel.delay import ConstantDelay
from repro.channel.impairments import BernoulliLoss
from repro.experiments.common import (
    SEEDS,
    SEEDS_QUICK,
    ExperimentResult,
    ExperimentSpec,
    protocol_config,
    run_grid,
)
from repro.perf.sweep import execute_config
from repro.protocols.ack_policy import CountingAckPolicy
from repro.sim.runner import LinkSpec

__all__ = ["EXPERIMENT", "run_with_lookahead"]

WINDOW = 16
ONE_WAY = 5.0  # long link: stalls are RTT-scale, so reuse has room to pay
ACK_BATCH = 8


def _config(lookahead: int, ack_loss: float, total: int, seed: int):
    return protocol_config(
        "blockack",
        WINDOW,
        total,
        LinkSpec(delay=ConstantDelay(ONE_WAY)),
        LinkSpec(delay=ConstantDelay(ONE_WAY), loss=BernoulliLoss(ack_loss)),
        seed,
        max_time=1_000_000.0,
        bounded_wire=True,
        lookahead=lookahead,
        timeout_mode="per_message_safe",
        ack_policy=CountingAckPolicy(ACK_BATCH, 1.0),
    )


def run_with_lookahead(
    lookahead: int, ack_loss: float, total: int, seed: int
):
    """One reuse-factor run (kept for tests and interactive use)."""
    return execute_config(_config(lookahead, ack_loss, total, seed))


def run(quick: bool = False) -> ExperimentResult:
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 300 if quick else 800
    ack_losses = (0.2,) if quick else (0.1, 0.2, 0.3)
    lookaheads = (1, 2, 4)

    configs = [
        _config(lookahead, ack_loss, total, seed)
        for ack_loss in ack_losses
        for lookahead in lookaheads
        for seed in seeds
    ]
    results = iter(run_grid(configs))

    rows = []
    data = {}
    for ack_loss in ack_losses:
        for lookahead in lookaheads:
            metrics = summarize_replications(
                [next(results) for _ in seeds],
                metrics=("throughput",),
            )
            domain = 2 * lookahead * WINDOW
            rows.append(
                (
                    ack_loss,
                    f"K={lookahead}",
                    domain,
                    metrics["throughput"].mean,
                    f"±{metrics['throughput'].ci95:.3f}",
                )
            )
            data[(ack_loss, lookahead)] = metrics["throughput"].mean

    table = render_table(
        ["ack loss", "reuse factor", "wire domain", "goodput", "95% CI"],
        rows,
        title=(
            f"position reuse on a long link (w={WINDOW}, one-way {ONE_WAY}, "
            f"forward clean, acks batched by {ACK_BATCH})"
        ),
    )

    gains = {
        p: data[(p, 2)] / data[(p, 1)] for p in ack_losses
    }
    gain_exists = all(g > 1.02 for g in gains.values())
    gain_modest = all(g < 1.35 for g in gains.values())
    saturates = all(
        data[(p, 4)] <= data[(p, 2)] * 1.05 for p in ack_losses
    )
    reproduced = gain_exists and gain_modest and saturates
    findings = [
        "reusing acknowledged positions ahead of a stalled na yields a real "
        "but modest goodput gain: "
        + ", ".join(f"{(g - 1):.0%} at ack-loss {p}" for p, g in gains.items()),
        "the gain saturates by K=2: once the occupancy bound (w unacked) "
        "binds, further sequence lookahead buys nothing",
        f"the measured cost is exact: the safe wire domain grows linearly "
        f"with K ({2 * WINDOW} -> {4 * WINDOW} -> {8 * WINDOW}) — the "
        "paper's 'tradeoff between the added complexity versus the "
        "potential gain', quantified",
    ]
    return ExperimentResult(
        exp_id="E13",
        title="Section VI extension: aggressive position reuse",
        claim=EXPERIMENT.claim,
        table=table,
        data={f"{p}/{k}": v for (p, k), v in data.items()},
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E13",
    title="Position reuse: the Section VI 'more aggressive' window",
    claim=(
        "Section VI: exact block acknowledgment permits reusing "
        "acknowledged positions for new messages before earlier messages "
        "are acknowledged, trading protocol complexity (and wire-number "
        "budget) for performance."
    ),
    run=run,
)
