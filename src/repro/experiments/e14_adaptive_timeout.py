"""E14 — adaptive retransmission under injected faults.

The paper's Section IV "sophisticated timeouts" assume the timeout
period is a known constant.  Jain's *Divergence of Timeout Algorithms
for Packet Retransmissions* (PAPERS.md) shows fixed timers diverge when
the channel's behavior drifts, and the self-stabilizing ARQ line of work
(Dolev et al., PAPERS.md) motivates surviving transient endpoint
faults.  This experiment stresses both extensions at once and checks
they never compromise the paper's correctness argument.

Scenario, per seed: a 2% Bernoulli-lossy jittered link in each
direction, plus a scripted *brownout* (forward loss probability ramping
to 50% and back), sporadic frame corruption on the data channel, and one
mid-run sender crash/restart that drops all volatile state (timers, RTT
estimates, retransmission bookkeeping) and resumes from the durable
window snapshot.  The block-ack sender (``per_message_safe`` mode) runs
twice on the identical fault trace:

* **fixed** — the paper's constant provably-safe timeout period;
* **adaptive** — Jacobson/Karels RTT estimation with Karn's rule,
  exponential backoff with cap, and a retry budget that degrades the
  window before declaring the link dead
  (:mod:`repro.robustness`).  The estimated RTO is floored at the same
  provably-safe period, so adaptivity only ever *lengthens* timers —
  assertion 8's at-most-one-copy clause holds by the same argument as
  for the fixed timer.

Expected shape: both variants deliver every payload exactly once, in
order, with **zero** :class:`~repro.verify.runtime.InvariantMonitor`
violations (invariant clauses 6, 7, and 8 checked on every channel
event, faults included); the crash/restart is actually injected in every
run; and the adaptive sender fires *strictly fewer* timeouts than the
fixed-timeout baseline on every seed — backoff stops the fixed timer's
futile rapid-fire retransmissions into a browned-out channel.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.channel.impairments import FrameCorruption
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    SEEDS,
    SEEDS_QUICK,
    lossy_link,
    protocol_config,
    run_grid,
)
from repro.robustness.controller import AdaptiveConfig
from repro.robustness.faults import CrashRestart, FaultPlan

__all__ = ["EXPERIMENT"]

WINDOW = 8
LOSS = 0.02  # always-on Bernoulli loss, each direction
CORRUPTION = 0.01  # forward frame-corruption probability
#: forward loss probability ramps 0 -> 50% -> 0 over this window
BROWNOUT = ((25.0, 0.0), (35.0, 0.5), (45.0, 0.5), (55.0, 0.0))
CRASH_AT = 60.0  # sender crashes mid-transfer...
OUTAGE = 10.0  # ...and restarts from its durable snapshot


def _fault_plan(seed: int) -> FaultPlan:
    """The identical scripted fault trace both variants run against."""
    return FaultPlan(
        forward_corruption=FrameCorruption(CORRUPTION),
        forward_brownout=BROWNOUT,
        crashes=(CrashRestart(at=CRASH_AT, outage=OUTAGE, endpoint="sender"),),
        seed=seed,
    )


def _config(adaptive, total: int, seed: int):
    return protocol_config(
        "blockack",
        WINDOW,
        total,
        lossy_link(LOSS),
        lossy_link(LOSS),
        seed,
        max_time=50_000.0,
        monitor_invariants=True,
        fault_plan=_fault_plan(seed),
        timeout_mode="per_message_safe",
        adaptive=adaptive,
    )


def run(quick: bool = False) -> ExperimentResult:
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 300 if quick else 600

    variants = (("fixed", None), ("adaptive", AdaptiveConfig()))
    configs = [
        _config(config, total, seed)
        for seed in seeds
        for _, config in variants
    ]
    results = iter(run_grid(configs))

    rows = []
    data = {}
    for seed in seeds:
        for label, config in variants:
            result = next(results)
            violations = len(result.monitor.violations)
            faults = result.fault_stats
            row = {
                "ok": result.completed and result.in_order,
                "timeouts": result.sender_stats["timeouts_fired"],
                "retransmissions": result.sender_stats["retransmissions"],
                "duration": result.duration,
                "violations": violations,
                "crashes": faults["crashes"],
                "restarts": faults["restarts"],
                "corrupted": faults["corrupt_forward"],
            }
            if config is not None:
                row["adaptive"] = result.sender_stats["adaptive"]
            data[f"{label}/{seed}"] = row
            rows.append(
                (
                    seed,
                    label,
                    "yes" if row["ok"] else "NO",
                    row["timeouts"],
                    row["retransmissions"],
                    f"{row['duration']:.1f}",
                    violations,
                    f"{faults['crashes']}/{faults['restarts']}",
                    faults["corrupt_forward"],
                )
            )

    table = render_table(
        ["seed", "timer", "delivered in order", "timeouts fired",
         "retransmissions", "duration (tu)", "invariant violations",
         "crash/restart", "corrupt frames"],
        rows,
        title=(
            f"block ack (per_message_safe, w={WINDOW}) under {LOSS:.0%} loss "
            f"+ brownout to 50% + frame corruption + sender crash at "
            f"t={CRASH_AT:.0f}"
        ),
    )

    all_delivered = all(row["ok"] for row in data.values())
    zero_violations = all(row["violations"] == 0 for row in data.values())
    faults_injected = all(
        row["crashes"] == 1 and row["restarts"] == 1 for row in data.values()
    )
    adaptive_strictly_fewer = all(
        data[f"adaptive/{seed}"]["timeouts"] < data[f"fixed/{seed}"]["timeouts"]
        for seed in seeds
    )
    reproduced = (
        all_delivered
        and zero_violations
        and faults_injected
        and adaptive_strictly_fewer
    )
    findings = [
        "every run — fixed and adaptive, every seed — delivers all payloads "
        "exactly once in order despite the brownout, frame corruption, and a "
        "mid-run sender crash that wipes every timer and RTT estimate",
        "the invariant monitor records zero violations of clauses 6/7/8 in "
        "every run: flooring the adaptive RTO at the provably safe period "
        "means estimation and backoff only ever lengthen timers, so the "
        "paper's at-most-one-copy argument survives adaptivity and faults",
        "the adaptive sender fires strictly fewer timeouts than the fixed "
        "baseline on every seed: exponential backoff stops the futile "
        "rapid-fire retransmissions a constant timer pours into a "
        "browned-out channel — Jain's divergence argument, observed",
        "recovery after the crash needs no special machinery: the restart "
        "re-arms one timer per outstanding message, and a full period has "
        "elapsed since each one's last transmission, so the re-arm "
        "satisfies the same timeout guard as any normal expiry",
    ]
    return ExperimentResult(
        exp_id="E14",
        title="Adaptive retransmission under injected faults",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E14",
    title="Adaptive RTO + backoff survive brownouts, corruption, and crashes",
    claim=(
        "Extension of Section IV (motivated by Jain's timeout-divergence "
        "result and self-stabilizing ARQ, PAPERS.md): estimated RTO with "
        "backoff, floored at the paper's safe period, keeps every "
        "correctness invariant under injected faults while firing strictly "
        "fewer timeouts than the fixed-period timer."
    ),
    run=run,
)
