"""E15 — multi-flow fairness over one shared lossy link.

The paper analyses one sender/receiver pair on a dedicated channel.
Deployed window protocols never get that luxury: many concurrent flows
multiplex one link, and the questions that matter become *aggregate*
goodput, how evenly the link's capacity divides across flows (Jain's
fairness index, PAPERS.md), and whether per-flow correctness survives
the sharing.  This experiment runs N identical greedy flows of each
protocol over one shared forward/reverse link pair
(:mod:`repro.sim.host` / :mod:`repro.channel.mux`) for a fixed time
horizon and sweeps the flow count against the link's loss rate.

Measurement model: every flow offers unlimited demand (greedy source,
per-flow payload budget far above what the horizon admits), so the run
ends at the horizon with each flow mid-transfer.  Per-flow delivery
counts at cutoff are the capacity shares; Jain's index over them is the
fairness verdict.  Because flows never finish, correctness is checked
as *exactly-once in-order prefix* delivery per flow (each flow's
delivered payloads must be exactly its submitted prefix) plus a
per-flow :class:`~repro.verify.runtime.InvariantMonitor` on the flow's
demultiplexed ports — the paper's invariant 6 ∧ 7 ∧ 8 is a per-flow
statement and must hold for every flow independently.

Expected shape: all three protocols keep every flow's prefix
exactly-once in-order with zero invariant violations at every flow
count and loss rate — multiplexing is correctness-transparent.  On the
performance side, block ack and selective repeat sustain their
aggregate goodput as loss grows while go-back-N's collapses (its
cumulative-ack redundancy is amplified: every loss burns shared link
capacity on retransmitting the whole window), and the independent
per-flow timers divide the link nearly evenly — Jain fairness stays
near 1 for block ack and selective repeat across the sweep.
"""

from __future__ import annotations

import os

from repro.analysis.report import render_table
from repro.analysis.stats import summarize
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    SEEDS,
    SEEDS_QUICK,
    lossy_link,
    protocol_config,
    run_grid,
)

__all__ = ["EXPERIMENT"]

PROTOCOLS = ("blockack", "gobackn", "selective-repeat")
WINDOW = 6
#: per-flow payload budget, far above what the horizon admits: every
#: flow still has demand when the run is cut off, so delivery counts at
#: the horizon are capacity shares, not completion artifacts
OFFERED = 5_000
HORIZON = 150.0
HORIZON_QUICK = 60.0
FLOW_COUNTS = (2, 4, 8)
FLOW_COUNTS_QUICK = (2, 4)
LOSS_RATES = (0.0, 0.05, 0.1)
LOSS_RATES_QUICK = (0.0, 0.1)


def _config(protocol: str, flows: int, loss: float, seed: int, horizon: float):
    return protocol_config(
        protocol,
        WINDOW,
        OFFERED,
        lossy_link(loss),
        lossy_link(loss),
        seed,
        max_time=horizon,
        monitor_invariants=True,
        flows=flows,
    )


def _flow_counts(quick: bool):
    """Sweep flow counts, or the single count pinned by ``REPRO_FLOWS``.

    The CLI's ``blockack run e15 --flows N`` sets the environment
    variable; pinning keeps the loss sweep but runs every cell at
    exactly N concurrent flows.
    """
    pinned = os.environ.get("REPRO_FLOWS", "")
    if pinned:
        count = int(pinned)
        if count < 2:
            raise ValueError(
                f"REPRO_FLOWS must be >= 2 for the fairness sweep, "
                f"got {count}"
            )
        return (count,)
    return FLOW_COUNTS_QUICK if quick else FLOW_COUNTS


def run(quick: bool = False) -> ExperimentResult:
    seeds = SEEDS_QUICK if quick else SEEDS
    flow_counts = _flow_counts(quick)
    loss_rates = LOSS_RATES_QUICK if quick else LOSS_RATES
    horizon = HORIZON_QUICK if quick else HORIZON

    cells = [
        (protocol, flows, loss)
        for protocol in PROTOCOLS
        for flows in flow_counts
        for loss in loss_rates
    ]
    configs = [
        _config(protocol, flows, loss, seed, horizon)
        for (protocol, flows, loss) in cells
        for seed in seeds
    ]
    results = iter(run_grid(configs))

    rows = []
    data = {}
    for protocol, flows, loss in cells:
        goodputs, fairnesses, retransmits = [], [], []
        ordered = True
        violations = 0
        for _ in seeds:
            result = next(results)
            goodputs.append(result.delivered / result.duration)
            fairnesses.append(result.fairness)
            per_flow_retx = [
                row["sender_stats"]["retransmissions"]
                for row in result.per_flow
            ]
            retransmits.append(sum(per_flow_retx) / len(per_flow_retx))
            ordered = ordered and all(
                row["ordered_prefix"] for row in result.per_flow
            )
            violations += sum(row["violations"] for row in result.per_flow)
        goodput = summarize(goodputs)
        fairness = summarize(fairnesses)
        data[f"{protocol}/f{flows}/loss{loss}"] = {
            "goodput": goodput.mean,
            "goodput_ci95": goodput.ci95,
            "fairness": fairness.mean,
            "fairness_min": fairness.minimum,
            "retransmissions_per_flow": sum(retransmits) / len(retransmits),
            "ordered": ordered,
            "violations": violations,
        }
        rows.append(
            (
                protocol,
                flows,
                f"{loss:.0%}",
                str(goodput),
                f"{fairness.mean:.3f}",
                f"{fairness.minimum:.3f}",
                f"{sum(retransmits) / len(retransmits):.1f}",
                "yes" if ordered else "NO",
                violations,
            )
        )

    table = render_table(
        ["protocol", "flows", "loss", "aggregate goodput (/tu)",
         "fairness (mean)", "fairness (min)", "retx per flow",
         "prefix in order", "invariant violations"],
        rows,
        title=(
            f"N greedy flows sharing one lossy link pair for {horizon:.0f}tu "
            f"(w={WINDOW} per flow, {len(seeds)} seeds)"
        ),
    )

    all_ordered = all(cell["ordered"] for cell in data.values())
    zero_violations = all(cell["violations"] == 0 for cell in data.values())
    lossy = [loss for loss in loss_rates if loss > 0]
    blockack_beats_gobackn = all(
        data[f"blockack/f{flows}/loss{loss}"]["goodput"]
        > data[f"gobackn/f{flows}/loss{loss}"]["goodput"]
        for flows in flow_counts
        for loss in lossy
    )
    fair_protocols = ("blockack", "selective-repeat")
    fairness_high = all(
        data[f"{protocol}/f{flows}/loss{loss}"]["fairness_min"] >= 0.9
        for protocol in fair_protocols
        for flows in flow_counts
        for loss in loss_rates
    )
    reproduced = (
        all_ordered
        and zero_violations
        and blockack_beats_gobackn
        and fairness_high
    )
    findings = [
        "multiplexing is correctness-transparent: every flow in every cell "
        "delivers an exactly-once in-order prefix of its stream, and the "
        "per-flow invariant monitors (clauses 6/7/8 on each flow's "
        "demultiplexed ports) record zero violations",
        "block ack sustains the highest aggregate goodput on every lossy "
        "shared-link cell; go-back-N's collapses as loss grows because "
        "every loss makes it re-send its whole window through capacity "
        "all flows are paying for",
        "independent per-flow timers divide the shared link nearly evenly: "
        "Jain fairness stays >= 0.9 for block ack and selective repeat at "
        "every flow count and loss rate — no flow starves another despite "
        "zero cross-flow coordination",
        "fairness needs no scheduler here because every flow runs the same "
        "window and timeout; per-flow scheduling for heterogeneous mixes "
        "is an open item (ROADMAP)",
    ]
    return ExperimentResult(
        exp_id="E15",
        title="Multi-flow fairness over a shared lossy link",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E15",
    title="N flows share one link: goodput, fairness, per-flow invariants",
    claim=(
        "Extension of the paper's single-pair model (fairness metric from "
        "Jain, PAPERS.md): N independent window-protocol flows multiplexed "
        "over one lossy link each keep exactly-once in-order delivery with "
        "zero per-flow invariant violations, block ack sustains the best "
        "aggregate goodput under loss, and uncoordinated per-flow timers "
        "split capacity near-evenly (Jain index >= 0.9)."
    ),
    run=run,
)
