"""E16 — self-stabilizing recovery from adversarial state corruption.

The paper's correctness argument (assertions 6 ∧ 7 ∧ 8) assumes endpoint
state evolves only through the protocol's own guarded actions.  The
self-stabilization literature (Dolev et al., PAPERS.md) asks the harder
question: what if state is *corrupted* — a cursor bit-flipped, an
acknowledgment record forged, an RTT estimator driven to infinity — while
the protocol keeps running?  This experiment injects exactly that, at
every mutable site of every protocol, and measures recovery.

Grid: protocol × corruption site × severity × seed.  At a fixed virtual
time mid-transfer a :class:`~repro.robustness.corruption.StateCorruption`
mutates live endpoint state through a seeded corruption model
(``bitflip`` / ``random`` / ``worst`` — see
:mod:`repro.robustness.corruption`); the guard/repair hooks
(``stabilize()``, PROTOCOL.md §9) plus the fault plan's convergence
watchdog then have to drive the system back.  A
:class:`~repro.verify.runtime.StabilizationMonitor` renders the verdict:

* ``converged`` — transfer completed, in order, final state invariant-clean;
* ``degraded`` — recovered, but the corruption cost user-visible damage
  (only reachable by corrupting payload *values*, which no windowing
  protocol can detect — the argument for end-to-end checksums);
* ``diverged`` — deadlock or a wedged final state: the repair rules lost.

Reported per cell: the verdict, time-to-reconvergence (virtual time from
the corruption to the last violation/repair), and **goodput retention** —
throughput relative to an uncorrupted baseline on the identical channel
schedule.  The block-ack sender runs with adaptive retransmission so the
``sender.rtt`` site corrupts a live estimator, not a stub.

Expected shape: every cell fires its corruption and **no cell diverges**;
every window/ack/rtt-site cell fully converges; payload-value corruption
is the only class that may degrade.  Goodput retention stays high — the
repair rules only demote (retransmit a little more), never stall.
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.report import render_table
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    SEEDS,
    SEEDS_QUICK,
    lossy_link,
    protocol_config,
    run_grid,
)
from repro.robustness.controller import AdaptiveConfig
from repro.robustness.corruption import SEVERITIES, SITES, StateCorruption
from repro.robustness.faults import FaultPlan

__all__ = ["EXPERIMENT"]

WINDOW = 8
LOSS = 0.02  # always-on Bernoulli loss, each direction
CORRUPT_AT = 40.0  # virtual time of the corruption event, mid-transfer

#: the five protocols of the comparison suite; block ack runs adaptive so
#: the sender.rtt site hits a live estimator
PROTOCOLS = (
    ("blockack", {"timeout_mode": "per_message_safe", "adaptive": AdaptiveConfig()}),
    ("blockack-bounded", {}),
    ("gobackn", {}),
    ("selective-repeat", {}),
    ("tcp-sack", {}),
)

#: sites whose corruption must fully converge (payload *values* are the
#: one thing no windowing protocol can repair — see module docstring)
LOSSLESS_SITES = tuple(s for s in SITES if s != "sender.payloads")


def _fault_plan(site: str, severity: str, seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        corruptions=(
            StateCorruption(at=CORRUPT_AT, site=site, severity=severity),
        ),
    )


def _config(name, kwargs, total, seed, fault_plan=None):
    return protocol_config(
        name,
        WINDOW,
        total,
        lossy_link(LOSS),
        lossy_link(LOSS),
        seed,
        max_time=50_000.0,
        fault_plan=fault_plan,
        **kwargs,
    )


def run(quick: bool = False) -> ExperimentResult:
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 240 if quick else 600

    # clean baselines first (goodput retention denominators), then the
    # corruption grid, as one flat sweep
    baseline_configs = [
        _config(name, kwargs, total, seed)
        for name, kwargs in PROTOCOLS
        for seed in seeds
    ]
    grid_configs = [
        _config(name, kwargs, total, seed, _fault_plan(site, severity, seed))
        for name, kwargs in PROTOCOLS
        for site in SITES
        for severity in SEVERITIES
        for seed in seeds
    ]
    results = run_grid(baseline_configs + grid_configs)

    baseline_throughput = {}
    cursor = iter(results)
    for name, _ in PROTOCOLS:
        for seed in seeds:
            baseline_throughput[(name, seed)] = next(cursor).throughput

    data = {}
    for name, _ in PROTOCOLS:
        for site in SITES:
            for severity in SEVERITIES:
                for seed in seeds:
                    result = next(cursor)
                    stab = result.stabilization
                    retention = (
                        result.throughput / baseline_throughput[(name, seed)]
                    )
                    data[f"{name}/{site}/{severity}/{seed}"] = {
                        "verdict": stab["verdict"],
                        "corruptions": stab["corruptions"],
                        "repairs": stab["repairs"],
                        "reconvergence_time": stab["reconvergence_time"],
                        "goodput_retention": retention,
                        "completed": result.completed,
                        "in_order": result.in_order,
                        "duration": result.duration,
                    }

    def cells(name, site, severity):
        return [data[f"{name}/{site}/{severity}/{seed}"] for seed in seeds]

    def render_cell(name, site, severity):
        rows = cells(name, site, severity)
        verdicts = sorted({row["verdict"] for row in rows})
        reconv = mean(row["reconvergence_time"] or 0.0 for row in rows)
        retention = mean(row["goodput_retention"] for row in rows)
        return f"{'|'.join(verdicts)} dt={reconv:.1f} g={retention:.2f}"

    table_rows = [
        (name, site)
        + tuple(render_cell(name, site, severity) for severity in SEVERITIES)
        for name, _ in PROTOCOLS
        for site in SITES
    ]
    table = render_table(
        ["protocol", "corrupted site"] + list(SEVERITIES),
        table_rows,
        title=(
            f"state corruption at t={CORRUPT_AT:.0f} (w={WINDOW}, "
            f"{LOSS:.0%} loss): verdict, mean reconvergence time (tu), "
            f"mean goodput retention vs clean baseline"
        ),
    )

    every_cell_fired = all(row["corruptions"] >= 1 for row in data.values())
    no_diverged = all(row["verdict"] != "diverged" for row in data.values())
    lossless_converged = all(
        data[f"{name}/{site}/{severity}/{seed}"]["verdict"] == "converged"
        for name, _ in PROTOCOLS
        for site in LOSSLESS_SITES
        for severity in SEVERITIES
        for seed in seeds
    )
    reproduced = every_cell_fired and no_diverged and lossless_converged

    worst_retention = min(
        row["goodput_retention"]
        for key, row in data.items()
        if row["verdict"] == "converged"
    )
    degraded_cells = sorted(
        key for key, row in data.items() if row["verdict"] == "degraded"
    )
    findings = [
        "no cell diverges: every protocol, corrupted at every site under "
        "every severity preset (including worst-case adversarial values), "
        "recovers without deadlock — the witness-authoritative repair "
        "rules plus the "
        "convergence watchdog restore assertions 6/7/8 from any injected "
        "state",
        "window-cursor, ack-record, and RTT-estimator corruption always "
        "fully converges: the payload store is the witness (a held payload "
        "proves its number unacknowledged), so repairs never forge "
        "authority and spurious retransmissions are absorbed as duplicates",
        f"payload-value corruption is the only degradation channel "
        f"({len(degraded_cells)} of {len(data)} cells): a mutated payload "
        "is indistinguishable from real data to any windowing protocol — "
        "the classical argument for end-to-end integrity checks, "
        "reproduced by injection",
        f"goodput retention stays at {worst_retention:.2f} or better on "
        "every converged cell: recovery costs a handful of duplicate "
        "retransmissions and at most a watchdog period of silence, not a "
        "stall",
    ]
    return ExperimentResult(
        exp_id="E16",
        title="Self-stabilizing recovery from adversarial state corruption",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E16",
    title="State corruption: every protocol reconverges, none diverge",
    claim=(
        "Extension beyond the paper (motivated by self-stabilization, "
        "Dolev et al., PAPERS.md): with guard/repair rules that treat "
        "the payload stores as the ledger of authority and a convergence "
        "watchdog, all "
        "five protocols recover from adversarial corruption of window "
        "cursors, ack records, payload stores, and RTT state — "
        "reconverging to the paper's invariant instead of deadlocking."
    ),
    run=run,
)
