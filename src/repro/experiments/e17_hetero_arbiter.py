"""E17 — heterogeneous flows on a capacity-limited link: scheduling matters.

E15 showed that *identical* flows share a link fairly with zero
coordination — every flow runs the same window and timeout, so their
demands are symmetric and no scheduler is needed.  This experiment
breaks the symmetry twice, the way a real bottleneck does:

* the flows are **heterogeneous** — same protocol (block ack), but
  window sizes differ (:func:`~repro.sim.host.mixed_flows`), so the
  large-window flow *offers* several times more traffic per RTT than
  the small-window one;
* the link is **capacity-limited** — a send-side
  :class:`~repro.channel.arbiter.LinkArbiter` (token bucket, ``rate``
  frames per unit time) gates the shared forward channel, so the flows
  genuinely compete for frames instead of transmitting independently.

The sweep crosses link capacity with the arbiter's per-flow scheduler
(``fifo`` — global arrival order; ``wrr``/``drr`` — round-robin
variants), against an uncapacitated baseline of the same flow mix.
Each cell reports per-flow goodput, Jain's fairness index, goodput
retention versus the baseline (how much of the unconstrained rate the
bottleneck admits), and the arbiter's queue-wait/drop accounting.

Expected shape: without capacity limits the window sizes alone skew
goodput (Jain well below 1 — a window-16 flow simply offers ~4x a
window-4 flow).  A FIFO bottleneck makes this *worse*: arrival order is
demand order, so the aggressive flow captures the link.  DRR restores
per-flow fairness at the same capacity — equal weights give each
backlogged flow an equal frame share regardless of how hard it pushes —
so ``drr`` Jain >= ``fifo`` Jain on every finite-capacity cell, at a
small aggregate-goodput cost at most.  One nuance: DRR equalizes only
among *backlogged* flows (it is work-conserving, i.e. max-min fair).
At generous capacities the small-window flow is window-limited, not
link-limited — it simply cannot fill its share — and DRR correctly
hands the slack to the big flow, so Jain dips below 1 from demand
asymmetry, not scheduler unfairness.  The >= 0.9 fairness bar is
therefore checked at the *tightest* rate, where the link is the
binding constraint for every flow.  Every flow keeps exactly-once
in-order prefix delivery in every cell: scheduling and droptail change
*when* frames travel, never *what* the protocol delivers.

Two modelling notes.  Correctness here is the ordered-prefix check, not
the invariant monitors: the paper's invariant 8 ("at most one live copy
in transit") assumes the channel's lifetime bound is the only delay,
and a saturated arbiter queue deliberately violates that assumption —
a timeout can fire while the original still waits in queue, which is a
*real* congestion phenomenon (spurious retransmission), not a protocol
bug.  For the same reason every cell pins an explicit generous
``timeout_period`` instead of deriving one from the channel lifetime;
the derived bound knows nothing about queueing delay.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.stats import summarize
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    SEEDS,
    SEEDS_QUICK,
    lossy_link,
    protocol_config,
    run_grid,
)
from repro.perf.sweep import sched_from_env

__all__ = ["EXPERIMENT"]

PROTOCOL = "blockack"
#: the heterogeneous window mix: one flow per entry, equal weights
MIX = (4, 8, 16)
MIX_QUICK = (4, 16)
#: per-flow payload budget far above what the horizon admits (E15's
#: measurement model: delivery counts at cutoff are capacity shares)
OFFERED = 5_000
HORIZON = 150.0
HORIZON_QUICK = 60.0
#: link capacities in frames per unit time; None is the uncapacitated
#: baseline the retention metric divides by.  With mean transit delay 1
#: the mix offers roughly sum(w)/2 frames per tu, so the finite rates
#: run the link from hard-saturated to lightly contended.
RATES = (None, 2.0, 4.0, 8.0)
RATES_QUICK = (None, 2.0, 6.0)
SCHEDULERS = ("fifo", "wrr", "drr")
SCHEDULERS_QUICK = ("fifo", "drr")
#: explicit timeout: generous versus the queueing delays the tightest
#: rate produces, so scheduling — not spurious-retransmission collapse —
#: dominates the comparison (see the module docstring)
TIMEOUT = 12.0


def _scheds(quick: bool):
    """The scheduler axis, or the one pinned by ``REPRO_SCHED``."""
    pinned = sched_from_env()
    if pinned is not None:
        return (pinned,)
    return SCHEDULERS_QUICK if quick else SCHEDULERS


def _config(mix, rate, sched, seed, horizon):
    return protocol_config(
        PROTOCOL,
        max(mix),  # nominal window (unused: flow_windows overrides)
        OFFERED,
        lossy_link(0.0),
        lossy_link(0.0),
        seed,
        max_time=horizon,
        flow_windows=mix,
        link_rate=rate,
        sched=sched,
        timeout_period=TIMEOUT,
    )


def run(quick: bool = False) -> ExperimentResult:
    seeds = SEEDS_QUICK if quick else SEEDS
    mix = MIX_QUICK if quick else MIX
    rates = RATES_QUICK if quick else RATES
    scheds = _scheds(quick)
    horizon = HORIZON_QUICK if quick else HORIZON

    # one baseline cell (rate=None: the scheduler never runs), then the
    # full rate x scheduler cross
    cells = [(None, "fifo")] + [
        (rate, sched) for rate in rates if rate is not None for sched in scheds
    ]
    configs = [
        _config(mix, rate, sched, seed, horizon)
        for (rate, sched) in cells
        for seed in seeds
    ]
    results = iter(run_grid(configs))

    # collect per-cell, keyed for the verdict pass; remember the
    # baseline's per-seed per-flow deliveries for the retention metric
    collected = {}
    baseline_flow_delivered = []  # [seed_index][flow] deliveries
    for rate, sched in cells:
        per_seed = [next(results) for _ in seeds]
        if rate is None:
            baseline_flow_delivered = [
                [row["delivered"] for row in result.per_flow]
                for result in per_seed
            ]
        collected[(rate, sched)] = per_seed

    rows = []
    data = {}
    for rate, sched in cells:
        per_seed = collected[(rate, sched)]
        goodputs, fairnesses, retentions, waits, drops = [], [], [], [], []
        ordered = True
        for seed_index, result in enumerate(per_seed):
            goodputs.append(result.delivered / result.duration)
            fairnesses.append(result.fairness)
            ordered = ordered and all(
                row["ordered_prefix"] for row in result.per_flow
            )
            base = baseline_flow_delivered[seed_index]
            retentions.append(
                min(
                    row["delivered"] / base[flow] if base[flow] else 1.0
                    for flow, row in enumerate(result.per_flow)
                )
            )
            if rate is not None:
                queue_rows = [row["queue_stats"] for row in result.per_flow]
                waits.append(max(q["mean_wait"] for q in queue_rows))
                drops.append(sum(q["dropped"] for q in queue_rows))
        goodput = summarize(goodputs)
        fairness = summarize(fairnesses)
        retention = summarize(retentions)
        label = "inf" if rate is None else f"{rate:g}"
        sched_label = "-" if rate is None else sched
        data[f"rate{label}/{sched_label}"] = {
            "goodput": goodput.mean,
            "fairness": fairness.mean,
            "fairness_min": fairness.minimum,
            "min_flow_retention": retention.mean,
            "max_mean_wait": max(waits) if waits else 0.0,
            "drops": sum(drops) if drops else 0,
            "ordered": ordered,
        }
        rows.append(
            (
                label,
                sched_label,
                str(goodput),
                f"{fairness.mean:.3f}",
                f"{fairness.minimum:.3f}",
                f"{retention.mean:.2f}",
                f"{max(waits):.2f}" if waits else "-",
                sum(drops) if drops else 0,
                "yes" if ordered else "NO",
            )
        )

    table = render_table(
        ["rate (/tu)", "sched", "aggregate goodput (/tu)", "fairness (mean)",
         "fairness (min)", "min flow retention", "worst mean wait (tu)",
         "drops", "prefix in order"],
        rows,
        title=(
            f"windows {'/'.join(str(w) for w in mix)} block-ack flows on a "
            f"rate-limited link for {horizon:.0f}tu ({len(seeds)} seeds)"
        ),
    )

    all_ordered = all(cell["ordered"] for cell in data.values())
    finite = [rate for rate in rates if rate is not None]
    have_drr = "drr" in scheds and "fifo" in scheds
    drr_ge_fifo = (not have_drr) or all(
        data[f"rate{rate:g}/drr"]["fairness"]
        >= data[f"rate{rate:g}/fifo"]["fairness"]
        for rate in finite
    )
    # the >= 0.9 bar applies only where the link binds every flow: at
    # generous rates the small-window flow is window-limited and
    # work-conserving DRR hands the slack to the big flow (max-min
    # fairness), so Jain < 1 there reflects demand asymmetry
    tightest = min(finite)
    drr_fair = ("drr" not in scheds) or (
        data[f"rate{tightest:g}/drr"]["fairness_min"] >= 0.9
    )
    reproduced = all_ordered and drr_ge_fifo and drr_fair
    findings = [
        "correctness survives the bottleneck: every flow in every cell — "
        "including hard-saturated FIFO ones — delivers an exactly-once "
        "in-order prefix; queueing and droptail change timing, never "
        "delivery semantics",
        "heterogeneity alone skews the share: even with no capacity limit "
        "the large-window flow out-delivers the small one, and a FIFO "
        "bottleneck amplifies that (arrival order is demand order, so the "
        "aggressive flow captures the link)",
        "deficit round-robin restores fairness at the same capacity: equal "
        "weights give each backlogged flow an equal frame share regardless "
        "of window size, so drr's Jain index meets or beats fifo's on "
        "every finite-rate cell and stays >= 0.9 at the tightest rate; at "
        "generous rates the small-window flow is window-limited and "
        "work-conserving drr hands the slack to the big flow (max-min "
        "fairness), so Jain relaxes by demand asymmetry there",
        "the paper's safe-timeout derivation assumes channel lifetime "
        "bounds all delay; arbiter queueing violates that, so saturated "
        "cells see spurious retransmissions — the experiment pins a "
        "generous explicit timeout, and the remaining retransmission "
        "traffic is the price of congestion, not a protocol bug",
    ]
    return ExperimentResult(
        exp_id="E17",
        title="Heterogeneous flows x link capacity x scheduler",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E17",
    title="Heterogeneous flows on a capacity-limited link (arbiter)",
    claim=(
        "Extension of the paper's shared-link model (fairness from Jain, "
        "bottleneck sharing from Ghaderi & Towsley, PAPERS.md): when "
        "flows with different window sizes compete for a capacity-limited "
        "link, FIFO service lets the large-window flow capture the "
        "bottleneck while deficit round-robin restores a near-even frame "
        "share (drr Jain >= fifo Jain at every capacity, >= 0.9 where the "
        "link binds every flow) — and exactly-once in-order prefix "
        "delivery holds in every cell."
    ),
    run=run,
)
