"""E1 — the Section-I motivating scenario.

Claim: with bounded sequence numbers and reorderable channels, a
cumulative-acknowledgment go-back-N protocol can be driven into a silent
safety violation by one delayed acknowledgment; the block-acknowledgment
protocol under the *same* schedule cannot, because an acknowledgment pair
``(m, n)`` never acknowledges anything outside ``m..n``.

Besides replaying the paper's exact scenario, this experiment runs a
randomized adversarial search (random loss/reorder schedules against the
naive go-back-N) and reports how frequently the violation is hit — showing
the scenario is not a knife-edge curiosity.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.report import render_table
from repro.core.window import SenderWindow
from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.verify.faulty import NaiveGbnReceiver, NaiveGbnSender
from repro.verify.scenarios import run_intro_scenario_blockack, run_intro_scenario_gbn

__all__ = ["EXPERIMENT", "random_search_gbn", "random_search_blockack"]


def random_search_gbn(
    trials: int, seed: int, window: int = 6, domain: int = 7
) -> int:
    """Count random loss/reorder schedules that break naive go-back-N.

    Each trial: the sender streams messages; in-flight acknowledgments sit
    in a bag from which delivery draws at random (reorder); data messages
    after the first full window are lost with probability 1/2.  A trial
    counts as a violation if the sender ever believes a message was
    delivered that the receiver never accepted.
    """
    violations = 0
    for trial in range(trials):
        rng = random.Random(seed * 10_007 + trial)
        sender = NaiveGbnSender(window, domain)
        receiver = NaiveGbnReceiver(domain)
        ack_bag: List[int] = []
        broken = False
        for _ in range(200):
            if sender.can_send and rng.random() < 0.7:
                true_seq, wire = sender.send_new()
                # data loss starts once the number space can wrap
                if true_seq >= domain and rng.random() < 0.5:
                    pass  # lost
                else:
                    ack = receiver.on_data(wire)
                    if ack is not None:
                        ack_bag.append(ack)
            if ack_bag and rng.random() < 0.5:
                wire_ack = ack_bag.pop(rng.randrange(len(ack_bag)))
                newly = sender.on_cumulative_ack(wire_ack)
                if any(seq not in receiver.accepted for seq in newly):
                    broken = True
                    break
        if broken:
            violations += 1
    return violations


def random_search_blockack(trials: int, seed: int, window: int = 6) -> int:
    """The same adversarial bag applied to block acknowledgments.

    The receiver behaviour is modelled faithfully: it acknowledges exactly
    the blocks it accepts, acks are delivered in random order, and data
    past the first window is lost with probability 1/2.  Counts runs where
    the sender's ``na`` overtakes the receiver's accept point — which the
    invariant proves impossible, so the expected count is zero.
    """
    violations = 0
    for trial in range(trials):
        rng = random.Random(seed * 20_011 + trial)
        sender = SenderWindow(window)
        receiver_nr = 0
        pending_block_lo = None
        ack_bag: List[tuple] = []
        for _ in range(200):
            if sender.can_send and rng.random() < 0.7:
                seq = sender.take_next()
                lost = seq >= 2 * window and rng.random() < 0.5
                if not lost and seq == receiver_nr:
                    if pending_block_lo is None:
                        pending_block_lo = receiver_nr
                    receiver_nr += 1
            if pending_block_lo is not None and rng.random() < 0.5:
                ack_bag.append((pending_block_lo, receiver_nr - 1))
                pending_block_lo = None
            if ack_bag and rng.random() < 0.5:
                lo, hi = ack_bag.pop(rng.randrange(len(ack_bag)))
                sender.apply_ack(lo, hi)
                if sender.na > receiver_nr:
                    violations += 1
                    break
    return violations


def run(quick: bool = False) -> ExperimentResult:
    gbn = run_intro_scenario_gbn()
    blockack = run_intro_scenario_blockack()
    trials = 200 if quick else 2000
    gbn_violations = random_search_gbn(trials, seed=5)
    ba_violations = random_search_blockack(trials, seed=5)

    rows = [
        (
            "go-back-N (bounded)",
            "violated" if gbn.violation else "safe",
            gbn.sender_believes_delivered,
            gbn.receiver_actually_accepted,
            f"{gbn_violations}/{trials}",
        ),
        (
            "block ack (bounded)",
            "violated" if blockack.violation else "safe",
            blockack.sender_believes_delivered,
            blockack.receiver_actually_accepted,
            f"{ba_violations}/{trials}",
        ),
    ]
    table = render_table(
        ["protocol", "scripted scenario", "sender believes", "receiver has",
         "random-search violations"],
        rows,
    )
    reproduced = (
        gbn.violation is not None
        and blockack.safe
        and gbn_violations > 0
        and ba_violations == 0
    )
    findings = [
        "scripted Section-I schedule breaks naive bounded go-back-N "
        f"(sender believes {gbn.sender_believes_delivered} delivered, receiver "
        f"accepted {gbn.receiver_actually_accepted})",
        "the identical schedule is harmless under block acknowledgment: "
        "ack (5,5) cannot advance na past the unacknowledged 0..4",
        f"randomized adversarial search: go-back-N broken in "
        f"{gbn_violations}/{trials} schedules, block ack in {ba_violations}/{trials}",
    ]
    return ExperimentResult(
        exp_id="E1",
        title="Bounded-number go-back-N violates safety under reorder; block ack does not",
        claim=EXPERIMENT.claim,
        table=table + "\n\n" + gbn.narrate() + "\n\n" + blockack.narrate(),
        data={
            "gbn_violation": str(gbn.violation),
            "gbn_random_violations": gbn_violations,
            "blockack_random_violations": ba_violations,
            "trials": trials,
        },
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E1",
    title="Intro scenario: stale cumulative ack corrupts bounded go-back-N",
    claim=(
        "Section I: with bounded sequence numbers and message disorder, a "
        "delayed cumulative acknowledgment makes the sender 'recognize "
        "wrongly that all these messages have been received correctly'; "
        "block acknowledgment pairs (m, n) make the scenario impossible."
    ),
    run=run,
)
