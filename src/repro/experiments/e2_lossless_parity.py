"""E2 — throughput parity with go-back-N on perfect channels.

Claim (Sections I and VI): block acknowledgment "maintain[s] the same data
transmission capability of the traditional window protocol" — as long as
no message is lost, it behaves exactly like go-back-N "except for sending
two sequence numbers, instead of one, in every acknowledgment message".

The experiment sweeps the window size over perfect FIFO channels (where
throughput should follow ``min(w / RTT, capacity)``) and reports the
goodput of every protocol variant.  Reproduction criterion: every
block-ack variant within 2% of go-back-N at every window size.
"""

from __future__ import annotations

from repro.analysis.metrics import replicate
from repro.analysis.report import render_table
from repro.experiments.common import (
    SEEDS,
    SEEDS_QUICK,
    ExperimentResult,
    ExperimentSpec,
    fifo_link,
    run_protocol,
)

__all__ = ["EXPERIMENT"]

PROTOCOLS = (
    "gobackn",
    "blockack",
    "blockack-simple",
    "blockack-bounded",
    "selective-repeat",
)
WINDOWS = (1, 2, 4, 8, 16, 32, 64)


def run(quick: bool = False) -> ExperimentResult:
    windows = (1, 4, 16) if quick else WINDOWS
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 300 if quick else 2000

    rows = []
    data = {}
    parity_ok = True
    for window in windows:
        throughputs = {}
        for name in PROTOCOLS:
            metrics = replicate(
                lambda seed, n=name, w=window: run_protocol(
                    n, w, total, fifo_link(), fifo_link(), seed
                ),
                seeds,
                metrics=("throughput",),
            )
            throughputs[name] = metrics["throughput"].mean
        expected = min(window / 2.0, float("inf"))  # RTT = 2 on unit links
        rows.append(
            (window, expected)
            + tuple(throughputs[name] for name in PROTOCOLS)
        )
        data[window] = throughputs
        baseline = throughputs["gobackn"]
        for name in PROTOCOLS:
            if abs(throughputs[name] - baseline) > 0.02 * baseline + 1e-9:
                parity_ok = False

    table = render_table(
        ["window", "w/RTT"] + list(PROTOCOLS),
        rows,
        title="goodput (messages per time unit), perfect FIFO channels",
    )
    findings = [
        "all protocols track the w/RTT pipelining bound on perfect channels",
        "every block-ack variant is within 2% of go-back-N at every window "
        f"size: {'yes' if parity_ok else 'NO'}",
    ]
    return ExperimentResult(
        exp_id="E2",
        title="Lossless throughput parity across window sizes",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=parity_ok,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E2",
    title="Lossless throughput parity with go-back-N",
    claim=(
        "Sections I/VI: as long as sent messages are not lost, the protocol "
        "behaves exactly like a regular go-back-N window protocol — same "
        "data transmission capability."
    ),
    run=run,
)
