"""E3 — goodput under message loss.

Claim (Section I): block acknowledgment tolerates message loss while
keeping the throughput advantages of the window protocol.  Because the
receiver buffers out-of-order data and acknowledges exact blocks, a lost
message costs one retransmission — like selective repeat — whereas
go-back-N retransmits entire windows, so its goodput collapses as the
loss rate grows.

Sweep: Bernoulli loss probability on both channels, fixed window, FIFO
delay (spread 0) so that loss is isolated from reordering — the reorder
axis is E10's.  Expected shape: all protocols equal at p = 0; as p grows,
``blockack`` stays close to ``selective-repeat`` while ``gobackn`` decays
far faster (its efficiency ~ delivered/transmissions drops toward 1/w).
"""

from __future__ import annotations

from repro.analysis.metrics import summarize_replications
from repro.analysis.report import render_table
from repro.experiments.common import (
    SEEDS,
    SEEDS_QUICK,
    ExperimentResult,
    ExperimentSpec,
    lossy_link,
    protocol_config,
    run_grid,
)

__all__ = ["EXPERIMENT"]

PROTOCOLS = ("gobackn", "selective-repeat", "blockack", "blockack-oracle")
LOSS_RATES = (0.0, 0.01, 0.02, 0.05, 0.10, 0.20)
WINDOW = 8


def run(quick: bool = False) -> ExperimentResult:
    loss_rates = (0.0, 0.05, 0.20) if quick else LOSS_RATES
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 300 if quick else 1500

    # the whole sweep is one flat grid of independent runs
    configs = [
        protocol_config(
            name, WINDOW, total, lossy_link(p, spread=0.0),
            lossy_link(p, spread=0.0), seed,
        )
        for p in loss_rates
        for name in PROTOCOLS
        for seed in seeds
    ]
    results = iter(run_grid(configs))

    rows = []
    data = {}
    for p in loss_rates:
        cell = {}
        for name in PROTOCOLS:
            metrics = summarize_replications(
                [next(results) for _ in seeds],
                metrics=("throughput", "goodput_efficiency"),
            )
            cell[name] = (
                metrics["throughput"].mean,
                metrics["goodput_efficiency"].mean,
            )
        rows.append(
            (p,)
            + tuple(cell[name][0] for name in PROTOCOLS)
            + tuple(cell[name][1] for name in PROTOCOLS)
        )
        data[p] = cell

    headers = (
        ["loss p"]
        + [f"thr:{n}" for n in PROTOCOLS]
        + [f"eff:{n}" for n in PROTOCOLS]
    )
    table = render_table(
        headers, rows, title=f"goodput and efficiency vs loss rate (w={WINDOW})"
    )

    # shape checks — the paper's claim is about *redundant retransmission*,
    # so the primary axis is efficiency (delivered per transmission)
    p_low, p_high = loss_rates[0], loss_rates[-1]
    parity_at_zero = (
        abs(data[p_low]["blockack"][0] - data[p_low]["gobackn"][0])
        <= 0.05 * data[p_low]["gobackn"][0]
    )
    gbn_wastes = (
        data[p_high]["gobackn"][1] < 0.6 * data[p_high]["blockack"][1]
    )
    tracks_sr_efficiency = (
        data[p_high]["blockack"][1] >= 0.9 * data[p_high]["selective-repeat"][1]
    )
    never_slower_than_gbn = all(
        data[p]["blockack"][0] >= 0.95 * data[p]["gobackn"][0]
        for p in loss_rates
    )
    reproduced = (
        parity_at_zero
        and gbn_wastes
        and tracks_sr_efficiency
        and never_slower_than_gbn
    )
    findings = [
        f"at p=0 block ack matches go-back-N: {'yes' if parity_at_zero else 'NO'}",
        f"at p={p_high} go-back-N wastes most transmissions (efficiency "
        f"{data[p_high]['gobackn'][1]:.2f} vs block ack's "
        f"{data[p_high]['blockack'][1]:.2f}): the redundant whole-window "
        "retransmissions the paper eliminates",
        "block ack matches selective repeat's retransmission economy "
        f"(efficiency {data[p_high]['blockack'][1]:.2f} vs "
        f"{data[p_high]['selective-repeat'][1]:.2f}) while keeping block acks",
        "latency-wise, safe timers are conservative by design (bounded "
        "numbering requires it — E12); the oracle column shows the Section-IV "
        "guard recovers selective-repeat-level goodput "
        f"({data[p_high]['blockack-oracle'][0]:.2f}/tu at p={p_high})",
    ]
    return ExperimentResult(
        exp_id="E3",
        title="Goodput vs loss rate",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E3",
    title="Loss sweep: block ack recovers per message, go-back-N per window",
    claim=(
        "Section I: the protocol tolerates message loss without go-back-N's "
        "redundant retransmission of already-received messages (selective-"
        "repeat-like recovery with cumulative-style acks)."
    ),
    run=run,
)
