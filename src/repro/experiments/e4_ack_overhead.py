"""E4 — acknowledgment traffic per delivered message.

Claim (Sections I and VI): selective repeat "requires that every data
message be acknowledged by a distinct acknowledgment message", while
block acknowledgment lets "a single message acknowledge a large number of
data messages" — go-back-N's thrift with selective repeat's precision.

The experiment measures acknowledgments sent per delivered payload:

* selective repeat: exactly 1.0 by construction (plus duplicates);
* block ack + eager acks: 1.0 on in-order traffic, below 1.0 once
  reordering or recovery creates multi-message blocks;
* block ack + delayed/counting acks: approaches ``1/k`` where ``k`` is
  the achievable batch size — the knob Section VI's "more aggressive"
  remark points at (ablation over the receiver ack policy).
"""

from __future__ import annotations

from repro.analysis.metrics import replicate
from repro.analysis.report import render_table
from repro.experiments.common import (
    SEEDS,
    SEEDS_QUICK,
    ExperimentResult,
    ExperimentSpec,
    jitter_link,
    lossy_link,
    run_protocol,
)
from repro.protocols.ack_policy import CountingAckPolicy, DelayedAckPolicy

__all__ = ["EXPERIMENT"]

WINDOW = 16


def _variants():
    """(label, protocol name, extra kwargs) triples under test."""
    return (
        ("selective-repeat", "selective-repeat", {}),
        ("blockack eager", "blockack", {}),
        ("blockack delay=0.5", "blockack", {"ack_policy_factory": lambda: DelayedAckPolicy(0.5)}),
        ("blockack count=4", "blockack", {"ack_policy_factory": lambda: CountingAckPolicy(4, 1.0)}),
        ("blockack count=8", "blockack", {"ack_policy_factory": lambda: CountingAckPolicy(8, 1.0)}),
    )


def _run_variant(name, kwargs, loss_p, spread, total, seed):
    factory = kwargs.get("ack_policy_factory")
    extra = {}
    if factory is not None:
        extra["ack_policy"] = factory()
    link = lossy_link(loss_p, spread) if loss_p > 0 else jitter_link(spread)
    return run_protocol(
        name, WINDOW, total, link, jitter_link(spread), seed, **extra
    )


def run(quick: bool = False) -> ExperimentResult:
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 400 if quick else 2000
    conditions = (("in-order lossless", 0.0, 0.0), ("reorder+5% loss", 0.05, 1.5))

    rows = []
    data = {}
    for cond_label, loss_p, spread in conditions:
        for label, name, kwargs in _variants():
            metrics = replicate(
                lambda seed, n=name, kw=kwargs, lp=loss_p, sp=spread: _run_variant(
                    n, kw, lp, sp, total, seed
                ),
                seeds,
                metrics=("acks_per_message", "throughput"),
            )
            rows.append(
                (
                    cond_label,
                    label,
                    metrics["acks_per_message"].mean,
                    metrics["throughput"].mean,
                )
            )
            data[(cond_label, label)] = metrics["acks_per_message"].mean

    table = render_table(
        ["condition", "variant", "acks/message", "goodput"],
        rows,
        title=f"acknowledgment overhead (w={WINDOW})",
    )

    sr_lossy = data[("reorder+5% loss", "selective-repeat")]
    ba_lossy = data[("reorder+5% loss", "blockack eager")]
    ba_count8 = data[("in-order lossless", "blockack count=8")]
    reproduced = ba_lossy < 0.8 * sr_lossy and ba_count8 <= 0.2

    # the paper's "small added expense": two sequence numbers per ack
    # instead of one.  In the byte codec an ack frame is 11 bytes; a
    # single-number ack would save the second 16-bit field: 9 bytes.
    pair_ack_bytes = 11.0
    single_ack_bytes = 9.0
    ba_bytes = ba_lossy * pair_ack_bytes
    sr_bytes = sr_lossy * single_ack_bytes
    findings = [
        f"under reorder+loss, eager block ack sends {ba_lossy:.2f} acks/msg vs "
        f"selective repeat's {sr_lossy:.2f} — blocks form for free during recovery",
        f"with a counting policy (k=8) block ack needs only {ba_count8:.3f} "
        "acks/msg on smooth traffic — one ack covers a whole batch",
        "selective repeat cannot batch by design: every message needs its own ack",
        "the paper's 'small added expense' of the second sequence number, in "
        f"bytes: block ack pays {pair_ack_bytes:.0f}B per (rarer) ack = "
        f"{ba_bytes:.1f}B of ack traffic per message under reorder+loss, vs "
        f"{sr_bytes:.1f}B for single-number per-message acks — the pair "
        "repays itself many times over",
    ]
    return ExperimentResult(
        exp_id="E4",
        title="Acknowledgment overhead: blocks vs per-message acks",
        claim=EXPERIMENT.claim,
        table=table,
        data={f"{c}/{l}": v for (c, l), v in data.items()},
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E4",
    title="Ack overhead: one block ack covers many messages",
    claim=(
        "Sections I/VI: selective repeat needs a distinct ack per data "
        "message — 'a severe restriction'; with block acknowledgment a "
        "single message can acknowledge a large number of data messages."
    ),
    run=run,
)
