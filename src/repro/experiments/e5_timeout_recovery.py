"""E5 — recovery latency after a lost block acknowledgment.

Claim (Section IV): with the simple timeout, "if one acknowledgment
message (m, n) is lost, process S has to timeout and resend each of the
messages from m to n, one at a time, with each two successive messages
separated by a full timeout period" — i.e. recovery costs ~(n−m+1)
timeout periods.  The sophisticated per-message timeout removes the
serialization: "successive resendings of different messages do not have
to be separated by any specific time period".

Setup: the sender transmits a block of ``b`` messages; the receiver
acknowledges them with a single block ack (delayed-ack batching); that
one ack is deterministically lost (scripted fault injection).  We measure
total transfer-completion time as a function of ``b`` for the three
timeout realizations:

* ``simple``       — expected ~``b * T``  (linear in b, slope T)
* ``per_message_safe`` — expected ~``T + b * RTT``  (linear, slope RTT << T)
* ``oracle``       — expected ~``T' + RTT``  (flat: one poll detects all)
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.channel.impairments import ScriptedLoss
from repro.experiments.common import ExperimentResult, ExperimentSpec, fifo_link
from repro.protocols.ack_policy import DelayedAckPolicy
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

__all__ = ["EXPERIMENT", "measure_recovery"]

ACK_DELAY = 0.25
# Any period above the 2.25 bound is safe; real deployments must cover the
# worst-case message lifetime, which dwarfs the typical RTT (cf. the
# long-tail regime of E6), so we use a representative conservative value.
TIMEOUT = 10.0
BLOCK_SIZES = (2, 4, 8, 16)


def measure_recovery(mode: str, block_size: int) -> float:
    """Completion time of a ``block_size`` transfer whose block ack is lost."""
    sender = BlockAckSender(
        window=block_size,
        timeout_mode=mode,
        timeout_period=TIMEOUT if mode != "oracle" else 0.25,
    )
    receiver = BlockAckReceiver(
        window=block_size, ack_policy=DelayedAckPolicy(ACK_DELAY)
    )
    reverse = LinkSpec(
        delay=fifo_link().delay, loss=ScriptedLoss({0})  # drop the block ack
    )
    result = run_transfer(
        sender,
        receiver,
        GreedySource(block_size),
        forward=fifo_link(),
        reverse=reverse,
        seed=0,
        max_time=10_000.0,
    )
    if not (result.completed and result.in_order):
        raise AssertionError(
            f"recovery run failed (mode={mode}, b={block_size}): {result.summary()}"
        )
    return result.duration


def run(quick: bool = False) -> ExperimentResult:
    block_sizes = (2, 8) if quick else BLOCK_SIZES
    modes = ("simple", "per_message_safe", "oracle")

    rows = []
    data = {}
    for b in block_sizes:
        times = {mode: measure_recovery(mode, b) for mode in modes}
        rows.append(
            (
                b,
                times["simple"],
                times["per_message_safe"],
                times["oracle"],
                f"~{b * TIMEOUT:.1f}",
            )
        )
        data[b] = times

    table = render_table(
        ["block size b", "simple", "per-message (safe)", "oracle (Sec IV)",
         "paper predicts simple"],
        rows,
        title=f"completion time after losing one block ack (T={TIMEOUT}, RTT=2)",
    )

    b_small, b_large = block_sizes[0], block_sizes[-1]
    growth = b_large / b_small
    simple_linear_in_T = (
        data[b_large]["simple"] / data[b_small]["simple"] > 0.6 * growth
    )
    safe_beats_simple = (
        data[b_large]["per_message_safe"] < 0.6 * data[b_large]["simple"]
    )
    oracle_flat = (
        data[b_large]["oracle"] - data[b_small]["oracle"] < 2.0
    )
    reproduced = simple_linear_in_T and safe_beats_simple and oracle_flat
    findings = [
        f"simple timeout: recovery grows ~linearly with block size at slope "
        f"≈T={TIMEOUT} (b={b_large}: {data[b_large]['simple']:.1f}tu)",
        "per-message safe timers serialize recoveries by one RTT instead of "
        f"one timeout period (b={b_large}: "
        f"{data[b_large]['per_message_safe']:.1f}tu)",
        "the oracle guard (Section IV verbatim) retransmits every covered "
        f"message at once: flat ~{data[b_large]['oracle']:.1f}tu for any block",
    ]
    return ExperimentResult(
        exp_id="E5",
        title="Recovery latency: simple vs sophisticated timeouts",
        claim=EXPERIMENT.claim,
        data={str(b): times for b, times in data.items()},
        table=table,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E5",
    title="Lost block ack: recovery cost of the simple timeout",
    claim=(
        "Section IV: losing one block ack (m, n) costs the simple-timeout "
        "protocol one full timeout period per covered message; per-message "
        "timeouts remove the serialized timeout periods."
    ),
    run=run,
)
