"""E6 — throughput vs sequence-number domain for the timer-based baseline.

Claim (Section I): in the Stenning/Shankar–Lam protocol, "a specified
time period should elapse between the sending of two data messages with
the same sequence number. ... This additional constraint may adversely
affect the rate of data transfer in the event that a small domain of
sequence numbers is used."  Block acknowledgment "resorts to the
realtime constraints only when some message is lost", so its throughput
does not depend on the domain at all (beyond the fixed ``n = 2w``).

Regime: the reuse period must exceed the *maximum* message lifetime,
which in real networks is orders of magnitude above the typical delay.
The long-tail link (typical delay ≈ 1, aging bound 25) gives a reuse
period of ≈ 50 while the RTT is ≈ 2, so the Stenning cap
``D / reuse_period`` bites hard for small domains.

Expected shape: Stenning throughput grows ~linearly in D with slope
``1/reuse_period`` until it saturates at the window bound; block ack is
flat at the window bound with its fixed 2w-number domain.
"""

from __future__ import annotations

from repro.analysis.metrics import replicate
from repro.analysis.report import render_table
from repro.experiments.common import (
    LIFETIME_BOUND,
    SEEDS,
    SEEDS_QUICK,
    ExperimentResult,
    ExperimentSpec,
    longtail_link,
    run_protocol,
)

__all__ = ["EXPERIMENT"]

WINDOW = 8
DOMAINS = (9, 16, 32, 64, 128, 256)
REUSE_PERIOD = 2 * LIFETIME_BOUND + 0.05  # what the runner derives


def run(quick: bool = False) -> ExperimentResult:
    domains = (9, 32, 128) if quick else DOMAINS
    seeds = SEEDS_QUICK if quick else SEEDS
    total = 200 if quick else 600

    rows = []
    data = {}
    for domain in domains:
        metrics = replicate(
            lambda seed, d=domain: run_protocol(
                "stenning", WINDOW, total, longtail_link(), longtail_link(),
                seed, domain=d,
            ),
            seeds,
            metrics=("throughput",),
        )
        cap = domain / REUSE_PERIOD
        rows.append((f"stenning D={domain}", metrics["throughput"].mean, f"{cap:.2f}"))
        data[f"stenning_{domain}"] = metrics["throughput"].mean

    ba = replicate(
        lambda seed: run_protocol(
            "blockack", WINDOW, total, longtail_link(), longtail_link(), seed,
            bounded_wire=True,
        ),
        seeds,
        metrics=("throughput",),
    )
    rows.append(
        (f"blockack D=2w={2 * WINDOW}", ba["throughput"].mean, "window-bound only")
    )
    data["blockack"] = ba["throughput"].mean

    table = render_table(
        ["protocol / domain", "goodput", "predicted cap D/reuse"],
        rows,
        title=(
            f"throughput vs wire-number domain (w={WINDOW}, typical delay≈1, "
            f"max lifetime={LIFETIME_BOUND}, reuse period≈{REUSE_PERIOD:.0f})"
        ),
    )

    d_small, d_large = domains[0], domains[-1]
    small_capped = data[f"stenning_{d_small}"] < 0.5 * data["blockack"]
    roughly_linear = (
        data[f"stenning_{domains[1]}"]
        > 1.5 * data[f"stenning_{d_small}"]
    )
    ba_wins_small_domain = data["blockack"] > 2.0 * data[f"stenning_{16 if 16 in domains else domains[1]}"]
    reproduced = small_capped and roughly_linear and ba_wins_small_domain
    findings = [
        f"stenning at D={d_small} achieves {data[f'stenning_{d_small}']:.2f}/tu "
        f"≈ its cap {d_small / REUSE_PERIOD:.2f} — throughput bought one wire "
        "number at a time",
        f"block ack reaches {data['blockack']:.2f}/tu with a fixed "
        f"{2 * WINDOW}-number domain: the real-time constraint is paid only "
        "on loss, never per send",
        "stenning needs D in the hundreds to match what block ack does with 16 numbers",
    ]
    return ExperimentResult(
        exp_id="E6",
        title="Timer-constrained baseline vs domain size",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E6",
    title="Small sequence-number domains throttle the timer-based protocol",
    claim=(
        "Section I: the timer-constrained protocol's send-rate degrades with "
        "a small sequence-number domain; block acknowledgment avoids the "
        "per-send real-time constraint entirely."
    ),
    run=run,
)
