"""E7 — the finite-sequence-number protocol behaves identically.

Claim (Section V): replacing true sequence numbers by numbers mod
``n = 2w`` — and then shrinking all local state to O(w) — "can be
performed without altering either the safety or progress properties of
the protocol": the function ``f`` reconstructs every number exactly, so
the bounded protocol makes the same decisions at the same instants.

Three implementations are raced under byte-identical schedules (same
seeds, hence same channel delay/loss draws — the common-random-numbers
discipline):

* ``unbounded``  — Section II: true numbers on the wire;
* ``modular``    — same endpoint code, wire numbers mod 2w, reconstruction
  via ``f`` (Section V, first transformation);
* ``bounded``    — the byte-exact Section V final programs: O(w) storage,
  all counters mod 2w.

Checks: (1) identical delivered-payload sequences, (2) identical
completion times and message counts, (3) the unbounded and modular
variants make literally identical decisions (full decision-trace
equality), and the byte-exact variant's wire trace equals the modular
one's after projecting true numbers mod 2w.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import render_table
from repro.core.numbering import ModularNumbering
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    fifo_link,
    jitter_link,
    lossy_link,
)
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.protocols.blockack_bounded import (
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
)
from repro.sim.runner import run_transfer
from repro.trace.recorder import decision_diff
from repro.workloads.sources import GreedySource

__all__ = ["EXPERIMENT", "race_variants"]

WINDOW = 6
TIMEOUT = 55.0  # safe for every condition used below


def _make(variant: str):
    if variant == "unbounded":
        sender = BlockAckSender(WINDOW, timeout_mode="simple", timeout_period=TIMEOUT)
        receiver = BlockAckReceiver(WINDOW)
    elif variant == "modular":
        numbering = ModularNumbering(WINDOW)
        sender = BlockAckSender(
            WINDOW, numbering=numbering, timeout_mode="simple",
            timeout_period=TIMEOUT,
        )
        receiver = BlockAckReceiver(WINDOW, numbering=numbering)
    elif variant == "bounded":
        sender = BoundedBlockAckSender(WINDOW, timeout_period=TIMEOUT)
        receiver = BoundedBlockAckReceiver(WINDOW)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    return sender, receiver


def race_variants(condition: str, total: int, seed: int) -> dict:
    """Run all three variants under one identical schedule; compare."""
    links = {
        "fifo": fifo_link,
        "reorder": lambda: jitter_link(1.5),
        "loss+reorder": lambda: lossy_link(0.08, 1.2),
    }[condition]
    results = {}
    for variant in ("unbounded", "modular", "bounded"):
        sender, receiver = _make(variant)
        results[variant] = run_transfer(
            sender,
            receiver,
            GreedySource(total),
            forward=links(),
            reverse=links(),
            seed=seed,
            trace=True,
            collect_payloads=True,
            max_time=100_000.0,
        )
    return results


def _wire_projection(result, domain: int) -> List[tuple]:
    """Decision trace with sequence numbers projected mod ``domain``."""
    projected = []
    for time, actor, kind, seq, seq_hi in result.trace.decision_trace():
        projected.append(
            (
                time,
                actor,
                kind,
                None if seq is None else seq % domain,
                None if seq_hi is None else seq_hi % domain,
            )
        )
    return projected


def run(quick: bool = False) -> ExperimentResult:
    conditions = ("fifo", "loss+reorder") if quick else (
        "fifo", "reorder", "loss+reorder"
    )
    seeds = (3, 17) if quick else (3, 17, 29, 43)
    total = 150 if quick else 500

    rows = []
    all_ok = True
    data = {}
    for condition in conditions:
        for seed in seeds:
            results = race_variants(condition, total, seed)
            u, m, b = results["unbounded"], results["modular"], results["bounded"]
            payloads_equal = (
                u.delivered_payloads == m.delivered_payloads == b.delivered_payloads
            )
            durations_equal = u.duration == m.duration == b.duration
            counts_equal = (
                u.sender_stats["data_sent"]
                == m.sender_stats["data_sent"]
                == b.sender_stats["data_sent"]
            )
            decisions_equal = not decision_diff(
                u.trace.decision_trace(), m.trace.decision_trace()
            )
            wire_equal = not decision_diff(
                _wire_projection(m, 2 * WINDOW), b.trace.decision_trace()
            )
            ok = (
                payloads_equal
                and durations_equal
                and counts_equal
                and decisions_equal
                and wire_equal
                and u.completed
                and u.in_order
            )
            all_ok = all_ok and ok
            rows.append(
                (
                    condition,
                    seed,
                    payloads_equal,
                    durations_equal,
                    counts_equal,
                    decisions_equal,
                    wire_equal,
                )
            )
            data[f"{condition}/{seed}"] = ok

    table = render_table(
        ["condition", "seed", "payloads =", "durations =", "msg counts =",
         "decisions(unb,mod) =", "wire(mod,bounded) ="],
        rows,
        title=f"three-way equivalence race (w={WINDOW}, n=2w={2 * WINDOW})",
    )
    findings = [
        "the mod-2w wire encoding reconstructs every sequence number exactly "
        "(identical decision traces, message for message)",
        "the byte-exact O(w)-storage programs emit identical wire traffic and "
        "deliver identical payload sequences",
        "equivalence holds under loss and reorder, not just clean runs",
    ]
    return ExperimentResult(
        exp_id="E7",
        title="Bounded = unbounded: behavioural equivalence",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=all_ok,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E7",
    title="Finite sequence numbers preserve behaviour exactly",
    claim=(
        "Section V: sending (m mod 2w) and reconstructing with f loses no "
        "information; the modification preserves both safety and progress "
        "— and bounded storage suffices."
    ),
    run=run,
)
