"""E8 — exhaustive verification of the invariant (assertions 6 ∧ 7 ∧ 8).

Claim (Section III): the conjunction of assertions 6, 7, and 8 is an
invariant of the protocol — every reachable state satisfies it, under
message loss and disorder, for both the simple (Section II) and
per-message (Section IV) timeout actions.

The experiment explores the *entire* reachable state space of the
abstract protocol (channels as sets, actions 0–5, environment loss
transitions) for several window sizes and send bounds, checking the
invariant at every state and flagging deadlocks.  Two ablations show the
checks have teeth:

* the ``impatient`` timeout (retransmit whenever anything is outstanding,
  ignoring the paper's guard) violates assertion 8 within a handful of
  transitions — the at-most-one-copy-in-transit clause is what the
  careful timeout guard buys;
* an undersized wire domain ``n = w`` makes the reconstruction function
  ``f`` ambiguous: we count decode collisions over the receiver's
  admissible value range (assertion 11), which are zero for ``n = 2w``.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.seqnum import reconstruct
from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.verify.actions import AbstractProtocolModel
from repro.verify.explorer import Explorer

__all__ = ["EXPERIMENT", "decode_collisions"]


def decode_collisions(window: int, domain: int, horizon: int = 40) -> int:
    """Count values the receiver cannot decode correctly with this domain.

    For each plausible receiver state ``nr`` (up to ``horizon``), assertion
    11 admits any true ``v`` in ``[max(0, nr - w), nr + w)``.  A collision
    is a ``v`` in that range whose reconstruction from ``v mod domain``
    (reference ``max(0, nr - w)``) does not give back ``v``.
    """
    collisions = 0
    for nr in range(horizon):
        reference = max(0, nr - window)
        for v in range(reference, nr + window):
            if reconstruct(reference, v % domain, domain) != v:
                collisions += 1
    return collisions


def run(quick: bool = False) -> ExperimentResult:
    configs = (
        (1, 3, "simple", True),
        (1, 3, "per_message", True),
        (2, 4, "simple", True),
        (2, 4, "per_message", True),
        (2, 5, "simple", True),
        (3, 5, "simple", False),
    )
    if quick:
        configs = configs[:4]

    rows = []
    data = {}
    all_clean = True
    for window, max_send, mode, allow_loss in configs:
        model = AbstractProtocolModel(
            window=window,
            max_send=max_send,
            timeout_mode=mode,
            allow_loss=allow_loss,
        )
        report = Explorer(model, stop_at_first_violation=False).run()
        label = f"w={window} N={max_send} {mode}" + (" +loss" if allow_loss else "")
        rows.append(
            (
                label,
                report.states_explored,
                report.transitions_explored,
                len(report.invariant_violations),
                len(report.deadlocks),
                report.final_states,
            )
        )
        data[label] = report.states_explored
        all_clean = all_clean and report.ok and not report.truncated

    # ablation 1: the impatient timeout breaks assertion 8
    impatient = AbstractProtocolModel(2, 4, timeout_mode="impatient")
    impatient_explorer = Explorer(impatient)
    impatient_report = impatient_explorer.run()
    impatient_broken = bool(impatient_report.invariant_violations)
    witness_lines = []
    if impatient_broken:
        bad_state, clauses = impatient_report.invariant_violations[0]
        witness_lines = impatient_explorer.witness(bad_state)
        rows.append(
            (
                "w=2 N=4 impatient (ablation)",
                impatient_report.states_explored,
                impatient_report.transitions_explored,
                len(impatient_report.invariant_violations),
                len(impatient_report.deadlocks),
                impatient_report.final_states,
            )
        )

    # ablation 2: n = w decoding is ambiguous, n = 2w is exact
    coll_w = decode_collisions(window=4, domain=4)
    coll_2w = decode_collisions(window=4, domain=8)

    # refinement: the timed implementation's traces replay as abstract
    # executions (every concrete step satisfies the paper's guards)
    from repro.verify.refinement import check_refinement

    total = 80 if quick else 200
    refinements = {
        mode: check_refinement(window=6, total=total, seed=3, timeout_mode=mode)
        for mode in ("simple", "per_message_safe", "oracle")
    }
    refinements_ok = all(report.ok for report in refinements.values())
    aggressive_refinement = check_refinement(
        window=6, total=total, seed=3, timeout_mode="aggressive"
    )

    table = render_table(
        ["configuration", "states", "transitions", "violations", "deadlocks",
         "final states"],
        rows,
        title="exhaustive exploration of the abstract protocol",
    )
    witness = "\n".join(
        ["", "impatient-timeout violation witness:"]
        + [f"  {line}" for line in witness_lines[:12]]
    )
    reproduced = (
        all_clean
        and impatient_broken
        and coll_2w == 0
        and coll_w > 0
        and refinements_ok
        and not aggressive_refinement.ok
    )
    refinement_steps = ", ".join(
        f"{mode}: {report.steps} steps"
        for mode, report in refinements.items()
    )
    findings = [
        "the paper invariant (6 ∧ 7 ∧ 8, plus the Section-V decode ranges "
        "9-11) holds in every reachable state, both timeout variants, with "
        "loss and reorder enabled",
        "no deadlocks: every non-final state has an enabled protocol action",
        "ablation: dropping the timeout guard's channel conjuncts (impatient "
        "mode) violates assertion 8 "
        f"({len(impatient_report.invariant_violations)} violating state(s) found, "
        "witness trace below)",
        f"ablation: domain n=w gives {coll_w} reconstruction collisions over "
        f"the assertion-11 range; n=2w gives {coll_2w} — the paper's 2w is tight",
        "refinement: traces of the timed implementation replay as abstract "
        f"executions with every guard satisfied ({refinement_steps}); the "
        "aggressive mode fails the replay at its first premature "
        "retransmission",
    ]
    return ExperimentResult(
        exp_id="E8",
        title="Model checking the invariant",
        claim=EXPERIMENT.claim,
        table=table + witness,
        data={**data, "collisions_n_eq_w": coll_w, "collisions_n_eq_2w": coll_2w},
        findings=findings,
        reproduced=reproduced,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E8",
    title="Assertions 6-8 are invariant; ablations show the checks bite",
    claim=(
        "Section III: the conjunction of assertions 6, 7 and 8 is an "
        "invariant of the protocol (safety), insensitive to message loss "
        "and disorder; Section V: n = 2w suffices for exact reconstruction."
    ),
    run=run,
)
