"""E9 — progress: the potential function keeps climbing.

Claim (Section III-B): the sum ``na + ns + nr + vr`` is incremented
infinitely often — the sender sends new messages and the receiver accepts
new messages forever — under action fairness, provided (Section III-C)
"there are long periods of time during which no sent message is lost".

The experiment runs long randomized fair executions of the abstract model
with a bounded loss budget (the fault model under which the paper proves
progress) and checks that every walk (a) completes the transfer, (b) never
decreases the potential function, and (c) never violates the invariant.
A second sweep raises the loss pressure to show completion survives even
aggressive-but-finite loss.
"""

from __future__ import annotations

import random

from repro.analysis.report import render_table
from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.verify.actions import AbstractProtocolModel
from repro.verify.explorer import RandomWalker

__all__ = ["EXPERIMENT"]


def _walk(window, max_send, loss_p, loss_budget, seed, timeout_mode="simple"):
    model = AbstractProtocolModel(
        window=window, max_send=max_send, timeout_mode=timeout_mode,
        allow_loss=True,
    )
    walker = RandomWalker(
        model,
        random.Random(seed),
        loss_probability=loss_p,
        loss_budget=loss_budget,
        max_steps=200_000,
    )
    return walker.run()


def run(quick: bool = False) -> ExperimentResult:
    seeds = (1, 2, 3) if quick else (1, 2, 3, 4, 5, 6, 7, 8)
    configs = (
        (2, 20, 0.05, 10, "simple"),
        (2, 20, 0.30, 40, "simple"),
        (4, 30, 0.30, 60, "per_message"),
    )
    if quick:
        configs = configs[:2]

    rows = []
    all_ok = True
    data = {}
    for window, max_send, loss_p, budget, mode in configs:
        for seed in seeds:
            report = _walk(window, max_send, loss_p, budget, seed, mode)
            monotone = all(
                later >= earlier
                for earlier, later in zip(
                    report.progress_sum_history, report.progress_sum_history[1:]
                )
            )
            ok = (
                report.completed
                and monotone
                and report.invariant_violations == 0
            )
            all_ok = all_ok and ok
            rows.append(
                (
                    f"w={window} N={max_send} {mode} loss={loss_p}",
                    seed,
                    report.steps,
                    report.losses_injected,
                    report.completed,
                    monotone,
                    report.invariant_violations,
                )
            )
            data[f"{window}/{max_send}/{loss_p}/{mode}/{seed}"] = ok

    table = render_table(
        ["configuration", "seed", "steps", "losses", "completed",
         "sum monotone", "invariant violations"],
        rows,
        title="randomized fair executions of the abstract protocol",
    )
    findings = [
        "every fair execution delivers and acknowledges all N messages "
        "despite injected losses (bounded loss budget = the paper's "
        "'long periods with no loss' assumption)",
        "the potential function na+ns+nr+vr never decreases — the paper's "
        "progress measure",
        "the invariant held at every step of every walk",
    ]
    return ExperimentResult(
        exp_id="E9",
        title="Progress under fair scheduling and bounded loss",
        claim=EXPERIMENT.claim,
        table=table,
        data=data,
        findings=findings,
        reproduced=all_ok,
    )


EXPERIMENT = ExperimentSpec(
    exp_id="E9",
    title="The sum na+ns+nr+vr increments infinitely often",
    claim=(
        "Section III-B/C: the protocol makes progress — actions 0 and 5 "
        "execute infinitely often under fairness, provided loss is not "
        "continuous; the proof's potential function is na+ns+nr+vr."
    ),
    run=run,
)
