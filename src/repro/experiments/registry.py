"""Registry of all experiments, ordered E1..E17."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import (
    e1_intro_scenario,
    e2_lossless_parity,
    e3_loss_sweep,
    e4_ack_overhead,
    e5_timeout_recovery,
    e6_stenning_domain,
    e7_bounded_equivalence,
    e8_model_check,
    e9_progress,
    e10_reorder_sweep,
    e11_special_cases,
    e12_timeout_ablation,
    e13_position_reuse,
    e14_adaptive_timeout,
    e15_multiflow_fairness,
    e16_state_corruption,
    e17_hetero_arbiter,
)
from repro.experiments.common import ExperimentResult, ExperimentSpec

__all__ = ["EXPERIMENTS", "experiment_ids", "get_experiment", "run_experiment"]

_MODULES = (
    e1_intro_scenario,
    e2_lossless_parity,
    e3_loss_sweep,
    e4_ack_overhead,
    e5_timeout_recovery,
    e6_stenning_domain,
    e7_bounded_equivalence,
    e8_model_check,
    e9_progress,
    e10_reorder_sweep,
    e11_special_cases,
    e12_timeout_ablation,
    e13_position_reuse,
    e14_adaptive_timeout,
    e15_multiflow_fairness,
    e16_state_corruption,
    e17_hetero_arbiter,
)

EXPERIMENTS: Dict[str, ExperimentSpec] = {
    module.EXPERIMENT.exp_id.lower(): module.EXPERIMENT for module in _MODULES
}


def experiment_ids() -> List[str]:
    """All experiment ids in order: ['e1', ..., 'e17']."""
    return list(EXPERIMENTS)


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up one experiment by id (case-insensitive)."""
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment and return its result."""
    return get_experiment(exp_id).run(quick)
