"""Determinism & contract static analyzer (``blockack lint``).

Everything this reproduction promises — bit-identical decision traces
between the heap and calendar-queue engines, byte-identical
serial/parallel/cached sweep results, ``PYTHONHASHSEED``-independent
runs — used to be enforced only *dynamically*, by golden traces and
fuzz tests.  This package is the static analogue: an AST-based lint
pass that proves the determinism and seam contracts hold *by
construction*, on every file, on every PR.

Three rule families (see :mod:`repro.lint.registry` for the catalogue):

* **D-series (determinism)** — no wall-clock in simulated paths, no
  module-level ``random.*`` state, no unordered ``set`` iteration, no
  float ``==`` on virtual timestamps, no ``id()``/``hash()`` ordering.
* **P-series (parallelism safety)** — functions crossing the
  :mod:`repro.perf` process-pool boundary must be top-level and
  picklable; no lambdas/closures or module-global mutation in workers.
* **S-series (seam contracts)** — cross-artifact checks: the two
  engines expose identical public surfaces, the ``timer_observer``
  seam stays duck-safe, and every obs record field emitted anywhere in
  the codebase exists in the pinned :mod:`repro.obs.schema`.

Findings can be silenced inline with ``# lint: ignore[RULE]`` (see
:mod:`repro.lint.suppress`); the CLI (``blockack lint`` or ``python -m
repro.lint``) exits non-zero when findings remain, which is what CI
gates on.
"""

from repro.lint.analyzer import LintReport, lint_paths, lint_sources
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, get_rule, register

# rule modules self-register on import
from repro.lint import rules_determinism, rules_parallel, rules_seams  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "Severity",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "lint_paths",
    "lint_sources",
]
