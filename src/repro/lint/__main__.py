"""``python -m repro.lint`` — see :mod:`repro.lint.cli`."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
