"""Lint driver: parse files, run rules, filter suppressions.

The driver is deliberately boring: collect ``.py`` files, parse each
once into a :class:`FileContext` (source + AST + suppression index),
run every file-scope rule per file and every project-scope rule once
over the :class:`ProjectContext`, drop suppressed findings, and return
a sorted :class:`LintReport`.  Determinism of the *linter itself*
matters (its output is diffed in CI), so file order, rule order and
finding order are all explicitly sorted.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, select_rules
from repro.lint.suppress import SuppressionIndex, parse_suppressions

__all__ = [
    "FileContext",
    "ProjectContext",
    "LintReport",
    "lint_paths",
    "lint_sources",
]

#: directories never linted (caches, VCS internals)
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


@dataclass
class FileContext:
    """One parsed source file, as every rule sees it."""

    path: str  # display path (relative where possible)
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    #: dotted module name when the file sits under a package root
    #: (``repro.sim.engine``); empty for loose fixture files
    module: str = ""

    @classmethod
    def from_source(
        cls, path: str, source: str, module: str = ""
    ) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
            module=module,
        )

    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class ProjectContext:
    """Every parsed file, keyed for the cross-artifact (S-series) rules."""

    files: List[FileContext] = field(default_factory=list)

    def by_module(self) -> Dict[str, FileContext]:
        return {ctx.module: ctx for ctx in self.files if ctx.module}

    def get_module(self, module: str) -> Optional[FileContext]:
        for ctx in self.files:
            if ctx.module == module:
                return ctx
        return None


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings (or unparseable input)."""
        return 1 if (self.errors or self.parse_errors) else 0

    def as_record(self) -> dict:
        """JSON document for ``--format json`` (stable key order)."""
        return {
            "files_checked": self.files_checked,
            "parse_errors": [
                {"path": path, "message": message}
                for path, message in self.parse_errors
            ],
            "findings": [f.as_record() for f in self.findings],
        }


def _module_name(file_path: pathlib.Path) -> str:
    """Dotted module path for files under a ``repro`` package root."""
    parts = list(file_path.with_suffix("").parts)
    if "repro" not in parts:
        return ""
    parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _display_path(file_path: pathlib.Path) -> str:
    try:
        return str(file_path.relative_to(pathlib.Path.cwd()))
    except ValueError:
        return str(file_path)


def iter_python_files(paths: Sequence[str]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen = {}
    for raw in paths:
        root = pathlib.Path(raw)
        if root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen[str(candidate.resolve())] = candidate
        else:
            seen[str(root.resolve())] = root
    return [seen[key] for key in sorted(seen)]


def _run_rules(
    project: ProjectContext,
    rules: Sequence[Rule],
) -> List[Finding]:
    findings: List[Finding] = []
    for ctx in project.files:
        for rule in rules:
            if rule.scope == "file":
                findings.extend(rule.check(ctx))
    for rule in rules:
        if rule.scope == "project":
            findings.extend(rule.check_project(project))
    kept = []
    for finding in findings:
        ctx = _context_for(project, finding.path)
        if ctx is not None and ctx.suppressions.is_suppressed(
            finding.line, finding.rule
        ):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept


def _context_for(project: ProjectContext, path: str) -> Optional[FileContext]:
    for ctx in project.files:
        if ctx.path == path:
            return ctx
    return None


def lint_sources(
    sources: Dict[str, str],
    only: Iterable[str] = (),
    modules: Optional[Dict[str, str]] = None,
) -> LintReport:
    """Lint in-memory sources (the test fixtures' entry point).

    ``sources`` maps display path -> source text; ``modules`` optionally
    maps display path -> dotted module name (defaults to a best-effort
    guess from the path, so fixtures can impersonate real modules).
    """
    project = ProjectContext()
    parse_errors: List[Tuple[str, str]] = []
    for path in sorted(sources):
        module = (modules or {}).get(path, _module_name(pathlib.Path(path)))
        try:
            project.files.append(
                FileContext.from_source(path, sources[path], module=module)
            )
        except SyntaxError as err:
            parse_errors.append((path, f"syntax error: {err.msg} (line {err.lineno})"))
    findings = _run_rules(project, select_rules(only))
    return LintReport(
        findings=findings,
        files_checked=len(project.files),
        parse_errors=parse_errors,
    )


def lint_paths(paths: Sequence[str], only: Iterable[str] = ()) -> LintReport:
    """Lint files and/or directory trees on disk."""
    project = ProjectContext()
    parse_errors: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        display = _display_path(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as err:
            parse_errors.append((display, f"unreadable: {err}"))
            continue
        try:
            project.files.append(
                FileContext.from_source(
                    display, source, module=_module_name(file_path)
                )
            )
        except SyntaxError as err:
            parse_errors.append((display, f"syntax error: {err.msg} (line {err.lineno})"))
    findings = _run_rules(project, select_rules(only))
    return LintReport(
        findings=findings,
        files_checked=len(project.files),
        parse_errors=parse_errors,
    )
