"""Small AST helpers shared by the rule modules.

Nothing here is clever: dotted-name rendering, scope walks, and literal
extraction.  Rules stay readable because these stay dumb.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "dotted_name",
    "terminal_name",
    "call_name",
    "iter_scopes",
    "walk_scope",
    "top_level_functions",
    "nested_function_names",
    "imported_module_names",
    "module_level_names",
    "str_keys",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` for Name/Attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, when it is a plain name chain."""
    return dotted_name(node.func)


def iter_scopes(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every function-ish scope node (module, defs, lambdas)."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes.

    Class bodies are *not* scopes for name binding purposes and are
    descended into.  The scope node itself is not yielded.  Traversal
    is breadth-first in source order, so sibling statements are seen in
    the order they execute (the S303 record tracking relies on this).
    """
    queue: Deque[ast.AST] = deque(ast.iter_child_nodes(scope))
    while queue:
        node = queue.popleft()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            queue.extend(ast.iter_child_nodes(node))


def top_level_functions(tree: ast.Module) -> Set[str]:
    """Names bound to module-top-level function definitions."""
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined *inside* another function or class body.

    These pickle by qualified name and fail to import in a worker
    process, which is exactly what the P-series guards against.
    """
    top = top_level_functions(tree)
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in top:
                names.add(node.name)
    # a top-level def shadowed by a nested def of the same name stays
    # allowed: the dispatch site cannot be told apart statically, and
    # the common case is the module-level one
    return names - top


def imported_module_names(tree: ast.Module) -> Set[str]:
    """Local names bound by ``import``/``from .. import`` statements."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def module_level_names(tree: ast.Module) -> Set[str]:
    """Names assigned at module top level (the worker-mutation targets)."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    elt.id for elt in target.elts if isinstance(elt, ast.Name)
                )
    return names


def str_keys(node: ast.Dict) -> Dict[str, ast.expr]:
    """Constant-string keys of a dict literal -> their value nodes.

    Non-constant keys are unverifiable statically and are skipped;
    ``**spread`` entries (key is None) likewise.
    """
    out: Dict[str, ast.expr] = {}
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out[key.value] = value
    return out


def literal_str(node: ast.expr) -> Optional[str]:
    """The value of a string constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def assign_name_targets(node: ast.AST) -> Tuple[str, ...]:
    """Plain-Name targets of an assignment statement (empty otherwise)."""
    if isinstance(node, ast.Assign):
        return tuple(
            t.id for t in node.targets if isinstance(t, ast.Name)
        )
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return (node.target.id,)
    return ()
