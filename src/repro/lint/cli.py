"""``blockack lint`` / ``python -m repro.lint`` — the analyzer CLI.

Exit codes: 0 clean, 1 findings or unparseable input, 2 usage errors
(argparse's convention).  ``--format json`` emits one machine-readable
document (stable ordering) which CI uploads as an artifact; ``--output``
tees it to a file while keeping the human summary on stdout.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.lint.analyzer import LintReport, lint_paths
from repro.lint.registry import all_rules

__all__ = ["add_lint_arguments", "run_lint_command", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags (shared by ``blockack lint`` and ``-m``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings as human text (default) or one JSON document",
    )
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all), e.g. D101,S303",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _render_rule_list() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.scope:>7}]  {rule.summary}")
        for chunk in _wrap(rule.rationale, 72):
            lines.append(f"       {chunk}")
        lines.append("")
    return "\n".join(lines).rstrip()


def _wrap(text: str, width: int) -> List[str]:
    words = text.split()
    lines: List[str] = []
    current = ""
    for word in words:
        if current and len(current) + 1 + len(word) > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}".strip()
    if current:
        lines.append(current)
    return lines


def _render_text(report: LintReport) -> str:
    lines = []
    for path, message in report.parse_errors:
        lines.append(f"{path}: {message}")
    for finding in report.findings:
        lines.append(finding.render())
    noun = "file" if report.files_checked == 1 else "files"
    if report.findings or report.parse_errors:
        lines.append(
            f"{len(report.findings)} finding(s), "
            f"{len(report.parse_errors)} parse error(s) "
            f"in {report.files_checked} {noun}"
        )
    else:
        lines.append(f"clean: {report.files_checked} {noun} checked")
    return "\n".join(lines)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(_render_rule_list())
        return 0
    only = (args.rules or "").split(",") if args.rules else ()
    try:
        report = lint_paths(args.paths, only=only)
    except KeyError as err:  # unknown rule id
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2
    if args.output:
        out_path = pathlib.Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(report.as_record(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(json.dumps(report.as_record(), indent=2, sort_keys=False))
    else:
        print(_render_text(report))
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="determinism & contract static analyzer",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    raise SystemExit(main())
