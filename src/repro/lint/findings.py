"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one violation at one source location.  Findings
are plain frozen dataclasses so rules can yield them freely and the
driver can sort, deduplicate, filter (suppressions) and serialize them
without ceremony.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How a finding gates the build.

    ``ERROR`` findings fail ``blockack lint`` (exit 1).  ``WARNING``
    findings print but do not gate — reserved for rules still being
    tuned against the codebase (none of the shipped rules use it; the
    tier exists so a new rule can soak before it starts failing CI).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    extra: Dict[str, Any] = field(default_factory=dict, compare=False)

    def as_record(self) -> Dict[str, Any]:
        """JSON-safe form for ``blockack lint --format json``."""
        record: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.extra:
            record["extra"] = dict(self.extra)
        return record

    def render(self) -> str:
        """One-line human form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)
