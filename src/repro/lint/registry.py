"""Rule registry: every lint rule declares itself here.

A rule is a class with an ``id`` (``D101`` …), a one-line ``summary``,
a longer ``rationale`` (what breaks when the rule is violated — shown
by ``blockack lint --list-rules``), and a ``check`` method.  Two rule
scopes exist:

* ``scope = "file"`` — ``check(ctx)`` receives one
  :class:`~repro.lint.analyzer.FileContext` at a time and yields
  findings for that file.  All D- and P-series rules are file rules.
* ``scope = "project"`` — ``check(project)`` receives the whole
  :class:`~repro.lint.analyzer.ProjectContext` (every parsed file) and
  may correlate across artifacts.  The S-series seam contracts are
  project rules: engine surface parity and schema conformance cannot
  be decided one file at a time.

Adding a rule (see DESIGN §15 for the policy):

1. subclass :class:`Rule` in the matching ``rules_*`` module,
2. decorate with :func:`register`,
3. add a failing fixture + a false-positive guard to
   ``tests/test_lint_rules.py`` — a rule without a test proving it
   fires does not ship.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, TYPE_CHECKING

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analyzer import FileContext, ProjectContext

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]

_RULE_ID = re.compile(r"^[DPS]\d{3}$")


class Rule:
    """Base class for lint rules.  Subclass, set the metadata, register."""

    #: unique id: family letter + 3 digits (``D101``, ``P201``, ``S301``)
    id: str = ""
    #: one-line imperative summary ("do not call wall-clock time ...")
    summary: str = ""
    #: what breaks when violated — the reproduction claim at stake
    rationale: str = ""
    #: ``"file"`` or ``"project"`` (see module docstring)
    scope: str = "file"
    severity: Severity = Severity.ERROR

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one file (file-scope rules)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings across the whole tree (project-scope rules)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self, path: str, line: int, col: int, message: str, **extra: object
    ) -> Finding:
        """Convenience constructor stamping this rule's id/severity."""
        return Finding(
            rule=self.id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
            extra=dict(extra),
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and index the rule by id."""
    rule = cls()
    if not _RULE_ID.match(rule.id):
        raise ValueError(f"bad rule id {rule.id!r} (want D/P/S + 3 digits)")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    if not rule.summary:
        raise ValueError(f"rule {rule.id} is missing a summary")
    if rule.scope not in ("file", "project"):
        raise ValueError(f"rule {rule.id}: unknown scope {rule.scope!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (D before P before S)."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def select_rules(only: Iterable[str] = ()) -> List[Rule]:
    """The rules to run: all of them, or the ``only`` subset by id."""
    wanted = [r for r in (s.strip() for s in only) if r]
    if not wanted:
        return all_rules()
    return [get_rule(rule_id) for rule_id in wanted]
