"""D-series rules: determinism by construction.

The reproduction's headline claims — decision traces bit-identical
across engines, sweep results byte-identical across serial/parallel/
cached execution, everything independent of ``PYTHONHASHSEED`` — all
reduce to a handful of source-level disciplines.  Each rule here pins
one of them:

* :class:`WallClockRule` (D101) — simulated time comes from the
  simulator, never the host clock.
* :class:`GlobalRandomRule` (D102) — randomness flows through a seeded
  ``random.Random`` / ``BlockRandom`` instance, never the module-level
  shared state.
* :class:`SetIterationRule` (D103) — ``set`` iteration order is
  ``PYTHONHASHSEED``-dependent; anything iterated must be sorted (or
  consumed order-insensitively).
* :class:`FloatTimeEqualityRule` (D104) — virtual timestamps are
  floats accumulated by addition; ``==`` on them is a latent
  platform/ordering dependence.
* :class:`IdHashOrderRule` (D105) — ``id()`` is an address and
  ``hash()`` is salted; neither may order anything.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.analyzer import FileContext
from repro.lint.astutil import dotted_name, terminal_name, walk_scope
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "SetIterationRule",
    "FloatTimeEqualityRule",
    "IdHashOrderRule",
]


# ---------------------------------------------------------------------------
# D101: wall-clock calls in simulated paths
# ---------------------------------------------------------------------------

#: dotted callables that read the host clock
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
}

#: bare names that, when imported from ``time``/``datetime``, read the clock
_WALL_CLOCK_IMPORTS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "clock_gettime"),
    ("datetime", "datetime"),
}

#: module prefixes where wall-clock is the *point* — the real-time UDP
#: transport drives actual sockets, and the bench harness measures host
#: wall-clock by definition.  Everything else in the tree simulates.
_WALL_CLOCK_ALLOWED = (
    "repro.transport",
    "repro.perf.bench",
)


@register
class WallClockRule(Rule):
    id = "D101"
    summary = "no wall-clock reads (time.time/monotonic/perf_counter/datetime.now) in simulated paths"
    rationale = (
        "Simulated runs must be a pure function of (config, seed): one "
        "host-clock read in a sim path makes decision traces "
        "machine-dependent and breaks the byte-identical sweep cache. "
        "Virtual time comes from Simulator.now; only repro.transport "
        "(real sockets) and repro.perf.bench (a timing harness) may read "
        "the host clock, plus explicitly suppressed measurement lines."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module.startswith(_WALL_CLOCK_ALLOWED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        ctx.path, node.lineno, node.col_offset,
                        f"wall-clock call `{name}()` in a simulated path; "
                        "use the simulator's virtual clock (sim.now)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    if (node.module, alias.name) in _WALL_CLOCK_IMPORTS:
                        yield self.finding(
                            ctx.path, node.lineno, node.col_offset,
                            f"`from {node.module} import {alias.name}` pulls a "
                            "wall-clock reader into a simulated path",
                        )


# ---------------------------------------------------------------------------
# D102: module-level random state
# ---------------------------------------------------------------------------

#: stateful functions of the shared module-level Mersenne Twister
_GLOBAL_RANDOM_FNS = {
    "random", "randrange", "randint", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample",
    "uniform", "triangular", "expovariate", "gauss", "normalvariate",
    "lognormvariate", "vonmisesvariate", "betavariate", "gammavariate",
    "paretovariate", "weibullvariate", "binomialvariate",
    "seed", "getstate", "setstate",
}

#: constructors/classes on the random modules that are fine to name
_RANDOM_CONSTRUCTORS = {
    "Random", "SystemRandom",
    # numpy.random: seeded generator constructors
    "RandomState", "default_rng", "Generator", "MT19937", "SeedSequence",
}


@register
class GlobalRandomRule(Rule):
    id = "D102"
    summary = "no module-level random.* state; randomness flows through a seeded instance"
    rationale = (
        "The shared module-level RNG is invisible global state: any "
        "import-order change or unrelated caller perturbs the stream, "
        "and parallel sweep workers each re-seed it differently. Every "
        "draw must come from a Random/BlockRandom instance owned by the "
        "run config, so (config, seed) reproduces the stream exactly."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if len(parts) == 2 and parts[0] == "random":
                    if parts[1] in _GLOBAL_RANDOM_FNS:
                        yield self.finding(
                            ctx.path, node.lineno, node.col_offset,
                            f"`{name}()` uses the shared module-level RNG; "
                            "draw from a seeded random.Random instance",
                        )
                elif "random" in parts[:-1] and parts[0] in ("np", "numpy"):
                    if parts[-1] not in _RANDOM_CONSTRUCTORS:
                        yield self.finding(
                            ctx.path, node.lineno, node.col_offset,
                            f"`{name}()` uses numpy's global RNG; construct a "
                            "seeded RandomState/Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RANDOM_FNS:
                        yield self.finding(
                            ctx.path, node.lineno, node.col_offset,
                            f"`from random import {alias.name}` binds the "
                            "shared module-level RNG",
                        )


# ---------------------------------------------------------------------------
# D103: unordered set iteration
# ---------------------------------------------------------------------------


def _is_set_expr(node: ast.expr, set_vars: Set[str]) -> bool:
    """Syntactically-known set expressions (plus tracked local names)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra keeps sets sets; one known-set side suffices
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    return False


def _set_vars_of_scope(scope: ast.AST) -> Set[str]:
    """Local names that are only ever assigned set expressions.

    Single-pass, assignment-only flow: a name every one of whose
    ``=``-bindings in this scope is a syntactic set expression is
    treated as a set.  Any non-set binding (or ``for`` target, or
    parameter) disqualifies the name — conservative in the right
    direction for a linter.
    """
    candidates: Dict[str, bool] = {}
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign):
            is_set = _is_set_expr(node.value, set())
            for target in node.targets:
                if isinstance(target, ast.Name):
                    prior = candidates.get(target.id, True)
                    candidates[target.id] = prior and is_set
                else:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            candidates[name_node.id] = False
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    candidates[name_node.id] = False
        elif isinstance(node, ast.AugAssign):
            # ``s |= ...`` keeps a set a set; anything else disqualifies
            if isinstance(node.target, ast.Name) and not isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ):
                candidates[node.target.id] = False
    return {name for name, ok in candidates.items() if ok}


#: callables whose argument order is observable downstream
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}
#: method names whose receiver/argument order is observable
_ORDER_SENSITIVE_METHODS = {"join", "extend"}


@register
class SetIterationRule(Rule):
    id = "D103"
    summary = "no unordered set iteration feeding loops or collections; wrap in sorted()"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history. A set iterated into a loop, list(), tuple(), join() "
        "or extend() leaks hash order into scheduling decisions and "
        "trace emission. Order-insensitive folds (sorted/min/max/sum/"
        "len/any/all, membership) are fine; dicts preserve insertion "
        "order and are not flagged."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: list = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                scopes.append(node)
        for scope in scopes:
            set_vars = _set_vars_of_scope(scope)
            yield from self._check_scope(ctx, scope, set_vars)

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, set_vars: Set[str]
    ) -> Iterator[Finding]:
        for node in walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, set_vars):
                    yield self._finding(ctx, node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, set_vars):
                        # building another set from a set is order-free
                        if isinstance(node, ast.SetComp):
                            continue
                        yield self._finding(ctx, gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                method = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if name in _ORDER_SENSITIVE_CALLS or method in _ORDER_SENSITIVE_METHODS:
                    for arg in node.args:
                        if _is_set_expr(arg, set_vars):
                            yield self._finding(
                                ctx, arg, name or f".{method}()"
                            )

    def _finding(self, ctx: FileContext, node: ast.expr, where: str) -> Finding:
        return self.finding(
            ctx.path, node.lineno, node.col_offset,
            f"set iterated by {where}: order is PYTHONHASHSEED-dependent; "
            "wrap in sorted(...) or restructure",
        )


# ---------------------------------------------------------------------------
# D104: float == on virtual timestamps
# ---------------------------------------------------------------------------

_TS_EXACT = {"now", "deadline", "timestamp", "expiry", "when"}
_TS_SUFFIXES = ("time", "_at")


def _is_timestampish(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    name = terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered in _TS_EXACT or lowered.endswith(_TS_SUFFIXES)


def _is_fractional_float(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != int(node.value)
    )


@register
class FloatTimeEqualityRule(Rule):
    id = "D104"
    summary = "no float ==/!= on virtual timestamps; compare with <=/>= or an epsilon"
    rationale = (
        "Virtual timestamps accumulate by float addition, so equality "
        "is representation-dependent: two paths to 'the same' time can "
        "differ in the last ulp and silently diverge the two engines. "
        "Exact equality is only safe against whole-number sentinels "
        "(0.0, a configured period) that were never accumulated."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                both_ts = _is_timestampish(left) and _is_timestampish(right)
                ts_vs_frac = (
                    (_is_timestampish(left) and _is_fractional_float(right))
                    or (_is_timestampish(right) and _is_fractional_float(left))
                )
                if both_ts or ts_vs_frac:
                    yield self.finding(
                        ctx.path, node.lineno, node.col_offset,
                        "float equality on virtual timestamps; use an "
                        "ordering comparison or an explicit tolerance",
                    )
                    break


# ---------------------------------------------------------------------------
# D105: id()/hash()-based ordering
# ---------------------------------------------------------------------------


def _calls_id_or_hash(node: ast.expr) -> Optional[str]:
    """Name of the offending builtin if ``node`` computes id()/hash()."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id in ("id", "hash"):
                return sub.func.id
    return None


_SORTING_CALLS = {"sorted", "min", "max"}
_SORTING_METHODS = {"sort"}


@register
class IdHashOrderRule(Rule):
    id = "D105"
    summary = "no id()/hash() as a sort key or in ordering comparisons"
    rationale = (
        "id() is a memory address and hash() is salted by "
        "PYTHONHASHSEED: both produce a different total order every "
        "process. Ordering ties must break on stable payload (seq, "
        "time, name), like the engines' (time, seq) event keys."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                method = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if name in _SORTING_CALLS or method in _SORTING_METHODS:
                    for kw in node.keywords:
                        if kw.arg != "key":
                            continue
                        offender = self._key_offender(kw.value)
                        if offender:
                            yield self.finding(
                                ctx.path, kw.value.lineno, kw.value.col_offset,
                                f"`{offender}()` used as a sort key; order by "
                                "stable payload instead",
                            )
            elif isinstance(node, ast.Compare):
                if not any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                ):
                    continue
                for side in (node.left, *node.comparators):
                    if (
                        isinstance(side, ast.Call)
                        and isinstance(side.func, ast.Name)
                        and side.func.id in ("id", "hash")
                    ):
                        yield self.finding(
                            ctx.path, node.lineno, node.col_offset,
                            f"ordering comparison on `{side.func.id}()`; "
                            "both are process-dependent",
                        )
                        break

    @staticmethod
    def _key_offender(key: ast.expr) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        if isinstance(key, ast.Lambda):
            return _calls_id_or_hash(key.body)
        return None
