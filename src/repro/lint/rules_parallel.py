"""P-series rules: process-pool boundary safety.

The parallel sweep runner (:mod:`repro.perf.sweep`) promises that
``--jobs N`` produces byte-identical results to a serial run.  That
only holds if everything crossing the worker boundary pickles by
importable name and the workers share no mutable module state:

* :class:`PoolTargetRule` (P201) — callables handed to
  ``pool.submit``/``pool.map`` must be module-top-level functions
  (no lambdas, no nested closures, no bound methods).
* :class:`WorkerGlobalMutationRule` (P202) — a pool-target function
  must not mutate module-level state: each worker process has its own
  copy, so the mutation silently diverges from the serial path.

Both rules resolve dispatch sites by name heuristics (the receiver is
called ``*pool*`` or ``*executor*``), which matches how this codebase
names its ``ProcessPoolExecutor`` handles, and stay silent on anything
they cannot resolve — a linter should miss quietly, not cry wolf.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.analyzer import FileContext
from repro.lint.astutil import (
    dotted_name,
    imported_module_names,
    module_level_names,
    nested_function_names,
    terminal_name,
    top_level_functions,
    walk_scope,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["PoolTargetRule", "WorkerGlobalMutationRule", "pool_dispatch_sites"]

#: executor methods whose first argument is the callable shipped to workers
_DISPATCH_METHODS = {
    "submit", "map", "starmap", "apply", "apply_async",
    "imap", "imap_unordered",
}


def _is_pool_receiver(node: ast.expr) -> bool:
    name = terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return "pool" in lowered or "executor" in lowered


def pool_dispatch_sites(tree: ast.Module) -> List[ast.Call]:
    """Every ``<pool>.submit/map/...`` call site in the module."""
    sites = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_METHODS
            and node.args
            and _is_pool_receiver(node.func.value)
        ):
            sites.append(node)
    return sites


def _lambda_bound_names(tree: ast.Module) -> Set[str]:
    """Names assigned a lambda anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@register
class PoolTargetRule(Rule):
    id = "P201"
    summary = "pool-dispatched callables must be top-level functions (picklable by name)"
    rationale = (
        "ProcessPoolExecutor pickles the callable by qualified name and "
        "re-imports it in the worker. Lambdas and nested closures do "
        "not pickle at all; bound methods drag their whole instance "
        "across the boundary. Either breaks --jobs N, or worse, ships "
        "stale captured state that the serial path never sees."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        sites = pool_dispatch_sites(tree)
        if not sites:
            return
        nested = nested_function_names(tree)
        lambda_names = _lambda_bound_names(tree)
        imports = imported_module_names(tree)
        for site in sites:
            target = site.args[0]
            problem = self._describe_problem(
                target, nested, lambda_names, imports
            )
            if problem:
                yield self.finding(
                    ctx.path, target.lineno, target.col_offset, problem
                )

    def _describe_problem(
        self,
        target: ast.expr,
        nested: Set[str],
        lambda_names: Set[str],
        imports: Set[str],
    ) -> Optional[str]:
        if isinstance(target, ast.Lambda):
            return (
                "lambda dispatched to a process pool: lambdas do not "
                "pickle; hoist it to a top-level def"
            )
        if isinstance(target, ast.Name):
            if target.id in nested:
                return (
                    f"nested function `{target.id}` dispatched to a process "
                    "pool: closures do not pickle; hoist it to module level"
                )
            if target.id in lambda_names:
                return (
                    f"`{target.id}` is bound to a lambda and dispatched to a "
                    "process pool; make it a top-level def"
                )
            return None  # top-level def, import, or unresolvable: allowed
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                return (
                    f"bound method `self.{target.attr}` dispatched to a "
                    "process pool: it pickles the whole instance; use a "
                    "top-level function taking explicit arguments"
                )
            # functools.partial(fn, ...) and module.function are fine when
            # the base resolves to an import; anything else is unresolvable
            return None
        if isinstance(target, ast.Call):
            # partial(fn, ...): vet the wrapped callable recursively
            name = dotted_name(target.func)
            if name in ("functools.partial", "partial") and target.args:
                return self._describe_problem(
                    target.args[0], nested, lambda_names, imports
                )
            return None
        return None


@register
class WorkerGlobalMutationRule(Rule):
    id = "P202"
    summary = "pool-target functions must not mutate module-level state"
    rationale = (
        "Each worker process owns a private copy of every module "
        "global: a pool-target that writes one (global statement, or "
        "a mutation of a module-level dict/list/set) computes different "
        "state under --jobs N than serially, which breaks the "
        "byte-identical sweep guarantee and poisons the result cache."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        sites = pool_dispatch_sites(tree)
        if not sites:
            return
        top_defs: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        target_names: Set[str] = set()
        for site in sites:
            target = site.args[0]
            if isinstance(target, ast.Call):  # partial(fn, ...)
                name = dotted_name(target.func)
                if name in ("functools.partial", "partial") and target.args:
                    target = target.args[0]
            if isinstance(target, ast.Name) and target.id in top_defs:
                target_names.add(target.id)
        module_names = module_level_names(tree)
        for name in sorted(target_names):
            yield from self._check_worker(ctx, top_defs[name], module_names)

    def _check_worker(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef,
        module_names: Set[str],
    ) -> Iterator[Finding]:
        declared_global: Set[str] = set()
        local_names: Set[str] = {
            arg.arg
            for arg in (
                *fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs
            )
        }
        if fn.args.vararg:
            local_names.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            local_names.add(fn.args.kwarg.arg)
        for node in walk_scope(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name) and isinstance(
                            name_node.ctx, ast.Store
                        ):
                            local_names.add(name_node.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        local_names.add(name_node.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for name_node in ast.walk(item.optional_vars):
                            if isinstance(name_node, ast.Name):
                                local_names.add(name_node.id)
        for node in walk_scope(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.finding(
                    ctx.path, node.lineno, node.col_offset,
                    f"pool-target `{fn.name}` declares "
                    f"`global {', '.join(node.names)}`: worker-side writes "
                    "never reach the parent process",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = self._subscript_root(target)
                    if root is not None and (
                        root in declared_global
                        or (root in module_names and root not in local_names)
                    ):
                        yield self.finding(
                            ctx.path, target.lineno, target.col_offset,
                            f"pool-target `{fn.name}` mutates module-level "
                            f"`{root}`: each worker mutates a private copy, "
                            "diverging from the serial path",
                        )

    @staticmethod
    def _subscript_root(target: ast.expr) -> Optional[str]:
        """Root name of ``NAME[...] = ..`` / ``NAME.attr = ..`` writes."""
        node = target
        seen_deref = False
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            seen_deref = True
            node = node.value
        if seen_deref and isinstance(node, ast.Name):
            return node.id
        return None
