"""S-series rules: cross-artifact seam contracts.

The determinism story spans files: the two engines must stay
swappable, the observability seams must stay duck-safe (so the
uninstrumented hot loops never pay for them), and everything exported
to ``.jsonl`` must match the pinned schema that CI, ``obs diff`` and
external tooling parse.  These rules correlate artifacts that no
per-file linter can see together:

* :class:`EngineSurfaceParityRule` (S301) — ``Simulator`` and
  ``FastSimulator`` expose identical public surfaces (names and
  signatures), so ``engine=fast`` is always a drop-in.
* :class:`TimerSeamRule` (S302) — the ``timer_observer`` seam is only
  ever invoked via ``getattr(sim, "timer_observer", None)`` + a None
  check, never as a direct attribute call.
* :class:`ObsSchemaConformanceRule` (S303) — every field name emitted
  into a typed obs record exists in the pinned
  :mod:`repro.obs.schema` field tables (required or optional).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.analyzer import FileContext, ProjectContext
from repro.lint.astutil import str_keys, walk_scope
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = [
    "EngineSurfaceParityRule",
    "TimerSeamRule",
    "ObsSchemaConformanceRule",
]

_ENGINE_MODULE = "repro.sim.engine"
_ENGINE_CLASSES = ("Simulator", "FastSimulator")
_SCHEMA_MODULE = "repro.obs.schema"


# ---------------------------------------------------------------------------
# S301: engine public-surface parity
# ---------------------------------------------------------------------------


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _public_surface(cls: ast.ClassDef) -> Dict[str, Optional[Tuple[str, ...]]]:
    """Public attribute name -> positional-arg names (None for data attrs).

    Methods map to their argument names (minus ``self``), properties to
    an empty tuple, and class-level data attributes (the
    ``timer_observer`` seam default) to ``None``.
    """
    surface: Dict[str, Optional[Tuple[str, ...]]] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                continue
            is_property = any(
                isinstance(dec, ast.Name) and dec.id == "property"
                for dec in node.decorator_list
            )
            if is_property:
                surface[node.name] = ()
            else:
                args = tuple(
                    arg.arg
                    for arg in (*node.args.posonlyargs, *node.args.args)
                )
                surface[node.name] = args[1:] if args[:1] == ("self",) else args
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    surface[target.id] = None
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and not node.target.id.startswith("_"):
                surface[node.target.id] = None
    return surface


@register
class EngineSurfaceParityRule(Rule):
    id = "S301"
    scope = "project"
    summary = "Simulator and FastSimulator must expose identical public surfaces"
    rationale = (
        "engine=fast is documented as a drop-in: runner, host, timers "
        "and instruments talk to whichever engine the config selects "
        "through one duck-typed surface. A public method, property or "
        "seam attribute present on one engine and not the other (or "
        "with different argument names) is silent drift that only "
        "explodes when a caller flips engines."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = project.get_module(_ENGINE_MODULE)
        if ctx is None:
            return
        classes = {}
        for name in _ENGINE_CLASSES:
            cls = _find_class(ctx.tree, name)
            if cls is None:
                yield self.finding(
                    ctx.path, 1, 0,
                    f"engine module no longer defines `{name}`; the "
                    "engine-parity contract cannot be checked",
                )
                return
            classes[name] = cls
        base_name, fast_name = _ENGINE_CLASSES
        base = _public_surface(classes[base_name])
        fast = _public_surface(classes[fast_name])
        for missing in sorted(set(base) - set(fast)):
            yield self.finding(
                ctx.path, classes[fast_name].lineno, classes[fast_name].col_offset,
                f"`{fast_name}` is missing public attribute `{missing}` "
                f"present on `{base_name}`",
            )
        for extra in sorted(set(fast) - set(base)):
            yield self.finding(
                ctx.path, classes[base_name].lineno, classes[base_name].col_offset,
                f"`{base_name}` is missing public attribute `{extra}` "
                f"present on `{fast_name}`",
            )
        for name in sorted(set(base) & set(fast)):
            sig_a, sig_b = base[name], fast[name]
            if sig_a is not None and sig_b is not None and sig_a != sig_b:
                yield self.finding(
                    ctx.path, classes[fast_name].lineno,
                    classes[fast_name].col_offset,
                    f"`{name}` signatures diverge between engines: "
                    f"{base_name}({', '.join(sig_a)}) vs "
                    f"{fast_name}({', '.join(sig_b)})",
                )


# ---------------------------------------------------------------------------
# S302: timer_observer seam duck-safety
# ---------------------------------------------------------------------------


@register
class TimerSeamRule(Rule):
    id = "S302"
    summary = "invoke the timer_observer seam only via getattr(sim, 'timer_observer', None)"
    rationale = (
        "The seam defaults to None on both engines and is swapped in "
        "per run; FastSimulator is __slots__-bound. Direct attribute "
        "invocation (`sim.timer_observer(op, t)`) crashes on every "
        "unobserved run and couples callers to one engine's layout. "
        "The contract is fetch-with-default then None-check, which "
        "keeps the uninstrumented hot path allocation- and branch-free."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "timer_observer"
                and node.args
            ):
                # zero-arg calls are observer *factories* (e.g.
                # CausalRecorder.timer_observer() building the hook);
                # the seam itself is always invoked with (op, timer)
                yield self.finding(
                    ctx.path, node.lineno, node.col_offset,
                    "direct `<obj>.timer_observer(...)` invocation; fetch "
                    "via getattr(sim, 'timer_observer', None) and None-check",
                )


# ---------------------------------------------------------------------------
# S303: obs record fields must exist in the pinned schema
# ---------------------------------------------------------------------------


def _schema_tables(tree: ast.Module) -> Optional[Dict[str, Set[str]]]:
    """record type -> allowed field names, from _FIELDS ∪ _OPTIONAL_FIELDS."""
    allowed: Dict[str, Set[str]] = {}
    found_required = False
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not names or names[0] not in ("_FIELDS", "_OPTIONAL_FIELDS"):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        if names[0] == "_FIELDS":
            found_required = True
        for rec_type, fields_node in str_keys(node.value).items():
            if isinstance(fields_node, ast.Dict):
                allowed.setdefault(rec_type, set()).update(
                    str_keys(fields_node)
                )
    return allowed if found_required else None


@register
class ObsSchemaConformanceRule(Rule):
    id = "S303"
    scope = "project"
    summary = "every obs record field emitted in code exists in the pinned repro.obs schema"
    rationale = (
        "The .jsonl export is a parsed contract: CI artifacts, obs "
        "diff, and external tooling key on field names. A field emitted "
        "in code but absent from repro.obs.schema is schema drift — it "
        "ships unvalidated and breaks consumers silently. Emit only "
        "pinned fields; pin new ones in _FIELDS (required) or "
        "_OPTIONAL_FIELDS (additive) first."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        schema_ctx = project.get_module(_SCHEMA_MODULE)
        if schema_ctx is None:
            return
        allowed = _schema_tables(schema_ctx.tree)
        if allowed is None:
            yield self.finding(
                schema_ctx.path, 1, 0,
                "could not locate the `_FIELDS` literal in the schema "
                "module; the emission contract cannot be checked",
            )
            return
        for ctx in project.files:
            if ctx.module == _SCHEMA_MODULE:
                continue
            yield from self._check_file(ctx, allowed)

    def _check_file(
        self, ctx: FileContext, allowed: Dict[str, Set[str]]
    ) -> Iterator[Finding]:
        for scope in self._scopes(ctx.tree):
            # typed-record dict literals assigned to a local name may
            # grow fields via `name["field"] = ...` later in the scope
            tracked: Dict[str, str] = {}
            for node in walk_scope(scope):
                if isinstance(node, ast.Dict):
                    rec_type = self._record_type(node, allowed)
                    if rec_type is None:
                        continue
                    yield from self._check_literal(ctx, node, rec_type, allowed)
                elif isinstance(node, ast.Assign):
                    if isinstance(node.value, ast.Dict):
                        rec_type = self._record_type(node.value, allowed)
                        if rec_type is not None:
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    tracked[target.id] = rec_type
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in tracked
                        ):
                            key = target.slice
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                rec_type = tracked[target.value.id]
                                if key.value not in allowed[rec_type] and key.value != "type":
                                    yield self._drift(
                                        ctx, target, key.value, rec_type
                                    )

    @staticmethod
    def _scopes(tree: ast.Module) -> List[ast.AST]:
        scopes: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        return scopes

    @staticmethod
    def _record_type(
        node: ast.Dict, allowed: Dict[str, Set[str]]
    ) -> Optional[str]:
        type_node = str_keys(node).get("type")
        if (
            type_node is not None
            and isinstance(type_node, ast.Constant)
            and isinstance(type_node.value, str)
            and type_node.value in allowed
        ):
            return type_node.value
        return None

    def _check_literal(
        self,
        ctx: FileContext,
        node: ast.Dict,
        rec_type: str,
        allowed: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        for field in str_keys(node):
            if field != "type" and field not in allowed[rec_type]:
                yield self._drift(ctx, node, field, rec_type)

    def _drift(
        self, ctx: FileContext, node: ast.AST, field: str, rec_type: str
    ) -> Finding:
        return self.finding(
            ctx.path, node.lineno, node.col_offset,
            f"field `{field}` emitted for record type `{rec_type}` is not "
            "pinned in repro.obs.schema (_FIELDS/_OPTIONAL_FIELDS)",
        )
