"""Inline suppressions: ``# lint: ignore[RULE]``.

Suppression policy (DESIGN §15): a finding may be silenced only on the
exact line it fires on, only by naming the rule, and the comment is the
audit trail — ``# lint: ignore[D101]`` says "yes, this really is
wall-clock, on purpose".  Forms::

    start = time.perf_counter()   # lint: ignore[D101]
    ...                           # lint: ignore[D101,P201]
    ...                           # lint: ignore

The bare form (no bracket) silences every rule on that line; prefer the
named form so the next reader knows *which* contract is being waived.
Rule ids are case-sensitive.  Suppressions are extracted from the raw
source text (not the AST) so they survive inside any statement, and a
multi-line statement can carry the comment on whichever physical line
the finding points at.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

__all__ = ["SuppressionIndex", "parse_suppressions"]

#: matches the suppression comment anywhere in a physical line
_PATTERN = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)

#: sentinel rule-set meaning "every rule"
ALL_RULES: FrozenSet[str] = frozenset({"*"})


class SuppressionIndex:
    """Per-file map of physical line number -> suppressed rule ids."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]):
        self._by_line = by_line

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rules is ALL_RULES or "*" in rules or rule_id in rules

    def __len__(self) -> int:
        return len(self._by_line)

    def lines(self) -> Dict[int, FrozenSet[str]]:
        """The raw mapping (used by tests and ``--list-suppressions``)."""
        return dict(self._by_line)


def _parse_comment(text: str) -> Optional[FrozenSet[str]]:
    match = _PATTERN.search(text)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return ALL_RULES
    names = frozenset(name.strip() for name in rules.split(",") if name.strip())
    # an empty bracket (``ignore[]``) suppresses nothing — treat as a
    # malformed comment rather than a blanket waiver
    return names or None


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan raw source text for suppression comments, line by line."""
    by_line: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        rules = _parse_comment(text)
        if rules is not None:
            by_line[lineno] = rules
    return SuppressionIndex(by_line)
