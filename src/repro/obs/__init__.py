"""Unified telemetry layer: metrics, spans, structured export, probes.

``repro.obs`` is the single observability backbone for the simulator,
the protocol endpoints, the channels, the robustness controller, and the
UDP transport.  It has four cooperating pieces:

* :mod:`repro.obs.metrics` — a metrics registry
  (:class:`~repro.obs.metrics.Counter` /
  :class:`~repro.obs.metrics.Gauge` /
  :class:`~repro.obs.metrics.Histogram`, with labels and fixed bucket
  boundaries for RTT/latency distributions).  A process-global
  :data:`~repro.obs.metrics.DEFAULT_REGISTRY` exists for ad-hoc use, and
  per-run scoped registries keep parallel sweep workers isolated.  The
  **null path** is allocation-free: :data:`~repro.obs.metrics.NULL_REGISTRY`
  hands out no-op singleton instruments, so code can be instrumented
  unconditionally and pay ~nothing when observability is off.
* :mod:`repro.obs.spans` — virtual-time spans keyed off ``Simulator.now``
  tracking the per-sequence-number lifecycle
  ``submitted -> sent -> [resend...] -> acked -> delivered`` and deriving
  metrics (retransmits per seq, ack-block sizes ``n-m+1``, time in
  window, submit-to-deliver latency).
* :mod:`repro.obs.sink` — structured export: a
  :class:`~repro.obs.sink.JsonlSink` streaming trace events, spans, and
  metric snapshots to ``results/obs/<run_id>.jsonl`` with the stable
  schema of :mod:`repro.obs.schema`, plus snapshot diffing for the
  ``blockack obs diff`` subcommand.  Prometheus text rendering lives in
  :class:`~repro.obs.metrics.TextExposition`.
* :mod:`repro.obs.probes` — live invariant probes: the runtime monitors
  of :mod:`repro.verify.runtime` adapted into cheap sampling checks
  (invariant 6 ∧ 7 ∧ 8 every N channel events) that record violations as
  metrics and trace NOTEs instead of raising.

:class:`~repro.obs.session.Observability` bundles all of it per run;
``run_transfer(..., obs=True)`` and ``blockack run e3 --obs`` are the two
entry points most callers want.
"""

from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TextExposition,
)
from repro.obs.probes import InvariantProbe
from repro.obs.session import Observability
from repro.obs.sink import JsonlSink, diff_snapshots, load_run, summarize_run
from repro.obs.spans import ObsRecorder, SeqSpan, SpanTracker

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TextExposition",
    "DEFAULT_REGISTRY",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "SpanTracker",
    "SeqSpan",
    "ObsRecorder",
    "JsonlSink",
    "load_run",
    "summarize_run",
    "diff_snapshots",
    "InvariantProbe",
    "Observability",
]
