"""Root-cause analysis over causal dumps: ``blockack analyze``.

Input is any ``repro.obs/v2`` JSONL file — a flight dump written by the
:class:`~repro.obs.causal.CausalRecorder` when an anomaly trigger fired
(``results/obs/flight/<run_id>.jsonl``), or a regular telemetry export
(which carries spans and attribution records but no causal nodes).  The
analysis reconstructs, per sequence number, the chain the causal graph
recorded — losses, timeouts, backoff ladder, retransmissions — finds
the stalls in the delivery timeline, and names the root cause of each::

    seq 41: 3 losses -> Karn backoff x8 -> window stall 2.10tu

``--perfetto`` additionally writes the run as Chrome/Perfetto
trace-event JSON (one complete event per delivered seq with its latency
attribution in the args, instants for triggers/faults/losses), viewable
at https://ui.perfetto.dev.  One virtual time unit maps to 1ms of trace
time (ts is microseconds), so durations read directly in tu.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.sink import read_records

__all__ = [
    "Analysis",
    "load_analysis",
    "seq_chains",
    "find_stalls",
    "root_causes",
    "render_report",
    "perfetto_trace",
    "write_perfetto",
]

#: trace-time scale: one virtual tu rendered as this many microseconds
US_PER_TU = 1000.0

#: a delivery gap this many times the median inter-delivery gap (and at
#: least one RTO-ish unit) counts as a stall in the timeline
STALL_GAP_FACTOR = 4.0


class Analysis:
    """One loaded dump, split by record type."""

    def __init__(self, path: pathlib.Path, records: List[dict]) -> None:
        self.path = path
        self.meta: dict = {}
        self.triggers: List[dict] = []
        self.nodes: List[dict] = []
        self.attributions: List[dict] = []
        self.states: List[dict] = []
        self.spans: List[dict] = []
        for record in records:
            kind = record.get("type")
            if kind == "meta":
                self.meta = record
            elif kind == "trigger":
                self.triggers.append(record)
            elif kind == "causal":
                self.nodes.append(record)
            elif kind == "attribution":
                self.attributions.append(record)
            elif kind == "state":
                self.states.append(record)
            elif kind == "span":
                self.spans.append(record)

    @property
    def run_id(self) -> str:
        return self.meta.get("run_id", self.path.stem)

    @property
    def labels(self) -> dict:
        return self.meta.get("labels") or {}


def load_analysis(path) -> Analysis:
    path = pathlib.Path(path)
    return Analysis(path, read_records(path))


# ----------------------------------------------------------------------
# per-seq chains
# ----------------------------------------------------------------------


def seq_chains(analysis: Analysis) -> Dict[Tuple, List[dict]]:
    """Causal nodes grouped by ``(flow, seq)``, in recording order."""
    chains: Dict[Tuple, List[dict]] = {}
    for node in analysis.nodes:
        seq = node.get("seq")
        if seq is None:
            continue
        chains.setdefault((node.get("flow"), seq), []).append(node)
    return chains


def _max_attempts(chain: List[dict]) -> int:
    """Deepest backoff-ladder position seen in a chain's RTO verdicts."""
    deepest = 0
    for node in chain:
        if node.get("kind") != "rto.verdict":
            continue
        detail = node.get("detail") or ""
        marker = "attempts="
        at = detail.find(marker)
        if at >= 0:
            try:
                deepest = max(deepest, int(detail[at + len(marker):]))
            except ValueError:
                pass
    return deepest


def _chain_facts(chain: List[dict]) -> dict:
    """Loss/timeout/resend counts and key times for one seq's chain."""
    facts = {
        "losses": 0,
        "timeouts": 0,
        "resends": 0,
        "attempts": _max_attempts(chain),
        "first_sent": None,
        "delivered": None,
        "submitted": None,
    }
    for node in chain:
        kind = node.get("kind")
        if kind in ("channel.lose", "channel.age"):
            facts["losses"] += 1
        elif kind == "timeout":
            facts["timeouts"] += 1
        elif kind == "resend_data":
            facts["resends"] += 1
        elif kind == "send_data" and facts["first_sent"] is None:
            facts["first_sent"] = node["time"]
        elif kind == "submit" and facts["submitted"] is None:
            facts["submitted"] = node["time"]
        elif kind == "deliver":
            facts["delivered"] = node["time"]
    return facts


# ----------------------------------------------------------------------
# stall timeline
# ----------------------------------------------------------------------


def find_stalls(
    analysis: Analysis, factor: float = STALL_GAP_FACTOR
) -> List[dict]:
    """Gaps in the delivery timeline, largest first.

    A stall is an inter-delivery gap more than ``factor`` times the
    median gap.  Each stall names the seq whose delivery *ended* it —
    the message the window was waiting on.
    """
    delivers = sorted(
        (
            (node["time"], node.get("flow"), node["seq"])
            for node in analysis.nodes
            if node.get("kind") == "deliver" and node.get("seq") is not None
        ),
    )
    if len(delivers) < 3:
        return []
    gaps = [
        delivers[i][0] - delivers[i - 1][0] for i in range(1, len(delivers))
    ]
    ordered = sorted(gaps)
    median = ordered[len(ordered) // 2]
    threshold = max(factor * median, 1e-9)
    stalls = []
    for i, gap in enumerate(gaps, start=1):
        if gap > threshold:
            time, flow, seq = delivers[i]
            stalls.append({
                "start": delivers[i - 1][0],
                "end": time,
                "duration": gap,
                "flow": flow,
                "seq": seq,
            })
    stalls.sort(key=lambda stall: -stall["duration"])
    return stalls


# ----------------------------------------------------------------------
# root causes
# ----------------------------------------------------------------------


def _cause_line(flow, seq, facts: dict, stall: Optional[float]) -> str:
    where = f"seq {seq}" if flow is None else f"flow {flow} seq {seq}"
    causes = []
    if facts["losses"]:
        plural = "es" if facts["losses"] != 1 else ""
        causes.append(f"{facts['losses']} loss{plural}")
    if facts["attempts"] > 1:
        causes.append(f"Karn backoff x{2 ** (facts['attempts'] - 1)}")
    elif facts["timeouts"]:
        causes.append(f"{facts['timeouts']} timeout(s)")
    if facts["resends"]:
        causes.append(f"{facts['resends']} retransmission(s)")
    if stall is not None:
        causes.append(f"window stall {stall:.2f}tu")
    if not causes:
        causes.append("clean delivery")
    return f"{where}: " + " -> ".join(causes)


def root_causes(analysis: Analysis, limit: int = 10) -> List[str]:
    """One line per troubled seq, worst (longest stall) first."""
    chains = seq_chains(analysis)
    stalls = {
        (stall["flow"], stall["seq"]): stall["duration"]
        for stall in find_stalls(analysis)
    }
    troubled = []
    for key, chain in chains.items():
        facts = _chain_facts(chain)
        if not (facts["losses"] or facts["resends"] or facts["timeouts"]):
            continue
        stall = stalls.get(key)
        rank = stall if stall is not None else 0.0
        troubled.append((rank, key, facts, stall))
    troubled.sort(key=lambda item: (-item[0], item[1][0] or 0, item[1][1]))
    return [
        _cause_line(key[0], key[1], facts, stall)
        for _, key, facts, stall in troubled[:limit]
    ]


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------


def render_report(analysis: Analysis, limit: int = 10) -> str:
    lines = [f"analyze {analysis.run_id}  ({analysis.path})"]
    labels = analysis.labels
    if labels:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        lines.append(f"  labels: {rendered}")
    lines.append(
        f"  records: {len(analysis.nodes)} causal nodes, "
        f"{len(analysis.attributions)} attributions, "
        f"{len(analysis.triggers)} trigger(s), "
        f"{len(analysis.states)} state snapshot(s)"
    )

    for trigger in analysis.triggers:
        detail = trigger.get("detail")
        suffix = f" ({detail})" if detail else ""
        lines.append(
            f"  trigger @ {trigger['time']:.2f}tu: "
            f"{trigger['reason']}{suffix}"
        )

    stalls = find_stalls(analysis)
    if stalls:
        lines.append("  stall timeline (largest first):")
        for stall in stalls[:limit]:
            who = (
                f"seq {stall['seq']}"
                if stall["flow"] is None
                else f"flow {stall['flow']} seq {stall['seq']}"
            )
            lines.append(
                f"    {stall['start']:.2f} -> {stall['end']:.2f}tu "
                f"({stall['duration']:.2f}tu) waiting on {who}"
            )

    causes = root_causes(analysis, limit=limit)
    if causes:
        lines.append("  root causes:")
        lines.extend(f"    {line}" for line in causes)

    if analysis.attributions:
        totals = {
            "queue_wait": 0.0, "timer_wait": 0.0,
            "retx_wait": 0.0, "propagation": 0.0,
        }
        grand = 0.0
        for record in analysis.attributions:
            grand += record["total"]
            for component in totals:
                totals[component] += record[component]
        lines.append(
            f"  latency attribution over {len(analysis.attributions)} "
            f"delivered seq(s), total {grand:.2f}tu:"
        )
        for component, value in totals.items():
            share = 100.0 * value / grand if grand > 0 else 0.0
            lines.append(f"    {component:12s} {value:10.2f}tu  {share:5.1f}%")

    if len(lines) == 1:
        lines.append("  nothing to analyze (no recognized records)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Perfetto / Chrome trace-event export
# ----------------------------------------------------------------------


def perfetto_trace(analysis: Analysis) -> dict:
    """The run as Chrome trace-event JSON (https://ui.perfetto.dev)."""
    events: List[dict] = [
        {
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": f"blockack {analysis.run_id}"},
        },
    ]
    attribution_by_key = {
        (record.get("flow"), record["seq"]): record
        for record in analysis.attributions
    }

    # one complete event per delivered seq: submit -> deliver, with the
    # latency attribution riding the args
    chains = seq_chains(analysis)
    flows_seen = set()
    emitted = set()
    for (flow, seq), chain in sorted(
        chains.items(), key=lambda item: (item[0][0] is not None, item[0])
    ):
        facts = _chain_facts(chain)
        start = facts["submitted"]
        if start is None:
            start = facts["first_sent"]
        end = facts["delivered"]
        if start is None or end is None:
            continue
        tid = (flow or 0) + 1
        flows_seen.add((flow, tid))
        args: Dict[str, Any] = {
            "losses": facts["losses"],
            "resends": facts["resends"],
            "timeouts": facts["timeouts"],
        }
        attribution = attribution_by_key.get((flow, seq))
        if attribution is not None:
            for component in (
                "total", "queue_wait", "timer_wait", "retx_wait",
                "propagation",
            ):
                args[component] = attribution[component]
        events.append({
            "ph": "X", "pid": 1, "tid": tid, "name": f"seq {seq}",
            "cat": "seq", "ts": start * US_PER_TU,
            "dur": max(0.0, (end - start)) * US_PER_TU, "args": args,
        })
        emitted.add((flow, seq))
    # spans from a plain telemetry export fill in when nodes are absent
    for span in analysis.spans:
        key = (span.get("flow"), span["seq"])
        if key in emitted:
            continue
        if span.get("submitted") is None or span.get("delivered") is None:
            continue
        tid = (key[0] or 0) + 1
        flows_seen.add((key[0], tid))
        events.append({
            "ph": "X", "pid": 1, "tid": tid, "name": f"seq {span['seq']}",
            "cat": "seq", "ts": span["submitted"] * US_PER_TU,
            "dur": (span["delivered"] - span["submitted"]) * US_PER_TU,
            "args": {
                "resends": span.get("resends", 0),
                "timeouts": span.get("timeouts", 0),
            },
        })

    for flow, tid in sorted(flows_seen, key=lambda item: item[1]):
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": "seqs" if flow is None else f"flow {flow}"},
        })

    # instants: anomaly triggers, faults, and channel losses
    for trigger in analysis.triggers:
        events.append({
            "ph": "i", "pid": 1, "tid": 0, "s": "g", "cat": "trigger",
            "name": f"trigger:{trigger['reason']}",
            "ts": trigger["time"] * US_PER_TU,
        })
    for node in analysis.nodes:
        kind = node.get("kind", "")
        if kind.startswith("fault."):
            events.append({
                "ph": "i", "pid": 1, "tid": 0, "s": "p", "cat": "fault",
                "name": f"{kind} {node.get('actor', '')}".strip(),
                "ts": node["time"] * US_PER_TU,
            })
        elif kind in ("channel.lose", "channel.age"):
            tid = (node.get("flow") or 0) + 1
            events.append({
                "ph": "i", "pid": 1, "tid": tid, "s": "t", "cat": "loss",
                "name": f"{kind} seq {node.get('seq')}",
                "ts": node["time"] * US_PER_TU,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(analysis: Analysis, path) -> pathlib.Path:
    """Write the trace-event JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(perfetto_trace(analysis), handle, separators=(",", ":"))
        handle.write("\n")
    return path
