"""Causal event graph, flight recorder, and exact latency attribution.

Counters say *that* a run went wrong; this module records *why*.  A
:class:`CausalRecorder` turns every protocol-relevant event — submit,
send/resend, channel transit outcomes (deliver/lose/age/duplicate),
acks, timer arm/fire/cancel, RTO verdicts, state-corruption injection,
guard/repair firings, endpoint crash/restart, invariant-probe findings —
into a node of a per-seq causal graph with parent edges (timer-fire →
retransmit → delivery).  Nodes come from the existing instrument seams
only (the trace-recorder tee, channel observers, the controller
instruments duck-type, the fault-plan observer, and the timers' sim-level
observer), so the stream is identical under the heap and calendar-queue
engines: both produce bit-identical decision traces, and every hook here
fires synchronously inside the same callbacks.

Three products sit on the graph:

* **flight recorder** — an always-on bounded ring
  (:data:`FLIGHT_RING_CAPACITY` nodes).  When an anomaly trigger fires
  (link-dead verdict, stabilization ``degraded``/``diverged`` grade, RTO
  backoff ladder >= :data:`BACKOFF_TRIGGER_ATTEMPTS`, invariant-probe
  violation, Jain fairness below :data:`FAIRNESS_TRIGGER_THRESHOLD`) the
  ring is frozen, endpoint-state snapshots are taken, and a dump streams
  to ``results/obs/flight/<run_id>.jsonl`` under ``repro.obs/v2`` — the
  file keeps growing with post-trigger events and is flushed at every
  fault boundary, so even a run killed mid-flight leaves a parseable
  record.  Clean runs write nothing.

* **latency attribution** — each delivered seq's latency decomposed into
  ``queue_wait`` (submit → first send, plus any link-arbiter hold
  between a send decision and the frame actually entering the wire;
  the arbiter part is also reported separately as ``link_wait``),
  ``timer_wait`` (last send → timeout, per retransmission round),
  ``retx_wait`` (timeout → resend; the whole inter-send gap when no
  timeout was observed for the seq), and ``propagation`` (last wire
  entry before delivery → delivery).  The four components telescope:
  they sum *exactly* to ``delivered - submitted`` up to float addition
  error.

* **root-cause analysis** — :mod:`repro.obs.analyze` reconstructs stall
  timelines and Perfetto traces from the dump (``blockack analyze``).

Hot-path design
---------------

The recorder rides *every* causal-enabled run, so the per-event cost is
engineered down to one tuple build plus one deque append: raw nodes are
``(time, actor, kind, seq, seq_hi, flow, detail)`` with **no** ids and
**no** parent edges.  Node ids and the per-(flow, seq) parent chain are
deterministic functions of stream order, so they are materialized
lazily — at trigger time for the frozen ring, incrementally for
post-trigger streamed nodes, and on demand in :meth:`nodes`.  Latency
attribution likewise keeps only a tiny per-seq fold (:class:`_SeqState`)
inline and builds the record dicts as a lazy pass in
:attr:`CausalRecorder.attributions`.
"""

from __future__ import annotations

import pathlib
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import (
    BlockAck,
    CumulativeAck,
    DataMessage,
    FlowEnvelope,
)
from repro.trace.events import EventKind, TraceEvent
from repro.trace.recorder import NullRecorder

__all__ = [
    "FLIGHT_RING_CAPACITY",
    "BACKOFF_TRIGGER_ATTEMPTS",
    "FAIRNESS_TRIGGER_THRESHOLD",
    "CausalRecorder",
    "CausalTee",
    "CausalControllerHook",
    "node_record",
]

#: Ring capacity of the always-on flight recorder (causal nodes kept).
FLIGHT_RING_CAPACITY = 1024

#: Backoff-ladder position (consecutive expiries of one timer key) at
#: which the flight recorder considers the run anomalous.  The default
#: sits above anything a few-percent-loss run produces and below the
#: ladder a brownout or dead link climbs (dead_after defaults to 12).
BACKOFF_TRIGGER_ATTEMPTS = 6

#: Jain fairness index below which a multi-flow session is anomalous.
FAIRNESS_TRIGGER_THRESHOLD = 0.5

#: EventKind -> wire string, precomputed because ``kind.value`` goes
#: through enum's DynamicClassAttribute descriptor on every access.
_KIND_STR = {kind: kind.value for kind in EventKind}

_TIMER_KIND = {"arm": "timer.arm", "fire": "timer.fire", "cancel": "timer.cancel"}


def node_record(node: tuple) -> dict:
    """JSON-safe ``{"type": "causal", ...}`` record for one graph node."""
    eid, time, actor, kind, seq, seq_hi, parent, flow, detail = node
    record = {
        "type": "causal",
        "id": eid,
        "time": time,
        "actor": actor,
        "kind": kind,
        "seq": seq,
        "seq_hi": seq_hi,
        "parent": parent,
    }
    if flow is not None:
        record["flow"] = flow
    if detail is not None:
        record["detail"] = detail
    return record


class _SeqState:
    """Per-(flow, seq) fold state for the attribution pass."""

    __slots__ = (
        "flow",
        "seq",
        "submitted",
        "first_sent",
        "prev_send",
        "pending_timeout",
        "delivered",
        "queue_wait",
        "timer_wait",
        "retx_wait",
        "link_wait",
    )

    def __init__(self, flow: Optional[int], seq: int) -> None:
        self.flow = flow
        self.seq = seq
        self.submitted: Optional[float] = None
        self.first_sent: Optional[float] = None
        self.prev_send: Optional[float] = None
        self.pending_timeout: Optional[float] = None
        self.delivered: Optional[float] = None
        self.queue_wait = 0.0
        self.timer_wait = 0.0
        self.retx_wait = 0.0
        self.link_wait = 0.0  # arbiter hold; a sub-part of queue_wait


class CausalRecorder:
    """Per-run causal graph + flight ring + latency attribution.

    One instance per run (like :class:`~repro.obs.session.Observability`),
    built by ``run_transfer(..., causal=True)`` or the session host.  The
    hot path appends one raw tuple per event to a bounded deque — no ids,
    no parent lookups, no metric objects — everything derivable from
    stream order is reconstructed lazily (see the module docstring).

    Materialized graph nodes are ``(id, time, actor, kind, seq, seq_hi,
    parent, flow, detail)`` tuples; ``parent`` is the id of the previous
    node touching the same ``(flow, seq)`` (or the previous fault on the
    same endpoint for fault nodes), which chains submit → send →
    channel.send → timer.fire → timeout → resend → channel.deliver →
    deliver per seq.
    """

    def __init__(
        self,
        sim,
        run_id: str = "transfer",
        labels: Optional[Dict[str, str]] = None,
        ring_capacity: int = FLIGHT_RING_CAPACITY,
        backoff_trigger: int = BACKOFF_TRIGGER_ATTEMPTS,
        fairness_threshold: float = FAIRNESS_TRIGGER_THRESHOLD,
        flight_dir=None,
    ) -> None:
        self._sim = sim
        self.run_id = run_id
        self.labels: Dict[str, str] = dict(labels or {})
        self.ring_capacity = ring_capacity
        self.backoff_trigger = backoff_trigger
        self.fairness_threshold = fairness_threshold
        self._flight_dir = flight_dir
        self.ring: deque = deque(maxlen=ring_capacity)  # raw 7-tuples
        self._ring_append = self.ring.append
        self.frozen: Optional[List[tuple]] = None  # materialized @ 1st trigger
        self.triggers: List[tuple] = []  # (time, reason, detail)
        self.snapshots: List[dict] = []  # endpoint states at 1st trigger
        self.events_recorded = 0
        self.flight_path: Optional[pathlib.Path] = None
        self._sink = None  # open JsonlSink while a flight dump streams
        self._stream = None  # [next_id, last_map] materializer continuation
        self._state: Dict[Any, _SeqState] = {}  # seq | (flow, seq) -> fold
        self._endpoints: List[tuple] = []  # (name, endpoint)

    # ------------------------------------------------------------------
    # lazy id / parent materialization (cold path)
    # ------------------------------------------------------------------

    def _materialize(
        self, raw, start_id: int = 0, last: Optional[dict] = None
    ) -> Tuple[List[tuple], int, dict]:
        """Assign ids and parent edges to a raw-node stream.

        ``last`` maps ``(flow, seq)`` — or the ``fault:<endpoint>`` actor
        for fault nodes — to the id of the previous node on that chain;
        passing it back in continues a materialization across calls.
        """
        if last is None:
            last = {}
        nodes: List[tuple] = []
        eid = start_id
        for time, actor, kind, seq, seq_hi, flow, detail in raw:
            if seq is not None:
                key = (flow, seq)
                parent = last.get(key)
                last[key] = eid
            elif kind.startswith("fault."):
                parent = last.get(actor)
                last[actor] = eid
            else:
                parent = None
            nodes.append(
                (eid, time, actor, kind, seq, seq_hi, parent, flow, detail)
            )
            eid += 1
        return nodes, eid, last

    def _stream_node(self, raw: tuple) -> None:
        """Materialize and write one post-trigger node to the open sink."""
        cont = self._stream
        eid, last = cont
        time, actor, kind, seq, seq_hi, flow, detail = raw
        if seq is not None:
            key = (flow, seq)
            parent = last.get(key)
            last[key] = eid
        elif kind.startswith("fault."):
            parent = last.get(actor)
            last[actor] = eid
        else:
            parent = None
        cont[0] = eid + 1
        self._sink.write(
            node_record(
                (eid, time, actor, kind, seq, seq_hi, parent, flow, detail)
            )
        )

    # ------------------------------------------------------------------
    # seam hooks (the hot paths: one tuple + one append each)
    # ------------------------------------------------------------------

    def on_submit(
        self, seq: int, now: float, flow: Optional[int] = None
    ) -> None:
        """The application handed ``seq`` to the sender (runner hook)."""
        node = (now, "source", "submit", seq, None, flow, None)
        self._ring_append(node)
        self.events_recorded += 1
        if self._sink is not None:
            self._stream_node(node)
        states = self._state
        key = seq if flow is None else (flow, seq)
        state = states.get(key)
        if state is None:
            state = states[key] = _SeqState(flow, seq)
        state.submitted = now

    def on_deliver(
        self,
        seq: int,
        now: float,
        flow: Optional[int] = None,
        actor: str = "receiver",
    ) -> None:
        """``seq`` released in order; closes the attribution (idempotent)."""
        states = self._state
        key = seq if flow is None else (flow, seq)
        state = states.get(key)
        if state is None:
            state = states[key] = _SeqState(flow, seq)
        elif state.delivered is not None:
            return
        state.delivered = now
        node = (now, actor, "deliver", seq, None, flow, None)
        self._ring_append(node)
        self.events_recorded += 1
        if self._sink is not None:
            self._stream_node(node)

    def on_trace(
        self,
        now: float,
        actor: str,
        kind: EventKind,
        seq: Optional[int],
        seq_hi: Optional[int],
        detail: Any,
        flow: Optional[int] = None,
    ) -> None:
        """One endpoint trace record (via :class:`CausalTee`)."""
        if kind is EventKind.DELIVER:
            if seq is not None:
                self.on_deliver(seq, now, flow=flow, actor=actor)
            return
        node = (now, actor, _KIND_STR[kind], seq, seq_hi, flow, None)
        self._ring_append(node)
        self.events_recorded += 1
        if self._sink is not None:
            self._stream_node(node)
        if seq is None:
            if kind is EventKind.NOTE and actor == "probe":
                self.trigger("invariant_violation", detail)
            return
        if kind is EventKind.SEND_DATA:
            states = self._state
            key = seq if flow is None else (flow, seq)
            state = states.get(key)
            if state is None:
                state = states[key] = _SeqState(flow, seq)
            elif state.delivered is not None:
                return  # attribution closed; lost-ack resends don't reopen it
            if state.first_sent is None:
                state.first_sent = now
                if state.submitted is not None:
                    state.queue_wait = now - state.submitted
            state.prev_send = now
        elif kind is EventKind.RESEND_DATA:
            states = self._state
            key = seq if flow is None else (flow, seq)
            state = states.get(key)
            if state is None:
                state = states[key] = _SeqState(flow, seq)
            elif state.delivered is not None:
                return
            prev = state.prev_send
            if prev is not None:
                pending = state.pending_timeout
                if pending is not None and pending >= prev:
                    # split the inter-send gap at the observed timeout:
                    # armed-and-waiting before it, retransmission wait after
                    state.timer_wait += pending - prev
                    state.retx_wait += now - pending
                else:
                    # no per-seq timeout observed (single-timer modes put
                    # the seq on the TIMEOUT record of the window base, or
                    # none at all): the whole gap is retransmission wait
                    state.retx_wait += now - prev
            state.pending_timeout = None
            state.prev_send = now
        elif kind is EventKind.TIMEOUT:
            states = self._state
            key = seq if flow is None else (flow, seq)
            state = states.get(key)
            if state is None:
                state = states[key] = _SeqState(flow, seq)
            elif state.delivered is not None:
                return
            state.pending_timeout = now
        elif kind is EventKind.NOTE and actor == "probe":
            self.trigger("invariant_violation", detail)

    def channel_observer(self, link: str):
        """An ``add_observer`` callback recording transit outcomes."""
        actor = f"channel:{link}"
        sim = self._sim
        ring_append = self._ring_append
        kind_cache: Dict[str, str] = {}

        def observe(kind: str, message: Any) -> None:
            kindstr = kind_cache.get(kind)
            if kindstr is None:
                kindstr = kind_cache[kind] = "channel." + kind
            flow = None
            if isinstance(message, FlowEnvelope):
                flow = message.flow
                message = message.message
            if isinstance(message, DataMessage):
                seq, seq_hi = message.seq, None
            elif isinstance(message, BlockAck):
                seq, seq_hi = message.lo, message.hi
            elif isinstance(message, CumulativeAck):
                seq, seq_hi = message.seq, None
            else:
                seq = seq_hi = None
            node = (sim.now, actor, kindstr, seq, seq_hi, flow, None)
            ring_append(node)
            self.events_recorded += 1
            if self._sink is not None:
                self._stream_node(node)
            if kindstr == "channel.send" and seq_hi is None and seq is not None:
                # a data frame actually entered the wire.  Without a link
                # arbiter this is synchronous with SEND_DATA/RESEND_DATA
                # (zero gap); with one, the enqueue->grant hold lands in
                # queue_wait (and its link_wait sub-component) and
                # prev_send advances to the true wire-entry time, so the
                # four attribution components keep telescoping exactly.
                # Acks are excluded: BlockAck carries seq_hi, and
                # CumulativeAck travels the unobserved-for-data reverse
                # link — but check the type anyway.
                if isinstance(message, DataMessage):
                    state = self._state.get(
                        seq if flow is None else (flow, seq)
                    )
                    if state is not None and state.delivered is None:
                        now = sim.now
                        prev = state.prev_send
                        if prev is not None and now > prev:
                            gap = now - prev
                            state.queue_wait += gap
                            state.link_wait += gap
                        state.prev_send = now

        return observe

    def timer_observer(self):
        """The sim-level timer hook (``sim.timer_observer``).

        Both engines expose the attribute; :class:`repro.sim.timers.Timer`
        invokes it synchronously from ``start``/``stop``/``_fire``, so
        the arm/cancel/fire stream is identical across engines.
        """
        sim = self._sim
        ring_append = self._ring_append
        timer_kind = _TIMER_KIND

        def observe(op: str, timer: Any) -> None:
            key = timer.key
            kindstr = timer_kind.get(op)
            if kindstr is None:
                kindstr = "timer." + op
            node = (
                sim.now,
                timer.name,
                kindstr,
                key if type(key) is int else None,
                None,
                None,
                timer.expires_at if op == "arm" else None,
            )
            ring_append(node)
            self.events_recorded += 1
            if self._sink is not None:
                self._stream_node(node)

        return observe

    def attach_controller(self, controller, flow: Optional[int] = None) -> None:
        """Hook RTO verdicts, preserving any obs instruments already bound."""
        inner = getattr(controller, "_instruments", None)
        controller.bind_instruments(
            CausalControllerHook(self, inner=inner, flow=flow)
        )

    def on_retry_verdict(
        self,
        attempts: int,
        verdict: str,
        key: Any = None,
        now: Any = None,
        flow: Optional[int] = None,
    ) -> None:
        time = now if now is not None else self._sim.now
        node = (
            time,
            "controller",
            "rto.verdict",
            key if type(key) is int else None,
            None,
            flow,
            f"{verdict} attempts={attempts}",
        )
        self._ring_append(node)
        self.events_recorded += 1
        if self._sink is not None:
            self._stream_node(node)
        if verdict == "link_dead":
            self.trigger("link_dead", f"key={key} attempts={attempts}")
        elif attempts >= self.backoff_trigger:
            self.trigger("rto_backoff", f"key={key} attempts={attempts}")

    def fault_observer(self):
        """The :class:`~repro.robustness.faults.FaultPlan` observer hook.

        Fault nodes chain per endpoint (crash → restart, corrupt →
        repair) through the materializer's actor-keyed chain.  Every
        fault boundary flushes a streaming flight dump, so a run that
        dies inside an outage still leaves complete lines.
        """

        def observe(kind: str, endpoint: str, detail: Any = None) -> None:
            node = (
                self._sim.now,
                "fault:" + endpoint,
                "fault." + kind,
                None,
                None,
                None,
                detail,
            )
            self._ring_append(node)
            self.events_recorded += 1
            if self._sink is not None:
                self._stream_node(node)
                self._sink.flush()

        return observe

    def watch_endpoints(self, *named: Tuple[str, Any]) -> None:
        """Register endpoints whose state is snapshotted at trigger time."""
        self._endpoints.extend(named)

    # ------------------------------------------------------------------
    # the attribution pass (lazy: built from the per-seq fold state)
    # ------------------------------------------------------------------

    @property
    def attributions(self) -> Dict[tuple, dict]:
        """``(flow, seq) -> attribution record`` for every delivered seq.

        Computed on access from the inline fold state; the hot path never
        builds these dicts.
        """
        out: Dict[tuple, dict] = {}
        for state in self._state.values():
            now = state.delivered
            if now is None or state.submitted is None:
                continue
            # the interval [prev_send, delivered] was not yet accounted;
            # it is pure propagation, so the four components telescope to
            # delivered - submitted
            prev = state.prev_send
            record = {
                "type": "attribution",
                "seq": state.seq,
                "total": now - state.submitted,
                "queue_wait": state.queue_wait,
                "timer_wait": state.timer_wait,
                "retx_wait": state.retx_wait,
                "propagation": now - prev if prev is not None else 0.0,
            }
            if state.link_wait:
                # arbiter hold: already inside queue_wait (the components
                # above still telescope); reported so congestion can be
                # separated from window-availability wait
                record["link_wait"] = state.link_wait
            if state.flow is not None:
                record["flow"] = state.flow
            out[(state.flow, state.seq)] = record
        return out

    # ------------------------------------------------------------------
    # triggers and the flight dump
    # ------------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return bool(self.triggers)

    def on_stabilization(self, verdict: str) -> None:
        """Finalize hook: degraded/diverged recovery grades are anomalies."""
        if verdict in ("degraded", "diverged"):
            self.trigger(f"stabilization_{verdict}")

    def on_fairness(self, fairness: float) -> None:
        """Finalize hook (sessions): a collapsed Jain index is an anomaly."""
        if fairness < self.fairness_threshold:
            self.trigger("fairness", f"jain={fairness:.3f}")

    def trigger(self, reason: str, detail: Any = None) -> None:
        """An anomaly fired; freeze the ring and start the flight dump."""
        now = self._sim.now
        self.triggers.append((now, reason, detail))
        first = self.frozen is None
        if first:
            nodes, next_id, last = self._materialize(self.ring)
            self.frozen = nodes
            self._stream = [next_id, last]
            self.snapshots = [
                self._endpoint_state(name, endpoint)
                for name, endpoint in self._endpoints
            ]
            self._open_flight()
        if self._sink is not None and not first:
            self._sink.write(self._trigger_record(self.triggers[-1]))
            self._sink.flush()

    @staticmethod
    def _trigger_record(trigger: tuple) -> dict:
        time, reason, detail = trigger
        record = {"type": "trigger", "time": time, "reason": reason}
        if detail is not None:
            record["detail"] = detail
        return record

    @staticmethod
    def _endpoint_state(name: str, endpoint: Any) -> dict:
        """Best-effort JSON-safe snapshot of one endpoint's visible state."""
        state: Dict[str, Any] = {}
        stats = getattr(endpoint, "stats", None)
        if stats is not None and hasattr(stats, "as_dict"):
            state["stats"] = stats.as_dict()
        for attr in ("link_dead", "timeout_period"):
            value = getattr(endpoint, attr, None)
            if isinstance(value, (bool, int, float)):
                state[attr] = value
        controller = getattr(endpoint, "_retx", None)
        if controller is not None:
            state["adaptive"] = controller.stats_dict()
        window = getattr(endpoint, "window", None) or getattr(
            endpoint, "book", None
        )
        if window is not None:
            try:
                attrs = vars(window)
            except TypeError:  # slotted window books
                attrs = {
                    slot: getattr(window, slot, None)
                    for slot in getattr(type(window), "__slots__", ())
                }
            state["window"] = {
                key.lstrip("_"): value
                for key, value in attrs.items()
                if isinstance(value, (bool, int, float))
            }
        return {"type": "state", "endpoint": name, "state": state}

    def flight_dir(self) -> pathlib.Path:
        if self._flight_dir is not None:
            return pathlib.Path(self._flight_dir)
        from repro.obs.session import default_obs_dir  # cycle guard

        return default_obs_dir() / "flight"

    def _open_flight(self) -> None:
        from repro.obs.sink import SCHEMA_VERSION, JsonlSink  # cycle guard

        path = self.flight_dir() / f"{self.run_id}.jsonl"
        sink = JsonlSink(path)
        trigger = self.triggers[0]
        labels = dict(self.labels)
        labels["flight"] = trigger[1]
        sink.write({
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "labels": labels,
        })
        sink.write(self._trigger_record(trigger))
        for snapshot in self.snapshots:
            sink.write(snapshot)
        for node in self.frozen:
            sink.write(node_record(node))
        sink.flush()
        self._sink = sink
        self.flight_path = pathlib.Path(path)

    def close_flight(self) -> Optional[str]:
        """Finish a streaming flight dump (attributions + final snapshot).

        Returns the written path as a string, or None when no trigger
        fired (clean runs leave no flight file at all).
        """
        if self._sink is None:
            return None
        sink, self._sink = self._sink, None
        try:
            attributions = self.attributions
            for key in sorted(
                attributions, key=lambda k: (k[0] is not None, k)
            ):
                sink.write(attributions[key])
            for name, endpoint in self._endpoints:
                sink.write(self._endpoint_state(name, endpoint))
            sink.write({"type": "snapshot", "metrics": {}})
        finally:
            sink.close()
        return str(self.flight_path)

    # ------------------------------------------------------------------
    # reading the graph back (tests, analyze)
    # ------------------------------------------------------------------

    def nodes(self) -> List[tuple]:
        """Current ring contents, materialized, as a list (newest last)."""
        return self._materialize(self.ring)[0]

    def as_records(self) -> List[dict]:
        """Attribution records in seq order (single-flow first)."""
        attributions = self.attributions
        return [
            attributions[key]
            for key in sorted(
                attributions, key=lambda k: (k[0] is not None, k)
            )
        ]


class CausalTee:
    """Recorder tee: causal graph first, then the wrapped recorder.

    Duck-typed against :class:`~repro.trace.recorder.TraceRecorder`
    exactly like :class:`~repro.obs.spans.ObsRecorder`, and chainable
    with it (the obs tee wraps this tee when both layers are on).  The
    host builds one per flow, stamping every record with the flow id.

    When the wrapped recorder is a :class:`NullRecorder` the forward call
    is skipped entirely — its ``record`` is a no-op, and this tee sits on
    the per-event hot path.
    """

    __slots__ = ("_sim", "_causal", "_inner", "_flow", "_on_trace", "_fwd")

    def __init__(
        self, sim, causal: CausalRecorder, inner, flow: Optional[int] = None
    ) -> None:
        self._sim = sim
        self._causal = causal
        self._inner = inner
        self._flow = flow
        self._on_trace = causal.on_trace
        self._fwd = None if isinstance(inner, NullRecorder) else inner.record

    @property
    def enabled(self) -> bool:
        return True

    def record(self, actor, kind, seq=None, seq_hi=None, detail=None) -> None:
        self._on_trace(
            self._sim.now, actor, kind, seq, seq_hi, detail, self._flow
        )
        fwd = self._fwd
        if fwd is not None:
            fwd(actor, kind, seq=seq, seq_hi=seq_hi, detail=detail)

    # -- read side: delegate to the wrapped recorder -----------------------

    @property
    def events(self) -> List[TraceEvent]:
        return self._inner.events

    @property
    def dropped_events(self) -> int:
        return getattr(self._inner, "dropped_events", 0)

    def filter(self, kind=None, actor=None, predicate=None):
        return self._inner.filter(kind=kind, actor=actor, predicate=predicate)

    def count(self, kind: EventKind) -> int:
        return self._inner.count(kind)

    def format(self, limit=None) -> str:
        return self._inner.format(limit=limit)

    def decision_trace(self) -> List[tuple]:
        return self._inner.decision_trace()


class CausalControllerHook:
    """Controller-instruments fan-out: causal verdicts + inner telemetry.

    :meth:`RetransmissionController.bind_instruments` holds a single
    slot; this hook takes the slot and forwards every call to whatever
    was bound before it (the obs
    :class:`~repro.obs.session.ControllerInstruments`, or nothing).
    """

    __slots__ = ("_causal", "_inner", "_flow")

    def __init__(
        self,
        causal: CausalRecorder,
        inner: Any = None,
        flow: Optional[int] = None,
    ) -> None:
        self._causal = causal
        self._inner = inner
        self._flow = flow

    def on_rtt_sample(self, rtt: float, rto: float) -> None:
        if self._inner is not None:
            self._inner.on_rtt_sample(rtt, rto)

    def on_timeout(
        self, attempts: int, verdict: str, key: Any = None, now: Any = None
    ) -> None:
        self._causal.on_retry_verdict(attempts, verdict, key, now, self._flow)
        if self._inner is not None:
            self._inner.on_timeout(attempts, verdict, key=key, now=now)
