"""Metrics registry: counters, gauges, histograms — and a free null path.

Design
------

* **Instruments are label-aware.**  An instrument declared with
  ``labelnames=("link",)`` stores one time series per label-value tuple;
  ``instrument.labels(link="SR")`` returns a cached *bound child* whose
  ``inc``/``set``/``observe`` is a plain method call with no dict lookup,
  which is what hot paths hold on to.
* **Histograms have fixed bucket boundaries** chosen at declaration time
  (default: :data:`LATENCY_BUCKETS`, tuned for virtual-time RTT/latency
  in channel-delay units).  Fixed buckets make snapshots from different
  runs directly comparable — the property ``blockack obs diff`` relies
  on.
* **Registries are scoped.**  :data:`DEFAULT_REGISTRY` is the
  process-global convenience instance; anything that must not share
  state across runs (parallel sweep workers, repeated transfers in one
  process) creates its own :class:`MetricsRegistry`.
* **The null path is allocation-free.**  :data:`NULL_REGISTRY` returns
  the same no-op singleton for every declaration; its methods do nothing
  and ``labels(...)`` returns the singleton itself.  Instrumented code
  therefore needs no ``if obs:`` guards, and benchmarks with
  observability off stay within noise of the uninstrumented baseline
  (tracked in ``BENCH_<mode>.json`` — see ``blockack perf``).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts
with a stable shape; :class:`TextExposition` renders a snapshot in the
Prometheus text format (used by the UDP transport and the CLI).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "TextExposition",
    "DEFAULT_REGISTRY",
    "NULL_REGISTRY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "LATENCY_BUCKETS",
]

#: Fixed bucket upper bounds for RTT/latency histograms, in virtual time
#: units (one unit ~ one mean one-way channel delay).  The top bucket is
#: +inf, added implicitly by :class:`Histogram`.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)

#: Buckets for small nonnegative counts (retransmits per seq, ack-block
#: sizes, backoff ladder positions).
COUNT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64)


def _label_values(
    labelnames: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Instrument:
    """Shared declaration surface of the three instrument kinds."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """Bound child for one label-value combination (cached)."""
        key = _label_values(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _default_child(self):
        """The unlabelled child (only valid when labelnames is empty)."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is declared with labels {self.labelnames}; "
                "use .labels(...)"
            )
        child = self._children.get(())
        if child is None:
            child = self._make_child()
            self._children[()] = child
        return child

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        return self._children.items()


class _BoundCounter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Counter(_Instrument):
    """A monotonically increasing count (events, messages, violations)."""

    kind = "counter"

    def _make_child(self) -> _BoundCounter:
        return _BoundCounter()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        """Unlabelled value (0 if never incremented)."""
        child = self._children.get(())
        return child.value if child is not None else 0.0

    def value_for(self, **labels: str) -> float:
        child = self._children.get(_label_values(self.labelnames, labels))
        return child.value if child is not None else 0.0


class _BoundGauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, window size, RTO)."""

    kind = "gauge"

    def _make_child(self) -> _BoundGauge:
        return _BoundGauge()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        child = self._children.get(())
        return child.value if child is not None else 0.0

    def value_for(self, **labels: str) -> float:
        child = self._children.get(_label_values(self.labelnames, labels))
        return child.value if child is not None else 0.0


class _BoundHistogram:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds  # finite upper bounds, sorted ascending
        self.counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= target:
                return bound
        return math.inf


class Histogram(_Instrument):
    """A distribution over fixed bucket boundaries (cumulative on render)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        raw = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
        bounds = tuple(sorted(float(b) for b in raw if math.isfinite(b)))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one finite bucket")
        self.buckets = bounds

    def _make_child(self) -> _BoundHistogram:
        return _BoundHistogram(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        child = self._children.get(())
        return child.count if child is not None else 0

    @property
    def sum(self) -> float:
        child = self._children.get(())
        return child.sum if child is not None else 0.0


class _NullChild:
    """One no-op object that absorbs every instrument method."""

    __slots__ = ()

    def labels(self, **labels):  # noqa: ARG002 - signature parity
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0
    sum = 0.0


#: No-op singletons; NULL_REGISTRY hands these out for every declaration.
NULL_COUNTER = _NullChild()
NULL_GAUGE = _NullChild()
NULL_HISTOGRAM = _NullChild()


class MetricsRegistry:
    """A scoped namespace of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: declaring the
    same name twice returns the existing instrument (and raises if the
    kind conflicts), so independent subsystems can share series.
    """

    null = False

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self._instruments: Dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------

    def _declare(self, factory, name: str, *args, **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, factory):
                raise ValueError(
                    f"metric {name!r} already declared as {existing.kind}"
                )
            return existing
        instrument = factory(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __iter__(self):
        return iter(sorted(self._instruments.values(), key=lambda i: i.name))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of every series: ``{name: {type, help, samples}}``.

        Sample shape: ``{"labels": {...}, "value": x}`` for counters and
        gauges; ``{"labels": {...}, "buckets": [...], "counts": [...],
        "sum": s, "count": n}`` for histograms (``counts`` is per-bucket,
        with the final entry the +inf overflow bucket).
        """
        out: dict = {}
        for instrument in self:
            samples = []
            for key, child in sorted(instrument.samples()):
                labels = dict(zip(instrument.labelnames, key))
                if instrument.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": list(child.bounds),
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "samples": samples,
            }
        return out

    def render_text(self) -> str:
        """This registry in the Prometheus text exposition format."""
        return TextExposition().render(self.snapshot())


class NullRegistry:
    """Registry whose instruments are shared no-op singletons.

    The null path of the telemetry layer: every declaration returns the
    same `_NullChild` singleton, so instrumented code performs zero
    allocations and zero bookkeeping when observability is off.
    """

    null = True
    name = "null"

    def counter(self, name, help="", labelnames=()):  # noqa: ARG002
        return NULL_COUNTER

    def gauge(self, name, help="", labelnames=()):  # noqa: ARG002
        return NULL_GAUGE

    def histogram(self, name, help="", labelnames=(), buckets=None):  # noqa: ARG002
        return NULL_HISTOGRAM

    def get(self, name):  # noqa: ARG002
        return None

    def __iter__(self):
        return iter(())

    def snapshot(self) -> dict:
        return {}

    def render_text(self) -> str:
        return ""


#: Process-global convenience registry (tests and ad-hoc scripts).
DEFAULT_REGISTRY = MetricsRegistry(name="default")

#: The allocation-free null path.  Module-level singleton: identity
#: comparison (`registry is NULL_REGISTRY`) is the supported "is
#: observability off?" test.
NULL_REGISTRY = NullRegistry()


class TextExposition:
    """Render a metrics snapshot in the Prometheus text format.

    Used by the UDP transport (live counters on a real socket pair) and
    by ``blockack obs summarize --text``.  Works from the JSON snapshot,
    not the live registry, so it can also render snapshots read back
    from a ``.jsonl`` export.
    """

    @staticmethod
    def _format_labels(labels: dict, extra: Optional[dict] = None) -> str:
        merged = dict(labels)
        if extra:
            merged.update(extra)
        if not merged:
            return ""
        body = ",".join(
            f'{key}="{value}"' for key, value in sorted(merged.items())
        )
        return "{" + body + "}"

    @staticmethod
    def _format_value(value: float) -> str:
        if value == math.inf:
            return "+Inf"
        if float(value).is_integer():
            return str(int(value))
        return repr(float(value))

    def render(self, snapshot: dict) -> str:
        lines = []
        for name in sorted(snapshot):
            metric = snapshot[name]
            if metric.get("help"):
                lines.append(f"# HELP {name} {metric['help']}")
            lines.append(f"# TYPE {name} {metric['type']}")
            for sample in metric["samples"]:
                labels = sample.get("labels", {})
                if metric["type"] == "histogram":
                    cumulative = 0
                    bounds = list(sample["buckets"]) + [math.inf]
                    for bound, count in zip(bounds, sample["counts"]):
                        cumulative += count
                        le = self._format_labels(
                            labels, {"le": self._format_value(bound)}
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    plain = self._format_labels(labels)
                    lines.append(
                        f"{name}_sum{plain} {self._format_value(sample['sum'])}"
                    )
                    lines.append(f"{name}_count{plain} {sample['count']}")
                else:
                    plain = self._format_labels(labels)
                    lines.append(
                        f"{name}{plain} {self._format_value(sample['value'])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def render_counters(
        prefix: str, counters: dict, labels: Optional[dict] = None
    ) -> str:
        """Render a flat ``{name: value}`` dict as prefixed counters.

        The convenience path for stats objects that predate the registry
        (``TransportStats``, ``ChannelStats``): no registry needed.
        """
        snapshot = {
            f"{prefix}_{key}_total": {
                "type": "counter",
                "help": "",
                "samples": [{"labels": dict(labels or {}), "value": value}],
            }
            for key, value in counters.items()
        }
        return TextExposition().render(snapshot)
