"""Live invariant probes: the runtime monitor as cheap, sampled telemetry.

:class:`~repro.verify.runtime.InvariantMonitor` checks the observable
consequences of the paper's invariant (assertions 6 ∧ 7 ∧ 8) on **every**
channel event, and its cross-checks — scanning every in-flight ack span
per send — are exactly what you do not want on a heavy-traffic hot path.
The self-stabilizing ARQ literature (PAPERS.md) and Jain's divergence
results for timeout algorithms both argue for watching invariants
*during* long executions, though: silent divergence is precisely the
failure mode end-of-run verdicts miss.

:class:`InvariantProbe` squares that circle:

* wire-level flight state (which data numbers / ack spans are in
  transit) is maintained **exactly**, on every event — that part is a
  couple of dict/list operations;
* the O(in-flight²) cross-checks — duplicate data numbers, overlapping
  ack spans, data coexisting with a covering ack, counter ordering
  ``na <= nr <= vr`` — run as a **full-scan sweep every**
  ``sample_every`` **events** (configurable; 1 = check like the
  monitor);
* violations are **recorded, not raised**: each one increments the
  ``invariant_violations_total{clause=...}`` counter and (when a
  recorder is attached) lands in the trace as a NOTE, so a long
  adversarial run yields a violation *rate* instead of dying at the
  first breach.

A violation visible only transiently *between* two sweeps can be missed
— that is the deliberate trade; drop ``sample_every`` to tighten it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.messages import BlockAck, DataMessage
from repro.obs.metrics import NULL_REGISTRY
from repro.trace.events import EventKind
from repro.verify.runtime import InvariantMonitor, span_wires

__all__ = ["InvariantProbe"]


class InvariantProbe(InvariantMonitor):
    """Sampling adaptation of the runtime invariant monitor.

    Parameters (beyond :class:`~repro.verify.runtime.InvariantMonitor`)
    ----------------------------------------------------------------
    sample_every:
        Run the cross-checks once per this many observed channel
        events.  1 checks on every event (monitor-equivalent coverage at
        monitor-equivalent cost).
    registry:
        Metrics registry for the ``invariant_checks_total`` /
        ``invariant_violations_total`` counters; defaults to the no-op
        null registry.
    recorder:
        Optional trace recorder; every violation is also recorded as a
        ``NOTE`` event from actor ``"probe"``.
    """

    def __init__(
        self,
        sender: Any,
        receiver: Any,
        forward: Any,
        reverse: Any,
        domain: Optional[int] = None,
        sample_every: int = 64,
        registry=None,
        recorder=None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        registry = registry if registry is not None else NULL_REGISTRY
        self.sample_every = sample_every
        self.events_seen = 0
        self.checks_run = 0
        self._recorder = recorder
        self._checks_counter = registry.counter(
            "invariant_checks_total", "sampled invariant sweeps executed"
        )
        self._violations_counter = registry.counter(
            "invariant_violations_total",
            "observed breaches of invariant 6 ∧ 7 ∧ 8, by clause",
            labelnames=("clause",),
        )
        # strict=False always: a probe records, it never raises
        super().__init__(
            sender, receiver, forward, reverse, domain=domain, strict=False
        )

    # ------------------------------------------------------------------
    # channel observers: exact state, sampled checking
    # ------------------------------------------------------------------

    def _on_forward_event(self, kind: str, message: Any) -> None:
        if not isinstance(message, DataMessage):
            return
        wires = self._forward.data_wires
        if kind in ("send", "duplicate"):
            wires[message.seq] = wires.get(message.seq, 0) + 1
        else:  # deliver / lose / age all remove the copy
            count = wires.get(message.seq, 0) - 1
            if count <= 0:
                wires.pop(message.seq, None)
            else:
                wires[message.seq] = count
        self._tick()

    def _on_reverse_event(self, kind: str, message: Any) -> None:
        if not isinstance(message, BlockAck):
            return
        spans = self._reverse.ack_spans
        span = (message.lo, message.hi)
        if kind in ("send", "duplicate"):
            spans.append(span)
        elif span in spans:
            spans.remove(span)
        self._tick()

    def _tick(self) -> None:
        self.events_seen += 1
        if self.events_seen % self.sample_every == 0:
            self.check_now()

    # ------------------------------------------------------------------
    # the sampled sweep
    # ------------------------------------------------------------------

    def check_now(self) -> int:
        """Run one full cross-check sweep; returns violations found now."""
        self.checks_run += 1
        self._checks_counter.inc()
        before = len(self.violations)

        # assertion 8: at most one in-flight copy per wire number
        for wire, count in self._forward.data_wires.items():
            if count > 1:
                self._flag(
                    "8: duplicate data in transit",
                    f"{count} in-flight data messages carry wire seq {wire}",
                )

        # assertion 8: ack spans pairwise disjoint, and disjoint from data
        spans = self._reverse.ack_spans
        covered: set = set()
        for span in spans:
            wires = span_wires(span, self.domain)
            overlap = covered & wires
            if overlap:
                self._flag(
                    "8: overlapping acks in transit",
                    f"wire seq {min(overlap)} covered by two in-flight acks",
                )
            covered |= wires
        data_overlap = covered & set(self._forward.data_wires)
        if data_overlap:
            self._flag(
                "8: data coexists with covering ack",
                f"data wire seq {min(data_overlap)} in flight while an "
                "acknowledgment covers it",
            )

        # assertion 6: counter ordering na <= nr <= vr
        self._check_counters()
        return len(self.violations) - before

    # ------------------------------------------------------------------
    # violation recording: metric + NOTE instead of raising
    # ------------------------------------------------------------------

    def _flag(self, clause: str, detail: str) -> None:
        super()._flag(clause, detail)  # collects; strict is always False
        self._violations_counter.labels(clause=clause).inc()
        if self._recorder is not None:
            self._recorder.record(
                "probe", EventKind.NOTE, detail=f"invariant {clause}: {detail}"
            )
