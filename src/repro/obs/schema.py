"""Schema for exported telemetry, and a validator CLI.

The ``.jsonl`` export of :mod:`repro.obs.sink` is a contract: CI
archives the files as artifacts, ``blockack obs diff`` compares runs
across commits, and external tooling may parse them.  This module pins
that contract down (``repro.obs/v2``; v1 files stay valid — v2 only
*adds* the causal/trigger/state/attribution record types the flight
recorder writes) and enforces it::

    python -m repro.obs.schema --check results/obs/*.jsonl

Validation is structural, dependency-free (no jsonschema package), and
strict about the parts that tooling keys on — record types, required
fields, field types, the one-meta-first / one-snapshot rule — while
leaving room for additive evolution (unknown *extra* fields are allowed;
unknown record types are not).
"""

from __future__ import annotations

import argparse
import pathlib
from typing import List, Optional

from repro.obs.sink import SCHEMA_VERSION, read_records
from repro.trace.events import EventKind

__all__ = ["validate_record", "validate_records", "validate_file", "main"]

_NUMBER = (int, float)
_EVENT_KINDS = {kind.value for kind in EventKind}
_SPAN_STATES = {"submitted", "sent", "resent", "acked", "delivered"}

#: every schema version this validator accepts (additive evolution)
_SCHEMA_VERSIONS = {"repro.obs/v1", SCHEMA_VERSION}

#: causal-node kinds beyond the trace EventKind values
_CAUSAL_EXTRA_KINDS = (
    {"submit", "deliver", "rto.verdict"}
    | {f"channel.{k}" for k in ("send", "deliver", "lose", "age", "duplicate")}
    | {f"timer.{op}" for op in ("arm", "cancel", "fire")}
    | {f"fault.{k}" for k in ("crash", "restart", "corrupt", "repair")}
)
_CAUSAL_KINDS = _EVENT_KINDS | _CAUSAL_EXTRA_KINDS

#: required fields per record type: name -> (types, nullable)
_FIELDS = {
    "meta": {
        "schema": (str, False),
        "run_id": (str, False),
        "labels": (dict, True),
    },
    "event": {
        "time": (_NUMBER, False),
        "actor": (str, False),
        "kind": (str, False),
    },
    "span": {
        "seq": (int, False),
        "state": (str, False),
        "submitted": (_NUMBER, True),
        "first_sent": (_NUMBER, True),
        "last_sent": (_NUMBER, True),
        "acked": (_NUMBER, True),
        "delivered": (_NUMBER, True),
        "sends": (int, False),
        "resends": (int, False),
    },
    "snapshot": {
        "metrics": (dict, False),
    },
    # --- v2 additions (repro.obs.causal flight dumps) -----------------
    "causal": {
        "id": (int, False),
        "time": (_NUMBER, False),
        "actor": (str, False),
        "kind": (str, False),
        "seq": (int, True),
        "seq_hi": (int, True),
        "parent": (int, True),
    },
    "trigger": {
        "time": (_NUMBER, False),
        "reason": (str, False),
    },
    "state": {
        "endpoint": (str, False),
        "state": (dict, False),
    },
    "attribution": {
        "seq": (int, False),
        "total": (_NUMBER, False),
        "queue_wait": (_NUMBER, False),
        "timer_wait": (_NUMBER, False),
        "retx_wait": (_NUMBER, False),
        "propagation": (_NUMBER, False),
    },
}

#: optional fields per record type: present-if-emitted, typed when present.
#: The static analyzer (``blockack lint``, rule S303) enforces that every
#: field name emitted anywhere in the codebase appears either here or in
#: ``_FIELDS`` — emitting an unpinned field is schema drift and fails CI.
#: ``detail`` is any JSON scalar, so it is typed as the scalar union.
_SCALAR = (bool, int, float, str)
_OPTIONAL_FIELDS = {
    "meta": {},
    "event": {
        "seq": (int, True),
        "seq_hi": (int, True),
        "detail": (_SCALAR, True),
    },
    "span": {
        "timeouts": (int, False),
        "flow": (int, False),
    },
    "snapshot": {},
    "causal": {
        "flow": (int, False),
        "detail": (_SCALAR, True),
    },
    "trigger": {
        "detail": (_SCALAR, True),
    },
    "state": {},
    "attribution": {
        "flow": (int, False),
        # arbiter enqueue->grant hold; a sub-component of queue_wait,
        # present only on runs with a finite-rate link arbiter
        "link_wait": (_NUMBER, False),
    },
}

_METRIC_TYPES = {"counter", "gauge", "histogram"}


def validate_record(record: object, lineno: int = 0) -> List[str]:
    """Structural errors in one record; empty list means valid."""
    where = f"line {lineno}" if lineno else "record"
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    kind = record.get("type")
    if kind not in _FIELDS:
        return [f"{where}: unknown record type {kind!r}"]
    errors = []
    for field, (types, nullable) in _FIELDS[kind].items():
        if field not in record:
            errors.append(f"{where}: {kind} record missing field {field!r}")
            continue
        value = record[field]
        if value is None:
            if not nullable:
                errors.append(f"{where}: {kind}.{field} must not be null")
            continue
        if not isinstance(value, types) or isinstance(value, bool):
            # bool is an int subclass; it is never a valid field value here
            errors.append(
                f"{where}: {kind}.{field} has type {type(value).__name__}"
            )
    for field, (types, nullable) in _OPTIONAL_FIELDS[kind].items():
        if field not in record:
            continue  # optional: absence is fine, only presence is typed
        value = record[field]
        if value is None:
            if not nullable:
                errors.append(f"{where}: {kind}.{field} must not be null")
            continue
        allowed = types if isinstance(types, tuple) else (types,)
        if not isinstance(value, allowed) or (
            isinstance(value, bool) and bool not in allowed
        ):
            errors.append(
                f"{where}: {kind}.{field} has type {type(value).__name__}"
            )
    if kind == "meta" and record.get("schema") is not None:
        if (
            isinstance(record.get("schema"), str)
            and record["schema"] not in _SCHEMA_VERSIONS
        ):
            errors.append(
                f"{where}: unsupported schema {record['schema']!r} "
                f"(expected one of {sorted(_SCHEMA_VERSIONS)})"
            )
    if kind == "event" and record.get("kind") not in _EVENT_KINDS:
        errors.append(f"{where}: unknown event kind {record.get('kind')!r}")
    if kind == "causal" and record.get("kind") not in _CAUSAL_KINDS:
        errors.append(f"{where}: unknown causal kind {record.get('kind')!r}")
    if kind == "span" and record.get("state") not in _SPAN_STATES:
        errors.append(f"{where}: unknown span state {record.get('state')!r}")
    if kind == "snapshot" and isinstance(record.get("metrics"), dict):
        errors.extend(_validate_metrics(record["metrics"], where))
    return errors


def _validate_metrics(metrics: dict, where: str) -> List[str]:
    errors = []
    for name, metric in metrics.items():
        if not isinstance(metric, dict):
            errors.append(f"{where}: metric {name!r} is not an object")
            continue
        mtype = metric.get("type")
        if mtype not in _METRIC_TYPES:
            errors.append(f"{where}: metric {name!r} has type {mtype!r}")
            continue
        samples = metric.get("samples")
        if not isinstance(samples, list):
            errors.append(f"{where}: metric {name!r} has no samples list")
            continue
        for sample in samples:
            if not isinstance(sample, dict):
                errors.append(f"{where}: metric {name!r} sample not an object")
                continue
            if mtype == "histogram":
                buckets = sample.get("buckets")
                counts = sample.get("counts")
                if not isinstance(buckets, list) or not isinstance(counts, list):
                    errors.append(
                        f"{where}: histogram {name!r} sample missing "
                        "buckets/counts"
                    )
                elif len(counts) != len(buckets) + 1:
                    errors.append(
                        f"{where}: histogram {name!r} needs len(counts) == "
                        "len(buckets) + 1 (the +inf bucket)"
                    )
            elif not isinstance(sample.get("value"), _NUMBER):
                errors.append(
                    f"{where}: {mtype} {name!r} sample value not numeric"
                )
    return errors


def validate_records(records: List[object]) -> List[str]:
    """Validate a whole run: per-record checks plus file-level shape."""
    errors = []
    meta_lines = []
    snapshot_lines = []
    for lineno, record in enumerate(records, start=1):
        errors.extend(validate_record(record, lineno))
        if isinstance(record, dict):
            if record.get("type") == "meta":
                meta_lines.append(lineno)
            elif record.get("type") == "snapshot":
                snapshot_lines.append(lineno)
    if len(meta_lines) != 1:
        errors.append(f"file must contain exactly one meta record, found "
                      f"{len(meta_lines)}")
    elif meta_lines[0] != 1:
        errors.append("meta record must be the first line")
    if len(snapshot_lines) != 1:
        errors.append(
            f"file must contain exactly one snapshot record, found "
            f"{len(snapshot_lines)}"
        )
    return errors


def validate_file(path) -> List[str]:
    """Validate one ``.jsonl`` file; returns error strings."""
    try:
        records = read_records(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not records:
        return ["file is empty"]
    return [f"{path}: {error}" for error in validate_records(records)]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.schema",
        description="validate exported telemetry (.jsonl) against "
        f"{SCHEMA_VERSION}",
    )
    parser.add_argument(
        "--check", nargs="+", required=True, metavar="PATH",
        help="files (or directories, scanned for *.jsonl) to validate",
    )
    args = parser.parse_args(argv)

    paths: List[pathlib.Path] = []
    for raw in args.check:
        path = pathlib.Path(raw)
        if path.is_dir():
            paths.extend(sorted(path.glob("*.jsonl")))
        else:
            paths.append(path)
    if not paths:
        print("error: no .jsonl files to check")
        return 1

    failures = 0
    for path in paths:
        errors = validate_file(path)
        if errors:
            failures += 1
            for error in errors[:20]:
                print(f"INVALID {error}")
            if len(errors) > 20:
                print(f"INVALID {path}: ... ({len(errors) - 20} more errors)")
        else:
            print(f"ok {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
