"""Per-run observability session: one object that wires everything.

:class:`Observability` owns a scoped :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.spans.SpanTracker`, and knows how to attach
itself to every instrumentable layer:

* the **simulator** — :class:`SimInstruments` counts events scheduled /
  cancelled / fired and tracks the event-queue depth gauge (the engine
  calls these hooks only when instruments are installed; the null path
  stays branch-identical to the uninstrumented engine);
* the **channels** — an observer per link bumps
  ``channel_events_total{link,outcome}`` for every send / deliver / lose
  / age / duplicate, and final :class:`~repro.channel.channel.ChannelStats`
  land as gauges at finalize time (including the framed-link corruption
  counters);
* the **endpoints** — via :class:`~repro.obs.spans.ObsRecorder`, the
  trace-recorder tee, which feeds the span tracker from the records all
  retransmitting protocols already emit;
* the **robustness controller** — :class:`ControllerInstruments` folds
  every RTT sample and the resulting RTO into histograms and tracks the
  backoff ladder position;
* the **invariant probe** — optional sampled checking of assertions
  6 ∧ 7 ∧ 8 (see :mod:`repro.obs.probes`).

``run_transfer(..., obs=True)`` builds one of these per run; parallel
sweep workers therefore never share registry state.  At the end,
:meth:`export` streams meta + events + spans + snapshot to a
``results/obs/<run_id>.jsonl`` file via :class:`~repro.obs.sink.JsonlSink`.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, List, Optional

from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.obs.sink import SCHEMA_VERSION, JsonlSink
from repro.obs.spans import ObsRecorder, SpanTracker

__all__ = [
    "Observability",
    "SimInstruments",
    "ControllerInstruments",
    "default_obs_dir",
]


def default_obs_dir() -> pathlib.Path:
    """Where exports land: ``$REPRO_OBS_DIR`` or ``results/obs``."""
    return pathlib.Path(os.environ.get("REPRO_OBS_DIR", "") or "results/obs")


class SimInstruments:
    """Engine hooks: event counters and the queue-depth gauge.

    Installed with :meth:`repro.sim.engine.Simulator.set_instruments`;
    the engine invokes these from dedicated instrumented drain loops, so
    a simulator without instruments runs its original loops untouched.
    """

    __slots__ = ("_scheduled", "_fired", "_cancelled", "_depth")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._scheduled = registry.counter(
            "sim_events_scheduled_total", "events pushed onto the event list"
        )
        self._fired = registry.counter(
            "sim_events_fired_total", "event callbacks executed"
        )
        self._cancelled = registry.counter(
            "sim_events_cancelled_total",
            "cancelled events lazily discarded from the queue",
        )
        self._depth = registry.gauge(
            "sim_queue_depth", "event-list entries (including cancelled)"
        )

    def on_schedule(self, queue_len: int) -> None:
        self._scheduled.inc()
        self._depth.set(queue_len)

    def on_fire(self, queue_len: int) -> None:
        self._fired.inc()
        self._depth.set(queue_len)

    def on_cancel_discard(self) -> None:
        self._cancelled.inc()


class ControllerInstruments:
    """Adaptive-retransmission telemetry: RTT/RTO histograms, backoff."""

    __slots__ = ("_rtt", "_rto", "_backoff", "_verdicts", "_registry")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._rtt = registry.histogram(
            "rtt_sample", "unambiguous RTT samples (Karn-filtered)"
        )
        self._rto = registry.histogram(
            "rto_value", "retransmission timeout after each RTT sample"
        )
        self._backoff = registry.histogram(
            "backoff_position",
            "consecutive-expiry ladder position at each timeout",
            buckets=COUNT_BUCKETS,
        )
        self._verdicts = registry.counter(
            "retry_verdicts_total", "budget verdicts issued", labelnames=("verdict",)
        )

    def on_rtt_sample(self, rtt: float, rto: float) -> None:
        self._rtt.observe(rtt)
        self._rto.observe(rto)

    def on_timeout(
        self, attempts: int, verdict: str, key: Any = None, now: Any = None
    ) -> None:
        self._backoff.observe(attempts)
        self._verdicts.labels(verdict=verdict).inc()
        if verdict == "link_dead":
            # pin down *which* expiry killed the link: the triggering
            # timer key (sequence number, or "-" for single-timer modes)
            # and the virtual time ride the counter labels
            self._registry.counter(
                "link_dead_declared_total",
                "LINK_DEAD verdicts by triggering timer key and time",
                labelnames=("seq", "at"),
            ).labels(
                seq="-" if key is None else str(key),
                at="-" if now is None else f"{now:g}",
            ).inc()


class Observability:
    """Everything one observed run needs, bundled and scoped.

    Parameters
    ----------
    registry:
        Scoped registry; a fresh one is created when omitted, so two
        concurrent runs never share series.
    run_id:
        Identifier used in the export's meta record and default file
        name; derived by the caller (deterministic — sweep workers use
        the config digest).
    labels:
        Free-form key/value context written to the meta record
        (protocol, seed, experiment cell, ...).
    sample_invariants_every:
        0 disables the invariant probe; N >= 1 installs
        :class:`~repro.obs.probes.InvariantProbe` with that sampling
        period.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        run_id: str = "run",
        labels: Optional[Dict[str, str]] = None,
        sample_invariants_every: int = 0,
    ) -> None:
        if sample_invariants_every < 0:
            raise ValueError(
                f"sample_invariants_every must be >= 0, "
                f"got {sample_invariants_every}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.run_id = run_id
        self.labels: Dict[str, str] = dict(labels or {})
        self.sample_invariants_every = sample_invariants_every
        self.span_tracker = SpanTracker(self.registry)
        self.probe = None  # set by install_probe
        self.recorder: Optional[ObsRecorder] = None
        self.causal = None  # CausalRecorder, when the causal layer is on
        self._channel_stats: List[tuple] = []  # (link, channel)
        self._extra_trackers: List[SpanTracker] = []  # per-flow trackers

    # ------------------------------------------------------------------
    # wiring (called by run_transfer, or by hand for custom harnesses)
    # ------------------------------------------------------------------

    def make_recorder(self, sim, inner) -> ObsRecorder:
        """The recorder tee endpoints should be attached with."""
        self.recorder = ObsRecorder(sim, self.span_tracker, inner)
        return self.recorder

    def add_span_tracker(self, tracker: SpanTracker) -> None:
        """Register an additional tracker whose spans export with the run.

        The session host keeps one flow-tagged tracker per flow (the
        session-level ``span_tracker`` goes unused there); registering
        them here makes their spans part of the ``.jsonl`` export so
        per-flow summaries survive the process.
        """
        self._extra_trackers.append(tracker)

    def attach_sim(self, sim) -> None:
        sim.set_instruments(SimInstruments(self.registry))

    def attach_channel(self, channel, link: str) -> None:
        """Observe one link; counts every channel event by outcome."""
        counter = self.registry.counter(
            "channel_events_total",
            "channel events by link and outcome",
            labelnames=("link", "outcome"),
        )
        # pre-bound children: the observer body is one dict hit + one add
        bound = {
            outcome: counter.labels(link=link, outcome=outcome)
            for outcome in ("send", "deliver", "lose", "age", "duplicate")
        }

        def observe(kind: str, message: Any) -> None:  # noqa: ARG001
            child = bound.get(kind)
            if child is not None:
                child.inc()

        channel.add_observer(observe)
        self._channel_stats.append((link, channel))

    def attach_controller(self, controller) -> None:
        """Bind RTO/backoff telemetry to a RetransmissionController."""
        controller.bind_instruments(ControllerInstruments(self.registry))

    def install_probe(
        self, sender, receiver, forward, reverse, domain: Optional[int] = None
    ) -> None:
        """Attach the sampled invariant probe (if configured on)."""
        if not self.sample_invariants_every:
            return
        from repro.obs.probes import InvariantProbe  # cycle guard

        self.probe = InvariantProbe(
            sender,
            receiver,
            forward,
            reverse,
            domain=domain,
            sample_every=self.sample_invariants_every,
            registry=self.registry,
            recorder=self.recorder,
        )

    # ------------------------------------------------------------------
    # finalize + export
    # ------------------------------------------------------------------

    def finalize(self, result: Any = None) -> None:
        """Fold end-of-run state into the registry.

        Channel statistics become gauges labelled by link (including the
        framed-link corruption counters when present); the transfer
        verdict and duration are recorded when a
        :class:`~repro.sim.runner.TransferResult` is passed.
        """
        if self._channel_stats:
            gauge = self.registry.gauge(
                "channel_stat",
                "final channel counters by link",
                labelnames=("link", "stat"),
            )
            for link, channel in self._channel_stats:
                stats = channel.stats.as_dict()
                if hasattr(channel, "discarded"):  # framed link wrapper
                    stats["corrupted"] = channel.corrupted
                    stats["discarded"] = channel.discarded
                    stats["bytes_sent"] = channel.bytes_sent
                for stat, value in stats.items():
                    gauge.labels(link=link, stat=stat).set(value)
        if result is not None:
            self.registry.gauge(
                "transfer_duration", "virtual time at completion or cutoff"
            ).set(result.duration)
            self.registry.gauge(
                "transfer_delivered", "payloads delivered in order"
            ).set(result.delivered)
            self.registry.gauge(
                "transfer_completed", "1 when the transfer completed cleanly"
            ).set(1.0 if result.completed else 0.0)
            stabilization = getattr(result, "stabilization", None)
            if stabilization is not None:
                self.registry.gauge(
                    "stabilization_verdict",
                    "corruption-recovery verdict (1 for the verdict reached)",
                    labelnames=("verdict",),
                ).labels(verdict=stabilization["verdict"]).set(1.0)
                self.registry.gauge(
                    "stabilization_corruptions",
                    "state corruptions injected by the fault plan",
                ).set(stabilization["corruptions"])
                self.registry.gauge(
                    "stabilization_repairs",
                    "guard/repair rules fired after corruption",
                ).set(stabilization["repairs"])
                reconvergence = stabilization["reconvergence_time"]
                if reconvergence is not None:
                    self.registry.gauge(
                        "stabilization_reconvergence_time",
                        "virtual time from first corruption to last disturbance",
                    ).set(reconvergence)

    def meta_record(self) -> dict:
        return {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "labels": self.labels,
        }

    def export(
        self,
        path=None,
        include_events: bool = True,
    ) -> pathlib.Path:
        """Write this run's telemetry as JSONL; returns the path written.

        ``path=None`` uses ``<default_obs_dir()>/<run_id>.jsonl``.
        Events are taken from the attached recorder (empty when the run
        traced nothing); spans and the metric snapshot always export.
        """
        if path is None:
            path = default_obs_dir() / f"{self.run_id}.jsonl"
        events = []
        if include_events and self.recorder is not None:
            events = self.recorder.events
        with JsonlSink(path) as sink:
            sink.write(self.meta_record())
            for event in events:
                sink.write(event.as_record())
            sink.write_all(self.span_tracker.as_records())
            for tracker in self._extra_trackers:
                sink.write_all(tracker.as_records())
            if self.causal is not None:
                sink.write_all(self.causal.as_records())
            sink.write({"type": "snapshot", "metrics": self.registry.snapshot()})
        return pathlib.Path(path)
