"""Structured export: stream a run's telemetry to JSON Lines.

One run produces one ``results/obs/<run_id>.jsonl`` file.  Line shapes
(the stable schema, validated by :mod:`repro.obs.schema`):

* ``{"type": "meta", "schema": "repro.obs/v2", "run_id": ..., "labels": {...}}``
  — exactly one, first line;
* ``{"type": "event", "time": ..., "actor": ..., "kind": ..., ...}``
  — zero or more trace events (present when the run kept a trace);
* ``{"type": "span", "seq": ..., "state": ..., ...}``
  — one per sequence number: the virtual-time lifecycle;
* ``{"type": "snapshot", "metrics": {...}}``
  — exactly one, last line: the final metrics-registry snapshot.

Schema v2 (this PR) adds four shapes used by the causal layer
(:mod:`repro.obs.causal`) and its flight dumps under
``results/obs/flight/``; v1 files remain valid:

* ``{"type": "causal", "id": ..., "time": ..., "actor": ..., "kind":
  ..., "parent": ...}`` — one causal-graph node;
* ``{"type": "trigger", "time": ..., "reason": ...}`` — one anomaly
  trigger firing;
* ``{"type": "state", "endpoint": ..., "state": {...}}`` — an
  endpoint-state snapshot taken at trigger time;
* ``{"type": "attribution", "seq": ..., "total": ..., "queue_wait":
  ..., "timer_wait": ..., "retx_wait": ..., "propagation": ...}`` —
  the latency decomposition of one delivered seq (components sum to
  ``total``).

Everything downstream — ``blockack obs summarize``, ``blockack obs
diff``, ``blockack analyze``, the CI schema gate — works from these
files, so two runs (two seeds, two protocol variants, two commits) can
be compared long after the processes that produced them are gone.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "JsonlSink",
    "read_records",
    "load_run",
    "RunDump",
    "diff_snapshots",
    "summarize_run",
]

SCHEMA_VERSION = "repro.obs/v2"


def _json_safe(value: Any) -> Any:
    """Coerce a record value for JSON: basic types pass, the rest reprs."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(val) for key, val in value.items()}
    return repr(value)


class JsonlSink:
    """Append-only JSONL writer with directory creation and fsync-free
    buffering (one run, one file, closed at export time).

    Each record is serialized and written as *one* string, so a line can
    never be half a JSON document followed by a line from someone else —
    the failure a ``CrashRestart`` fault used to expose when it ended a
    run between the old separate json/newline writes.  :meth:`flush`
    pushes buffered lines to the OS at fault boundaries (the causal
    flight recorder calls it from its fault observer) and :meth:`close`
    flushes before closing, so an exported file is complete even when
    the interpreter dies right after the last fault.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        if "type" not in record:
            raise ValueError(f"record missing 'type': {record!r}")
        line = (
            json.dumps(_json_safe(record), separators=(",", ":"), sort_keys=True)
            + "\n"
        )
        self._handle.write(line)
        self.records_written += 1

    def write_all(self, records: Iterable[Dict[str, Any]]) -> None:
        for record in records:
            self.write(record)

    def flush(self) -> None:
        """Push buffered lines to the OS (fault-boundary durability)."""
        if not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# reading runs back
# ----------------------------------------------------------------------


class RunDump:
    """One exported run, loaded back into structured form."""

    def __init__(self, path: pathlib.Path, records: List[dict]) -> None:
        self.path = path
        self.records = records
        self.meta: dict = {}
        self.events: List[dict] = []
        self.spans: List[dict] = []
        self.snapshot: dict = {}
        for record in records:
            kind = record.get("type")
            if kind == "meta":
                self.meta = record
            elif kind == "event":
                self.events.append(record)
            elif kind == "span":
                self.spans.append(record)
            elif kind == "snapshot":
                self.snapshot = record.get("metrics", {})

    @property
    def run_id(self) -> str:
        return self.meta.get("run_id", self.path.stem)


def read_records(path) -> List[dict]:
    """Parse every line of a ``.jsonl`` file (raises on malformed JSON)."""
    records = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: malformed JSON: {exc}") from None
    return records


def load_run(path) -> RunDump:
    """Load one exported run."""
    path = pathlib.Path(path)
    return RunDump(path, read_records(path))


# ----------------------------------------------------------------------
# snapshot comparison (blockack obs diff)
# ----------------------------------------------------------------------


def _flat_samples(snapshot: dict) -> Dict[str, float]:
    """Flatten counter/gauge samples to ``{'name{a=b}': value}``.

    Histograms contribute their ``_count`` and ``_sum`` series, which is
    what a between-runs delta can meaningfully compare under fixed
    bucket boundaries.
    """
    flat: Dict[str, float] = {}
    for name, metric in snapshot.items():
        for sample in metric.get("samples", []):
            labels = sample.get("labels", {})
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if metric.get("type") == "histogram":
                flat[f"{name}_count{suffix}"] = float(sample.get("count", 0))
                flat[f"{name}_sum{suffix}"] = float(sample.get("sum", 0.0))
            else:
                flat[f"{name}{suffix}"] = float(sample.get("value", 0.0))
    return flat


def diff_snapshots(
    left: dict, right: dict, only_changed: bool = True
) -> List[str]:
    """Human-readable series deltas between two metric snapshots.

    Lines read ``name{labels}: left -> right (delta)``; series present
    on one side only are flagged.  Empty list means the snapshots agree
    on every series.
    """
    flat_left = _flat_samples(left)
    flat_right = _flat_samples(right)
    lines: List[str] = []
    for key in sorted(set(flat_left) | set(flat_right)):
        a = flat_left.get(key)
        b = flat_right.get(key)
        if a is None:
            lines.append(f"{key}: (absent) -> {b:g}")
        elif b is None:
            lines.append(f"{key}: {a:g} -> (absent)")
        elif a != b or not only_changed:
            delta = b - a
            lines.append(f"{key}: {a:g} -> {b:g} ({delta:+g})")
    return lines


# ----------------------------------------------------------------------
# run summaries (blockack obs summarize)
# ----------------------------------------------------------------------


def _metric_value(snapshot: dict, name: str) -> Optional[float]:
    metric = snapshot.get(name)
    if not metric or not metric.get("samples"):
        return None
    return metric["samples"][0].get("value")


def summarize_run(dump: RunDump, limit: int = 12) -> str:
    """Render one exported run as a human-readable report."""
    lines = [f"run {dump.run_id}  ({dump.path})"]
    labels = dump.meta.get("labels") or {}
    if labels:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        lines.append(f"  labels: {rendered}")
    lines.append(
        f"  records: {len(dump.events)} events, {len(dump.spans)} spans, "
        f"{len(dump.snapshot)} metric series"
    )

    if dump.spans:
        states: Dict[str, int] = {}
        resends = 0
        latencies = []
        per_flow: Dict[Any, List[float]] = {}
        for span in dump.spans:
            states[span["state"]] = states.get(span["state"], 0) + 1
            resends += span.get("resends", 0)
            if span.get("delivered") is not None and span.get("submitted") is not None:
                latency = span["delivered"] - span["submitted"]
                latencies.append(latency)
                flow = span.get("flow")
                if flow is not None:
                    per_flow.setdefault(flow, []).append(latency)
        state_text = ", ".join(
            f"{state}={count}" for state, count in sorted(states.items())
        )
        lines.append(f"  span states: {state_text}")
        lines.append(f"  total retransmissions: {resends}")
        if latencies:
            latencies.sort()
            mid = latencies[len(latencies) // 2]
            lines.append(
                f"  latency (virtual tu): min={latencies[0]:.3f} "
                f"p50={mid:.3f} max={latencies[-1]:.3f}"
            )
        if per_flow:
            from repro.analysis.stats import percentile

            lines.append("  per-flow latency (virtual tu):")
            for flow in sorted(per_flow):
                samples = per_flow[flow]
                lines.append(
                    f"    flow {flow}: n={len(samples)} "
                    f"p50={percentile(samples, 50):.3f} "
                    f"p95={percentile(samples, 95):.3f} "
                    f"p99={percentile(samples, 99):.3f}"
                )

    if dump.snapshot:
        lines.append("  key metrics:")
        shown = 0
        for name in sorted(dump.snapshot):
            metric = dump.snapshot[name]
            if metric.get("type") == "histogram":
                sample = metric["samples"][0] if metric.get("samples") else None
                if sample is None:
                    continue
                count = sample.get("count", 0)
                mean = sample["sum"] / count if count else 0.0
                lines.append(f"    {name}: count={count} mean={mean:.3f}")
            else:
                total = sum(
                    sample.get("value", 0.0) for sample in metric.get("samples", [])
                )
                lines.append(f"    {name}: {total:g}")
            shown += 1
            if shown >= limit:
                remaining = len(dump.snapshot) - shown
                if remaining > 0:
                    lines.append(f"    ... ({remaining} more series)")
                break
    return "\n".join(lines)
