"""Virtual-time spans: the per-sequence-number lifecycle, measured.

A :class:`SeqSpan` follows one sequence number through the protocol::

    submitted -> sent -> [resend ...] -> acked -> delivered

with every transition stamped in **virtual time** (``Simulator.now``).
The tracker derives the distributions the paper's analysis cares about:

* ``retransmits_per_seq`` — how many extra copies each message cost
  (go-back-N's whole-window waste vs. block ack's one-per-loss shows up
  directly here);
* ``ack_block_size`` — the ``n - m + 1`` span of every received block
  acknowledgment (the paper's headline economy: one ack, many messages);
* ``time_in_window`` — submit to cumulative-ack: how long each message
  occupied sender window state;
* ``latency`` — submit to deliver, replacing the ad-hoc latency wrapper
  :func:`repro.sim.runner.run_transfer` used before this layer existed.

:class:`SpanTracker` consumes the same stream of trace records the
endpoints already emit, so **every retransmitting protocol is
instrumented at once**: :class:`ObsRecorder` is a duck-typed stand-in
for :class:`~repro.trace.recorder.TraceRecorder` that tees each record
into the tracker (and its metric counters) before forwarding to an inner
recorder.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.trace.events import EventKind, TraceEvent

__all__ = ["SeqSpan", "SpanTracker", "ObsRecorder", "LIFECYCLE_STATES"]

#: The lifecycle states a span moves through, in order.  ``resent`` is a
#: transient sub-state of ``sent`` (re-entered per retransmission).
LIFECYCLE_STATES = ("submitted", "sent", "resent", "acked", "delivered")


class SeqSpan:
    """Lifecycle timestamps and counts for one sequence number."""

    __slots__ = (
        "seq",
        "submitted_at",
        "first_sent_at",
        "last_sent_at",
        "acked_at",
        "delivered_at",
        "sends",
        "resends",
        "timeouts",
    )

    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.submitted_at: Optional[float] = None
        self.first_sent_at: Optional[float] = None
        self.last_sent_at: Optional[float] = None
        self.acked_at: Optional[float] = None
        self.delivered_at: Optional[float] = None
        self.sends = 0
        self.resends = 0
        self.timeouts = 0

    @property
    def state(self) -> str:
        """Current lifecycle state (the furthest transition reached)."""
        if self.delivered_at is not None:
            return "delivered"
        if self.acked_at is not None:
            return "acked"
        if self.resends:
            return "resent"
        if self.sends:
            return "sent"
        return "submitted"

    @property
    def complete(self) -> bool:
        """Both ends of the lifecycle observed (acked and delivered)."""
        return self.acked_at is not None and self.delivered_at is not None

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-deliver virtual time, if both ends were observed."""
        if self.submitted_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.submitted_at

    @property
    def time_in_window(self) -> Optional[float]:
        """Submit-to-ack virtual time (sender window occupancy)."""
        if self.submitted_at is None or self.acked_at is None:
            return None
        return self.acked_at - self.submitted_at

    def as_record(self) -> dict:
        """JSON-safe span record for the ``.jsonl`` export."""
        return {
            "type": "span",
            "seq": self.seq,
            "state": self.state,
            "submitted": self.submitted_at,
            "first_sent": self.first_sent_at,
            "last_sent": self.last_sent_at,
            "acked": self.acked_at,
            "delivered": self.delivered_at,
            "sends": self.sends,
            "resends": self.resends,
            "timeouts": self.timeouts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeqSpan(seq={self.seq}, state={self.state!r})"


class SpanTracker:
    """Fold trace records into per-seq spans and derived metrics.

    ``flow`` tags every exported span record with a flow id, so the
    per-flow trackers a :class:`~repro.sim.host.SessionHost` keeps
    remain distinguishable after export — ``blockack obs summarize``
    groups its latency percentiles by this tag.
    """

    def __init__(
        self, registry: MetricsRegistry, flow: Optional[int] = None
    ) -> None:
        self.registry = registry
        self.flow = flow
        self.spans: Dict[int, SeqSpan] = {}
        self._events = registry.counter(
            "protocol_events_total",
            "trace records by actor and kind",
            labelnames=("actor", "kind"),
        )
        self._retransmits = registry.histogram(
            "retransmits_per_seq",
            "extra transmissions each sequence number needed",
            buckets=COUNT_BUCKETS,
        )
        self._block_size = registry.histogram(
            "ack_block_size",
            "messages covered per received block acknowledgment (n-m+1)",
            buckets=COUNT_BUCKETS,
        )
        self._time_in_window = registry.histogram(
            "time_in_window",
            "virtual time from submit to cumulative acknowledgment",
        )
        self._latency = registry.histogram(
            "delivery_latency",
            "virtual time from submit to in-order delivery",
        )
        self._window_open = registry.counter(
            "window_open_total", "times the sender window reopened"
        )
        self._timeouts = registry.counter(
            "timeouts_total", "retransmission timers fired"
        )

    # ------------------------------------------------------------------
    # lifecycle entry points
    # ------------------------------------------------------------------

    def _span(self, seq: int) -> SeqSpan:
        span = self.spans.get(seq)
        if span is None:
            span = SeqSpan(seq)
            self.spans[seq] = span
        return span

    def on_submit(self, seq: int, now: float) -> None:
        """The application handed ``seq`` to the sender at ``now``."""
        self._span(seq).submitted_at = now

    def on_deliver(self, seq: int, now: float) -> Optional[float]:
        """``seq`` was released in order; returns its latency, if known.

        Normally the DELIVER trace record drives this via
        :meth:`on_event`; the runner also calls it directly from its
        ``on_deliver`` callback so protocols that do not emit DELIVER
        records still produce complete spans.
        """
        span = self._span(seq)
        if span.delivered_at is None:
            span.delivered_at = now
            latency = span.latency
            if latency is not None:
                self._latency.observe(latency)
            return latency
        return None

    def on_event(
        self,
        now: float,
        actor: str,
        kind: EventKind,
        seq: Optional[int],
        seq_hi: Optional[int],
        detail: Any,  # noqa: ARG002 - uniform record signature
    ) -> None:
        """One trace record from any endpoint (via :class:`ObsRecorder`)."""
        self._events.labels(actor=actor, kind=kind.value).inc()
        if kind is EventKind.SEND_DATA:
            span = self._span(seq)
            span.sends += 1
            if span.first_sent_at is None:
                span.first_sent_at = now
            span.last_sent_at = now
        elif kind is EventKind.RESEND_DATA:
            span = self._span(seq)
            span.sends += 1
            span.resends += 1
            span.last_sent_at = now
        elif kind is EventKind.RECV_ACK:
            hi = seq_hi if seq_hi is not None else seq
            if seq is not None and hi is not None and hi >= seq:
                self._block_size.observe(hi - seq + 1)
                for covered in range(seq, hi + 1):
                    self._mark_acked(covered, now)
        elif kind is EventKind.DELIVER:
            if seq is not None:
                self.on_deliver(seq, now)
        elif kind is EventKind.TIMEOUT:
            self._timeouts.inc()
            if seq is not None:
                self._span(seq).timeouts += 1
        elif kind is EventKind.WINDOW_OPEN:
            self._window_open.inc()

    def _mark_acked(self, seq: int, now: float) -> None:
        span = self.spans.get(seq)
        if span is None or span.acked_at is not None:
            return
        span.acked_at = now
        self._retransmits.observe(span.resends)
        in_window = span.time_in_window
        if in_window is not None:
            self._time_in_window.observe(in_window)

    # ------------------------------------------------------------------
    # reading the results
    # ------------------------------------------------------------------

    def latencies(self) -> List[float]:
        """Submit-to-deliver latencies of completed spans, in seq order.

        This is the list :class:`~repro.sim.runner.TransferResult`
        exposes; with observability on it replaces the runner's old
        submit-wrapping latency bookkeeping.
        """
        out = []
        for seq in sorted(self.spans):
            latency = self.spans[seq].latency
            if latency is not None:
                out.append(latency)
        return out

    def incomplete(self) -> List[SeqSpan]:
        """Spans that never reached ``delivered`` (lost-progress debris)."""
        return [
            self.spans[seq]
            for seq in sorted(self.spans)
            if not self.spans[seq].complete
        ]

    def as_records(self) -> List[dict]:
        """Every span as a JSON-safe export record, in sequence order."""
        records = [self.spans[seq].as_record() for seq in sorted(self.spans)]
        if self.flow is not None:
            for record in records:
                record["flow"] = self.flow
        return records

    def state_counts(self) -> Dict[str, int]:
        """How many spans sit in each lifecycle state right now."""
        counts: Dict[str, int] = {}
        for span in self.spans.values():
            counts[span.state] = counts.get(span.state, 0) + 1
        return counts


class ObsRecorder:
    """Recorder tee: spans + metrics first, then the wrapped recorder.

    Duck-typed against :class:`~repro.trace.recorder.TraceRecorder`, so
    endpoints are oblivious: ``sender.attach(sim, tx, recorder)`` works
    identically whether ``recorder`` is a plain trace recorder, the null
    recorder, or this tee.  Read-side methods delegate to the inner
    recorder, so ``result.trace`` behaves exactly as before.
    """

    def __init__(self, sim, tracker: SpanTracker, inner) -> None:
        self._sim = sim
        self._tracker = tracker
        self._inner = inner

    @property
    def enabled(self) -> bool:
        return True

    def record(self, actor, kind, seq=None, seq_hi=None, detail=None) -> None:
        self._tracker.on_event(self._sim.now, actor, kind, seq, seq_hi, detail)
        self._inner.record(actor, kind, seq=seq, seq_hi=seq_hi, detail=detail)

    # -- read side: delegate to the wrapped recorder -----------------------

    @property
    def events(self) -> List[TraceEvent]:
        return self._inner.events

    @property
    def dropped_events(self) -> int:
        return getattr(self._inner, "dropped_events", 0)

    def filter(self, kind=None, actor=None, predicate=None):
        return self._inner.filter(kind=kind, actor=actor, predicate=predicate)

    def count(self, kind: EventKind) -> int:
        return self._inner.count(kind)

    def format(self, limit=None) -> str:
        return self._inner.format(limit=limit)

    def decision_trace(self) -> List[tuple]:
        return self._inner.decision_trace()
