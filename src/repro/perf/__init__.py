"""Performance layer: parallel sweeps, result memoization, benchmarks.

* :mod:`repro.perf.sweep` — :class:`SweepRunner` / :func:`run_protocol_grid`
  fan independent protocol runs across a process pool and merge results
  deterministically; the sweep-heavy experiments (E3, E10, E12, E13, E14)
  route through it.
* :mod:`repro.perf.cache` — on-disk memoization of completed runs under
  ``results/cache/``, keyed by a stable hash of the full configuration.
* :mod:`repro.perf.bench` — the perf-regression harness behind the
  ``blockack perf`` CLI subcommand and the ``BENCH_<mode>.json`` files.
"""

from repro.perf.sweep import (
    MonitorSummary,
    RunConfig,
    SweepRunner,
    default_jobs,
    run_protocol_grid,
)
from repro.perf.cache import ResultCache, default_cache_root

__all__ = [
    "MonitorSummary",
    "RunConfig",
    "SweepRunner",
    "default_jobs",
    "run_protocol_grid",
    "ResultCache",
    "default_cache_root",
]
