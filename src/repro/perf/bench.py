"""Perf-regression harness: measure, persist, and compare baselines.

Three cooperating pieces:

* :func:`run_microbenchmarks` — repeated-timing measurements of the hot
  paths (engine events/sec on a chained and a heap-heavy workload, the
  channel transit path, and a full end-to-end block-ack transfer);
* :func:`update_bench_json` — merge measurements into a machine-readable
  ``BENCH_<mode>.json`` file (the perf trajectory artifact: the CLI
  writes the ``micro`` section, the benchmark suite's conftest writes the
  per-experiment ``experiments`` wall-clock section);
* :func:`compare_bench` / ``python -m repro.perf.bench`` — compare a
  fresh ``BENCH_*.json`` against a committed baseline and report
  regressions beyond a threshold.  CI runs this in warn-only mode.

``BENCH_<mode>.json`` schema::

    {
      "mode": "quick",
      "python": "3.11.7",
      "micro": {"engine_chain_events_per_sec": 1.2e6, ...},
      "experiments": {"e1": 0.41, ...}   # wall-clock seconds
    }

Higher is better for ``micro`` entries (rates); lower is better for
``experiments`` entries (seconds).  :func:`compare_bench` knows the
difference.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "run_microbenchmarks",
    "run_obs_overhead",
    "run_profile",
    "update_bench_json",
    "compare_bench",
    "main",
]


def _best_rate(work: Callable[[], int], repeats: int) -> float:
    """Best-of-N operations/sec for ``work`` (returns its op count)."""
    best = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        ops = work()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


def _engine_chain(n: int, engine: str = "default") -> int:
    from repro.sim.engine import make_simulator

    sim = make_simulator(engine)
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    sim.run()
    return count[0]


def _engine_fanout(n: int, engine: str = "default") -> int:
    from repro.sim.engine import make_simulator

    sim = make_simulator(engine)

    def noop() -> None:
        pass

    for index in range(n):
        sim.schedule((index % 97) * 0.01, noop)
    sim.run()
    return n


def _fanout_drain_rate(n: int, repeats: int, engine: str = "default") -> float:
    """Events/sec for the *drain phase only* of the fan-out workload.

    Scheduling happens outside the timed region, so this isolates the
    pull-fire loop — the part the calendar queue's batch drain speeds up
    — from enqueue cost (which :func:`_engine_fanout` measures mixed in).
    """
    from repro.sim.engine import make_simulator

    best = 0.0
    for _ in range(max(1, repeats)):
        sim = make_simulator(engine)

        def noop() -> None:
            pass

        for index in range(n):
            sim.schedule((index % 97) * 0.01, noop)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, n / elapsed)
    return best


def _channel_transit(n: int, engine: str = "default") -> int:
    import random

    from repro.channel.channel import Channel
    from repro.channel.delay import UniformDelay
    from repro.channel.impairments import BernoulliLoss
    from repro.channel.sampling import maybe_block
    from repro.sim.engine import make_simulator

    sim = make_simulator(engine)
    channel = Channel(
        sim,
        delay=UniformDelay(0.5, 1.5),
        loss=BernoulliLoss(0.05),
        rng=maybe_block(random.Random(1), engine),
    )
    channel.connect(lambda message: None)
    for index in range(n):
        sim.schedule(index * 0.01, channel.send, index)
    sim.run()
    return n


def _engine_chain_obs(n: int) -> int:
    """The chained-event workload with live engine telemetry attached."""
    from repro.obs.session import Observability
    from repro.sim.engine import Simulator

    sim = Simulator()
    Observability(run_id="bench").attach_sim(sim)
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    sim.run()
    return count[0]


def _transfer(
    total: int,
    obs: bool = False,
    causal: bool = False,
    engine: str = "default",
) -> Tuple[int, float]:
    """One end-to-end block-ack transfer; returns (events, throughput)."""
    from repro.channel.delay import UniformDelay
    from repro.channel.impairments import BernoulliLoss
    from repro.protocols.registry import make_pair
    from repro.sim.runner import LinkSpec, run_transfer
    from repro.workloads.sources import GreedySource

    sender, receiver = make_pair("blockack", window=8, bounded_wire=True)
    link = lambda: LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05))
    result = run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=link(),
        reverse=link(),
        seed=1,
        max_time=1_000_000.0,
        obs=obs,
        causal=causal,
        engine=engine,
    )
    assert result.completed and result.in_order
    return result.delivered, result.throughput


def _multiflow_session(total_per_flow: int, flows: int = 8) -> int:
    """One N-flow session over a shared lossy link; returns deliveries."""
    from repro.channel.delay import UniformDelay
    from repro.channel.impairments import BernoulliLoss
    from repro.sim.host import run_flows, uniform_flows
    from repro.sim.runner import LinkSpec

    link = lambda: LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05))
    session = run_flows(
        uniform_flows("blockack", flows, 8, total_per_flow),
        forward=link(),
        reverse=link(),
        seed=1,
        max_time=1_000_000.0,
    )
    assert session.completed and session.in_order
    return session.delivered


def run_microbenchmarks(scale: int = 1, repeats: int = 3) -> Dict[str, float]:
    """Measure the hot paths; returns ``{metric: rate}`` (higher=better).

    ``scale`` multiplies every workload size (1 is the quick/CI size).

    Unsuffixed engine/channel/transfer keys measure the default
    (binary-heap) engine — their semantics are unchanged from before the
    fast engine existed, so baselines stay comparable.  ``*_fast_*``
    twins measure the same workload on the calendar-queue engine; the
    ``*_drain_*`` pair isolates the fan-out drain phase (scheduling
    untimed), which is where batch draining pays off.
    """
    n_events = 100_000 * scale
    n_msgs = 20_000 * scale
    n_transfer = 1_000 * scale

    metrics = {
        "engine_chain_events_per_sec": _best_rate(
            lambda: _engine_chain(n_events), repeats
        ),
        "engine_chain_fast_events_per_sec": _best_rate(
            lambda: _engine_chain(n_events, engine="fast"), repeats
        ),
        "engine_fanout_events_per_sec": _best_rate(
            lambda: _engine_fanout(n_events), repeats
        ),
        "engine_fanout_fast_events_per_sec": _best_rate(
            lambda: _engine_fanout(n_events, engine="fast"), repeats
        ),
        "engine_fanout_drain_events_per_sec": _fanout_drain_rate(
            n_events, repeats
        ),
        "engine_fanout_drain_fast_events_per_sec": _fanout_drain_rate(
            n_events, repeats, engine="fast"
        ),
        "channel_transit_msgs_per_sec": _best_rate(
            lambda: _channel_transit(n_msgs), repeats
        ),
        "channel_transit_fast_msgs_per_sec": _best_rate(
            lambda: _channel_transit(n_msgs, engine="fast"), repeats
        ),
    }

    metrics["transfer_msgs_per_sec"] = _transfer_rate(n_transfer, repeats)
    metrics["transfer_fast_msgs_per_sec"] = _transfer_rate(
        n_transfer, repeats, engine="fast"
    )
    # mux + demux + per-flow accounting on the same payload volume as the
    # single-flow transfer benchmark: the gap between the two rates is
    # the flow-multiplexing tax
    metrics["multiflow_session_msgs_per_sec"] = _best_rate(
        lambda: _multiflow_session(max(1, n_transfer // 8), flows=8), repeats
    )
    return metrics


def _transfer_rate(
    total: int,
    repeats: int,
    obs: bool = False,
    causal: bool = False,
    engine: str = "default",
) -> float:
    best = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        delivered, _ = _transfer(total, obs=obs, causal=causal, engine=engine)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, delivered / elapsed)
    return best


def run_obs_overhead(scale: int = 1, repeats: int = 3) -> Dict[str, float]:
    """Observability cost: the same workloads with telemetry off vs. on.

    ``*_off_*`` entries exercise the allocation-free null path (no
    session attached — the numbers the <2% regression budget applies
    to); ``*_on_*`` entries run with a live per-run
    :class:`~repro.obs.session.Observability` (engine instruments, span
    tracking, channel observers).  ``*_overhead_pct`` is how much slower
    "on" is than "off" — informational, not budgeted: observed runs are
    expected to pay for their telemetry.

    ``transfer_causal_*`` entries measure the causal flight recorder
    (:mod:`repro.obs.causal`) alone — no obs session — under both
    engines.  The <3% always-on budget attaches to what every run pays
    whether or not the recorder is enabled: the instrument seams (the
    timer-observer None check is the only one on a hot path), tracked by
    ``transfer_off_msgs_per_sec`` against the committed baseline.  The
    ``transfer_causal_*_overhead_pct`` of a causal-*enabled* run is
    informational, exactly like the obs ``*_on_*`` numbers above: full
    per-event graph recording (~11 nodes per delivered message) costs a
    real fraction of a ~30µs/msg transfer loop, and pretending otherwise
    would just mean recording less.
    """
    n_events = 100_000 * scale
    n_transfer = 1_000 * scale

    chain_off = _best_rate(lambda: _engine_chain(n_events), repeats)
    chain_on = _best_rate(lambda: _engine_chain_obs(n_events), repeats)
    transfer_off = _transfer_rate(n_transfer, repeats)
    transfer_on = _transfer_rate(n_transfer, repeats, obs=True)
    causal_on = _transfer_rate(n_transfer, repeats, causal=True)
    transfer_fast_off = _transfer_rate(n_transfer, repeats, engine="fast")
    causal_fast_on = _transfer_rate(
        n_transfer, repeats, causal=True, engine="fast"
    )

    def overhead(off: float, on: float) -> float:
        return (off / on - 1.0) * 100.0 if on > 0 else 0.0

    return {
        "engine_chain_off_events_per_sec": chain_off,
        "engine_chain_on_events_per_sec": chain_on,
        "engine_chain_overhead_pct": overhead(chain_off, chain_on),
        "transfer_off_msgs_per_sec": transfer_off,
        "transfer_on_msgs_per_sec": transfer_on,
        "transfer_overhead_pct": overhead(transfer_off, transfer_on),
        "transfer_causal_on_msgs_per_sec": causal_on,
        "transfer_causal_overhead_pct": overhead(transfer_off, causal_on),
        "transfer_fast_off_msgs_per_sec": transfer_fast_off,
        "transfer_causal_fast_on_msgs_per_sec": causal_fast_on,
        "transfer_causal_fast_overhead_pct": overhead(
            transfer_fast_off, causal_fast_on
        ),
    }


def run_profile(
    outdir: pathlib.Path,
    scale: int = 1,
    engines: Tuple[str, ...] = ("default", "fast"),
    top: int = 30,
) -> List[pathlib.Path]:
    """cProfile the end-to-end transfer micro under each engine.

    Writes, per engine, a raw ``transfer_<engine>.prof`` (loadable with
    :mod:`pstats` or snakeviz) and a ``transfer_<engine>.txt`` with the
    ``top`` hottest functions by cumulative and by internal time.
    Returns the written paths.
    """
    import cProfile
    import io
    import pstats

    outdir = pathlib.Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    n_transfer = 1_000 * scale
    written: List[pathlib.Path] = []
    for engine in engines:
        _transfer(50, engine=engine)  # warm imports/caches outside the profile
        profiler = cProfile.Profile()
        profiler.enable()
        delivered, _ = _transfer(n_transfer, engine=engine)
        profiler.disable()

        prof_path = outdir / f"transfer_{engine}.prof"
        profiler.dump_stats(prof_path)

        buffer = io.StringIO()
        buffer.write(
            f"cProfile: blockack transfer micro, engine={engine!r}, "
            f"{delivered} messages delivered\n\n"
        )
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative")
        buffer.write(f"--- top {top} by cumulative time ---\n")
        stats.print_stats(top)
        stats.sort_stats("tottime")
        buffer.write(f"--- top {top} by internal time ---\n")
        stats.print_stats(top)
        txt_path = outdir / f"transfer_{engine}.txt"
        txt_path.write_text(buffer.getvalue())
        written.extend([prof_path, txt_path])
    return written


def update_bench_json(
    path: pathlib.Path,
    mode: str,
    micro: Optional[Dict[str, float]] = None,
    experiments: Optional[Dict[str, float]] = None,
    obs: Optional[Dict[str, float]] = None,
) -> dict:
    """Merge new measurements into ``path``, creating it if needed.

    Sections not passed are preserved from the existing file, so the CLI
    (micro + obs) and the benchmark suite (experiments) can each own
    their part of one ``BENCH_<mode>.json``.  The ``obs`` section records
    observability overhead (see :func:`run_obs_overhead`); baseline
    comparison ignores it.
    """
    path = pathlib.Path(path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data["mode"] = mode
    data["python"] = platform.python_version()
    if micro is not None:
        data["micro"] = {k: micro[k] for k in sorted(micro)}
    if experiments is not None:
        merged = dict(data.get("experiments", {}))
        merged.update(experiments)
        data["experiments"] = {k: merged[k] for k in sorted(merged)}
    if obs is not None:
        data["obs"] = {k: obs[k] for k in sorted(obs)}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def compare_bench(
    current: dict, baseline: dict, threshold: float = 0.25
) -> List[str]:
    """Regressions in ``current`` vs ``baseline`` beyond ``threshold``.

    ``micro`` entries are rates (a drop is a regression); ``experiments``
    entries are wall-clock seconds (a rise is a regression).  A metric
    present in the baseline but absent from the fresh measurements is
    reported as a ``missing measurement`` line — a micro that silently
    stops running would otherwise pass every comparison forever.  Returns
    human-readable problem lines; empty means within budget.
    """
    regressions: List[str] = []
    for name, old in (baseline.get("micro") or {}).items():
        if old <= 0:
            continue
        new = (current.get("micro") or {}).get(name)
        if new is None:
            regressions.append(
                f"micro.{name}: missing measurement "
                f"(baseline {old:,.0f}/s, no fresh value)"
            )
            continue
        if new < old * (1.0 - threshold):
            regressions.append(
                f"micro.{name}: {new:,.0f}/s vs baseline {old:,.0f}/s "
                f"({new / old - 1.0:+.0%})"
            )
    for name, old in (baseline.get("experiments") or {}).items():
        if old <= 0:
            continue
        new = (current.get("experiments") or {}).get(name)
        if new is None:
            regressions.append(
                f"experiments.{name}: missing measurement "
                f"(baseline {old:.2f}s, no fresh value)"
            )
            continue
        if new > old * (1.0 + threshold):
            regressions.append(
                f"experiments.{name}: {new:.2f}s vs baseline {old:.2f}s "
                f"({new / old - 1.0:+.0%})"
            )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.perf.bench --compare NEW --baseline OLD``.

    Prints GitHub-annotation warnings for each regression.  Exit code is
    0 unless ``--strict`` is given and regressions exist.
    """
    parser = argparse.ArgumentParser(prog="repro.perf.bench")
    parser.add_argument("--compare", required=True, help="fresh BENCH_*.json")
    parser.add_argument("--baseline", required=True, help="committed baseline")
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--strict", action="store_true", help="fail on regression")
    args = parser.parse_args(argv)

    current = json.loads(pathlib.Path(args.compare).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    regressions = compare_bench(current, baseline, threshold=args.threshold)
    if not regressions:
        print(
            f"perf within {args.threshold:.0%} of baseline "
            f"({args.baseline})"
        )
        return 0
    for line in regressions:
        title = (
            "missing measurement"
            if ": missing measurement" in line
            else "perf regression"
        )
        print(f"::warning title={title}::{line}")
    return 1 if args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
