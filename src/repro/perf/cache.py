"""On-disk memoization of completed protocol runs.

Every run a :class:`~repro.perf.sweep.SweepRunner` executes is keyed by a
stable hash of its full configuration (protocol, window, transfer size,
both link specifications, seed, runner limits, protocol kwargs, fault
plan) and stored as one JSON file under the cache root — by default
``results/cache/`` at the repository root.  Re-running a sweep with the
same configurations loads the stored results instead of simulating, so a
full-size suite regenerates its tables from a warm cache in seconds.

The key is built from a canonical *description string* of the config
(:func:`describe`), which leans on the deterministic ``__repr__`` every
delay model, loss model, and policy object in this package already
carries.  JSON round-trips are exact for the payload types involved
(finite floats, ints, strings, bools), so a cached result is
byte-identical to a fresh one.

Invalidation is deliberately manual: the cache persists across code
changes, so after editing protocol or channel behaviour delete the cache
directory (``rm -rf results/cache``) or bump ``CACHE_VERSION``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Optional

__all__ = ["ResultCache", "describe", "config_digest", "default_cache_root", "CACHE_VERSION"]

#: bump to orphan every previously stored entry (schema or semantics change)
CACHE_VERSION = 1


def default_cache_root() -> pathlib.Path:
    """``results/cache`` under the repository/package checkout root."""
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return pathlib.Path(override)
    return pathlib.Path(__file__).resolve().parents[3] / "results" / "cache"


def describe(value: Any) -> str:
    """Canonical, content-addressed description of a config value.

    Handles the vocabulary that appears in sweep configurations:
    primitives, sequences, mappings, dataclasses, and the model/policy
    objects whose ``__repr__`` spells out their parameters.  The result
    is stable across processes and hash seeds.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(describe(item) for item in value) + "]"
    if isinstance(value, dict):
        items = sorted(value.items())
        return "{" + ",".join(f"{k}={describe(v)}" for k, v in items) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={describe(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    # delay/loss models, ack policies, fault ingredients: parameter reprs
    return f"{type(value).__name__}<{value!r}>"


def config_digest(description: str) -> str:
    """SHA-256 hex digest of a canonical config description."""
    payload = f"v{CACHE_VERSION}/{description}".encode()
    return hashlib.sha256(payload).hexdigest()


class ResultCache:
    """One-file-per-run JSON store under ``root``."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Stored result payload for ``key``, or None."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, key: str, description: str, payload: dict) -> None:
        """Store ``payload`` for ``key``; atomic within one filesystem."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "config": description,
            "result": payload,
        }
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(entry, handle, separators=(",", ":"))
        tmp.replace(path)
