"""Parallel sweep runner: fan independent protocol runs across processes.

The paper's comparative method (common random numbers, one seeded
:class:`~repro.sim.randomness.RandomStreams` family per run) makes every
replication of every sweep cell perfectly independent, so the grid of
``(protocol, window, total, links, seed, kwargs)`` runs an experiment
performs is embarrassingly parallel.  :class:`SweepRunner` exploits that:

* describe each run declaratively as a :class:`RunConfig` (everything in
  it is picklable, so configs cross process boundaries);
* fan the runs across a ``concurrent.futures.ProcessPoolExecutor`` when
  ``jobs > 1`` (``jobs=1`` is a plain serial loop — no pool, no pickling);
* merge results back **deterministically**: results are returned in the
  exact order of the submitted configs regardless of completion order,
  and every result — serial, parallel, or cached — passes through the
  same serialized representation, so the three paths are byte-identical;
* memoize completed runs in an on-disk :class:`~repro.perf.cache.ResultCache`
  keyed by a stable hash of the full config.

Knobs: ``jobs`` comes from the ``--jobs`` CLI flag or the ``REPRO_JOBS``
environment variable (default 1); caching is opt-in via ``REPRO_CACHE=1``
(or an explicit ``cache=`` argument) because a persistent cache survives
code changes — see :mod:`repro.perf.cache` for the invalidation story.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.perf.cache import ResultCache, config_digest, default_cache_root, describe
from repro.sim.runner import LinkSpec, TransferResult, run_transfer
from repro.workloads.sources import GreedySource

__all__ = [
    "RunConfig",
    "SweepRunner",
    "run_protocol_grid",
    "default_jobs",
    "obs_enabled_by_env",
    "causal_enabled_by_env",
    "execute_config",
    "serialize_result",
    "deserialize_result",
    "MonitorSummary",
]


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default: 1, serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None


def cache_enabled_by_env() -> bool:
    """True when ``REPRO_CACHE`` asks for the on-disk result cache."""
    return os.environ.get("REPRO_CACHE", "") not in ("", "0")


def obs_enabled_by_env() -> bool:
    """True when ``REPRO_OBS`` asks grid runs to record telemetry.

    Set by the CLI's ``--obs`` flag (like ``--jobs``/``REPRO_JOBS``);
    each observed grid cell exports one ``results/obs/<run_id>.jsonl``.
    """
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


def causal_enabled_by_env() -> bool:
    """True when ``REPRO_CAUSAL`` asks runs to keep the causal layer on.

    Set by the CLI's ``--causal`` flag.  Every run then carries the
    always-on flight-recorder ring; anomalous cells (link-dead verdicts,
    diverged recovery, deep backoff, invariant violations, collapsed
    fairness) dump ``results/obs/flight/<run_id>.jsonl``.
    """
    return os.environ.get("REPRO_CAUSAL", "") not in ("", "0")


def sched_from_env() -> Optional[str]:
    """Scheduler pinned by ``REPRO_SCHED`` (the CLI's ``--sched`` flag).

    Returns ``None`` when unset — experiments then sweep their own
    scheduler axis; a pinned value narrows the sweep to one scheduler
    (the way ``REPRO_FLOWS`` narrows e15's flow-count axis).
    """
    sched = os.environ.get("REPRO_SCHED", "")
    if not sched:
        return None
    from repro.channel.arbiter import SCHEDULERS  # local: avoid cycles

    if sched not in SCHEDULERS:
        raise ValueError(
            f"REPRO_SCHED={sched!r} is not one of {SCHEDULERS}"
        )
    return sched


def engine_from_env() -> str:
    """Engine mode requested by ``REPRO_ENGINE`` (default: ``"default"``).

    Set by the CLI's ``--engine`` flag so experiments and grid runs pick
    the event-loop implementation without code changes.  Unknown values
    raise here, at configuration time, rather than deep inside a worker.
    """
    engine = os.environ.get("REPRO_ENGINE", "") or "default"
    from repro.sim.engine import ENGINES  # local: avoid cycles

    if engine not in ENGINES:
        raise ValueError(
            f"REPRO_ENGINE={engine!r} is not one of {ENGINES}"
        )
    return engine


@dataclass
class RunConfig:
    """One independent protocol run, described declaratively.

    This is the picklable mirror of a
    :func:`repro.experiments.common.run_protocol` call: the protocol pair
    is built by name through the registry inside the worker, the source
    is greedy, and the channels come from the two :class:`LinkSpec`
    descriptions.  ``fault_plan`` (if any) is treated as a template and
    deep-copied before each run so its mutable state (rng, counters)
    never leaks between runs or processes.
    """

    protocol: str
    window: int
    total: int
    forward: LinkSpec
    reverse: LinkSpec
    seed: int
    max_time: Optional[float] = None
    max_events: int = 20_000_000
    monitor_invariants: bool = False
    fault_plan: Optional[Any] = None
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)
    obs: bool = False  # record + export telemetry for this run
    flows: int = 1  # concurrent flows sharing the links; total is per-flow
    engine: str = "default"  # event-loop implementation (sim.engine.ENGINES)
    causal: bool = False  # causal graph + flight recorder (repro.obs.causal)
    link_rate: Optional[float] = None  # arbiter capacity (frames/tu); None=off
    link_burst: float = 8.0  # arbiter token-bucket depth (frames)
    sched: str = "fifo"  # arbiter scheduler (repro.channel.arbiter.SCHEDULERS)
    queue_limit: Optional[int] = 64  # arbiter per-flow droptail bound
    flow_windows: Optional[Tuple[int, ...]] = None  # heterogeneous windows
    flow_weights: Optional[Tuple[float, ...]] = None  # arbiter weights

    def description(self) -> str:
        """Canonical config string; equal configs describe identically."""
        parts = [
            f"protocol={self.protocol!r}",
            f"window={self.window}",
            f"total={self.total}",
            f"forward={describe(self.forward)}",
            f"reverse={describe(self.reverse)}",
            f"seed={self.seed}",
            f"max_time={self.max_time!r}",
            f"max_events={self.max_events}",
            f"monitor={self.monitor_invariants}",
            f"faults={_describe_fault_plan(self.fault_plan)}",
            f"kwargs={describe(self.protocol_kwargs)}",
            f"obs={self.obs}",
        ]
        if self.flows != 1:
            # appended conditionally so every pre-multi-flow cache entry
            # keeps its key; flows=1 is byte-identical to the old format
            parts.append(f"flows={self.flows}")
        if self.engine != "default":
            # same conditional-append contract: default-engine entries keep
            # their pre-engine cache keys, and results produced by a
            # different engine can never satisfy a default-engine lookup
            parts.append(f"engine={self.engine!r}")
        if self.causal:
            # conditional-append again: causal-off configs keep their
            # pre-causal cache keys, and a causal run (which may have
            # written a flight dump) never satisfies a causal-off lookup
            parts.append(f"causal={self.causal}")
        if self.link_rate is not None:
            # the arbiter block appends as a unit, and only when a
            # bottleneck is actually configured: rate=None runs keep
            # their pre-arbiter cache keys regardless of sched defaults
            parts.append(f"link_rate={self.link_rate!r}")
            parts.append(f"link_burst={self.link_burst!r}")
            parts.append(f"sched={self.sched!r}")
            parts.append(f"queue_limit={self.queue_limit!r}")
        if self.flow_windows is not None:
            parts.append(f"flow_windows={tuple(self.flow_windows)}")
        if self.flow_weights is not None:
            parts.append(f"flow_weights={tuple(self.flow_weights)}")
        return "RunConfig(" + ",".join(parts) + ")"

    def cache_key(self) -> str:
        """Stable hash of the full configuration + seed."""
        return config_digest(self.description())

    def run_id(self) -> str:
        """Deterministic telemetry run id: readable prefix + config digest."""
        flows = f"_f{self.flows}" if self.flows != 1 else ""
        engine = f"_{self.engine}" if self.engine != "default" else ""
        arbiter = (
            f"_r{self.link_rate:g}_{self.sched}"
            if self.link_rate is not None
            else ""
        )
        return (
            f"{self.protocol.replace('-', '_')}_w{self.window}"
            f"_n{self.total}{flows}{engine}{arbiter}"
            f"_s{self.seed}_{self.cache_key()[:8]}"
        )


def _describe_fault_plan(plan: Any) -> str:
    if plan is None:
        return "None"
    # FaultPlan's repr is a debugging aid; spell out every constructor
    # field so the cache key captures the complete scripted fault trace
    fields = {
        "forward_corruption": plan.forward_corruption,
        "reverse_corruption": plan.reverse_corruption,
        "forward_brownout": plan.forward_brownout,
        "reverse_brownout": plan.reverse_brownout,
        "crashes": list(plan.crashes),
        "seed": plan.seed,
    }
    corruptions = getattr(plan, "corruptions", ())
    if corruptions:
        # appended conditionally so every pre-corruption cache entry
        # keeps its key; a corruption-free plan describes as before
        fields["corruptions"] = [str(spec) for spec in corruptions]
    return describe(fields)


class MonitorSummary:
    """Process-portable stand-in for an attached InvariantMonitor.

    Holds the formatted violation strings; ``len(result.monitor.violations)``
    and ``result.monitor.ok`` work the same as on the live monitor.
    """

    __slots__ = ("violations",)

    def __init__(self, violations: Sequence[str]) -> None:
        self.violations = list(violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonitorSummary({len(self.violations)} violation(s))"


def execute_config(config: RunConfig) -> TransferResult:
    """Build and run one configured transfer (in whatever process).

    ``flows > 1`` routes through the multi-flow session host
    (:func:`repro.sim.host.run_flows`): ``flows`` identical greedy flows
    of the protocol share the two links, and the flattened result
    carries per-flow rows plus the Jain fairness index.
    """
    from repro.protocols.registry import make_pair  # local: avoid cycles

    obs_labels = None
    if config.obs or config.causal:
        obs_labels = {
            "protocol": config.protocol,
            "window": str(config.window),
            "total": str(config.total),
            "seed": str(config.seed),
        }
        if config.flows != 1:
            obs_labels["flows"] = str(config.flows)
        if config.link_rate is not None:
            obs_labels["link_rate"] = str(config.link_rate)
            obs_labels["sched"] = config.sched
    plan = copy.deepcopy(config.fault_plan) if config.fault_plan is not None else None

    arbiter = None
    if config.link_rate is not None:
        from repro.channel.arbiter import ArbiterConfig  # local: avoid cycles

        arbiter = ArbiterConfig(
            rate=config.link_rate,
            burst=config.link_burst,
            scheduler=config.sched,
            queue_limit=config.queue_limit,
        )

    if config.flow_windows is not None and len(config.flow_windows) != config.flows:
        raise ValueError(
            f"flow_windows has {len(config.flow_windows)} entries for "
            f"flows={config.flows}; set flows=len(flow_windows)"
        )
    if config.flow_weights is not None and len(config.flow_weights) != config.flows:
        raise ValueError(
            f"flow_weights has {len(config.flow_weights)} entries for "
            f"flows={config.flows}"
        )

    if config.flows > 1 or arbiter is not None or config.flow_windows is not None:
        if plan is not None:
            raise ValueError(
                "fault plans script a single endpoint pair; multi-flow "
                "sessions do not support them yet (see ROADMAP open items)"
            )
        from repro.sim.host import (  # local: avoid cycles
            mixed_flows,
            run_flows,
            session_to_transfer,
            uniform_flows,
        )

        if config.flow_windows is not None:
            specs = mixed_flows(
                config.protocol,
                config.flow_windows,
                config.total,
                weights=config.flow_weights,
                **config.protocol_kwargs,
            )
        else:
            specs = uniform_flows(
                config.protocol,
                config.flows,
                config.window,
                config.total,
                **config.protocol_kwargs,
            )
            if config.flow_weights is not None:
                for spec, weight in zip(specs, config.flow_weights):
                    spec.weight = weight

        session = run_flows(
            specs,
            forward=config.forward,
            reverse=config.reverse,
            seed=config.seed,
            max_time=config.max_time,
            max_events=config.max_events,
            monitor_invariants=config.monitor_invariants,
            obs=config.obs,
            obs_run_id=(
                config.run_id() if (config.obs or config.causal) else None
            ),
            obs_labels=obs_labels,
            causal=config.causal,
            engine=config.engine,
            arbiter=arbiter,
        )
        result = session_to_transfer(session)
        if result.obs is not None:
            result.obs_path = str(result.obs.export())
        return result

    sender, receiver = make_pair(
        config.protocol, window=config.window, **config.protocol_kwargs
    )
    result = run_transfer(
        sender,
        receiver,
        GreedySource(config.total),
        forward=config.forward,
        reverse=config.reverse,
        seed=config.seed,
        max_time=config.max_time,
        max_events=config.max_events,
        monitor_invariants=config.monitor_invariants,
        fault_plan=plan,
        obs=config.obs,
        obs_run_id=(
            config.run_id() if (config.obs or config.causal) else None
        ),
        obs_labels=obs_labels,
        causal=config.causal,
        engine=config.engine,
    )
    if result.obs is not None:
        # exported eagerly, in the worker process, under a deterministic
        # name: the file outlives the process and its path rides the
        # serialized payload through cache hits unchanged
        result.obs_path = str(result.obs.export())
    return result


def serialize_result(result: TransferResult) -> dict:
    """Reduce a TransferResult to the JSON-safe payload sweeps consume.

    Traces and payload lists are not carried (sweep configs never request
    them); the invariant monitor is reduced to its violation strings.
    JSON round-trips of this payload are exact, which is what makes the
    cached path byte-identical to a fresh run.
    """
    return {
        "completed": result.completed,
        "duration": result.duration,
        "delivered": result.delivered,
        "submitted": result.submitted,
        "in_order": result.in_order,
        "sender_stats": result.sender_stats,
        "receiver_stats": result.receiver_stats,
        "forward_stats": result.forward_stats,
        "reverse_stats": result.reverse_stats,
        "timeout_period": result.timeout_period,
        "latencies": list(result.latencies),
        "fault_stats": result.fault_stats,
        "monitor_violations": (
            [str(v) for v in result.monitor.violations]
            if result.monitor is not None
            else None
        ),
        "obs_path": result.obs_path,
        "flight_path": result.flight_path,
        "per_flow": result.per_flow or None,
        "fairness": result.fairness,
        "ordered_prefix": result.ordered_prefix,
        "stabilization": result.stabilization,
        "arbiter_stats": result.arbiter_stats or None,
    }


def deserialize_result(payload: dict) -> TransferResult:
    """Rebuild a TransferResult from :func:`serialize_result` output."""
    violations = payload.get("monitor_violations")
    return TransferResult(
        completed=payload["completed"],
        duration=payload["duration"],
        delivered=payload["delivered"],
        submitted=payload["submitted"],
        in_order=payload["in_order"],
        sender_stats=payload["sender_stats"],
        receiver_stats=payload["receiver_stats"],
        forward_stats=payload["forward_stats"],
        reverse_stats=payload["reverse_stats"],
        timeout_period=payload["timeout_period"],
        latencies=list(payload["latencies"]),
        fault_stats=payload["fault_stats"],
        monitor=MonitorSummary(violations) if violations is not None else None,
        obs_path=payload.get("obs_path"),  # .get: pre-obs cache entries
        flight_path=payload.get("flight_path"),  # pre-causal entries too
        per_flow=list(payload.get("per_flow") or []),  # pre-multi-flow too
        fairness=payload.get("fairness"),
        ordered_prefix=payload.get("ordered_prefix", payload["in_order"]),
        stabilization=payload.get("stabilization"),  # pre-corruption: None
        arbiter_stats=dict(payload.get("arbiter_stats") or {}),  # pre-arbiter
    )


def _execute_serialized(config: RunConfig) -> dict:
    """Worker entry point: run one config, return the portable payload."""
    return serialize_result(execute_config(config))


class SweepRunner:
    """Fan a list of :class:`RunConfig` across processes, with memoization.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` reads ``REPRO_JOBS``; ``1`` runs the
        configs serially in-process (the fallback path, and the reference
        the parallel path must match byte-for-byte).
    cache:
        ``None`` enables the default on-disk cache only when
        ``REPRO_CACHE`` is set; ``True`` enables it unconditionally;
        ``False`` disables it; a path string/Path uses that directory.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Union[None, bool, str, os.PathLike] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if cache is None:
            cache = cache_enabled_by_env()
        if cache is True:
            self.cache: Optional[ResultCache] = ResultCache(default_cache_root())
        elif cache is False:
            self.cache = None
        else:
            self.cache = ResultCache(cache)
        self.executed = 0  # runs actually simulated by the last run()
        self.cached = 0  # runs served from the cache by the last run()

    def run(self, configs: Sequence[RunConfig]) -> List[TransferResult]:
        """Run every config; results come back in config order."""
        payloads = self.run_serialized(configs)
        return [deserialize_result(payload) for payload in payloads]

    def run_serialized(self, configs: Sequence[RunConfig]) -> List[dict]:
        """Like :meth:`run` but returns the raw JSON-safe payloads."""
        self.executed = 0
        self.cached = 0
        payloads: List[Optional[dict]] = [None] * len(configs)
        keys: List[Optional[str]] = [None] * len(configs)
        pending: List[int] = []

        if self.cache is not None:
            for index, config in enumerate(configs):
                key = config.cache_key()
                keys[index] = key
                hit = self.cache.get(key)
                if hit is None:
                    pending.append(index)
                else:
                    payloads[index] = hit
                    self.cached += 1
        else:
            pending = list(range(len(configs)))

        if pending:
            if self.jobs > 1:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    fresh = list(
                        pool.map(
                            _execute_serialized,
                            [configs[index] for index in pending],
                        )
                    )
            else:
                fresh = [
                    _execute_serialized(configs[index]) for index in pending
                ]
            for index, payload in zip(pending, fresh):
                payloads[index] = payload
                self.executed += 1
                if self.cache is not None:
                    self.cache.put(
                        keys[index], configs[index].description(), payload
                    )

        return payloads  # type: ignore[return-value]


def run_protocol_grid(
    configs: Sequence[RunConfig],
    jobs: Optional[int] = None,
    cache: Union[None, bool, str, os.PathLike] = None,
) -> List[TransferResult]:
    """One-call sweep: build a :class:`SweepRunner` and run the grid."""
    return SweepRunner(jobs=jobs, cache=cache).run(configs)
