"""Runnable protocol endpoints: block acknowledgment and all baselines."""

from repro.protocols.ack_policy import (
    AckPolicy,
    CountingAckPolicy,
    DelayedAckPolicy,
    EagerAckPolicy,
)
from repro.protocols.alternating_bit import (
    make_alternating_bit_receiver,
    make_alternating_bit_sender,
)
from repro.protocols.base import (
    ReceiverEndpoint,
    ReceiverStats,
    SenderEndpoint,
    SenderStats,
)
from repro.protocols.blockack import (
    TIMEOUT_MODES,
    BlockAckReceiver,
    BlockAckSender,
    safe_timeout_period,
)
from repro.protocols.blockack_bounded import (
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
)
from repro.protocols.gobackn import GoBackNReceiver, GoBackNSender
from repro.protocols.registry import PROTOCOLS, make_pair, protocol_names
from repro.protocols.sack import SackAck, SackReceiver, SackSender
from repro.protocols.selective_repeat import (
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
)
from repro.protocols.stenning import StenningReceiver, StenningSender, decode_latest

__all__ = [
    "SenderEndpoint",
    "ReceiverEndpoint",
    "SenderStats",
    "ReceiverStats",
    "BlockAckSender",
    "BlockAckReceiver",
    "safe_timeout_period",
    "TIMEOUT_MODES",
    "BoundedBlockAckSender",
    "BoundedBlockAckReceiver",
    "GoBackNSender",
    "GoBackNReceiver",
    "SelectiveRepeatSender",
    "SelectiveRepeatReceiver",
    "StenningSender",
    "StenningReceiver",
    "decode_latest",
    "SackSender",
    "SackReceiver",
    "SackAck",
    "make_alternating_bit_sender",
    "make_alternating_bit_receiver",
    "AckPolicy",
    "EagerAckPolicy",
    "DelayedAckPolicy",
    "CountingAckPolicy",
    "PROTOCOLS",
    "make_pair",
    "protocol_names",
]
