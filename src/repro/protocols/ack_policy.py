"""Receiver acknowledgment scheduling policies.

The paper's receiver actions 4 and 5 are *nondeterministic*: the receiver
may acknowledge after every message or let a block build up and cover many
messages with one acknowledgment ("the receiver attempts to acknowledge as
many data messages as possible with a single block acknowledgment").  A
policy object resolves that nondeterminism in the timed simulation:

* :class:`EagerAckPolicy` — acknowledge as soon as anything is pending.
  Blocks still form naturally when a retransmission fills a gap and
  releases a buffered run, but in-order traffic gets one ack per message.
* :class:`DelayedAckPolicy` — wait up to ``delay`` after the first pending
  message so consecutive arrivals coalesce into one block.  The classic
  delayed-ack tradeoff: fewer acks (E4) against added latency, which must
  also be budgeted into the sender's safe timeout period.
* :class:`CountingAckPolicy` — acknowledge once ``threshold`` messages are
  pending, with a ``max_delay`` backstop so a final partial block is never
  stranded.

Policies must guarantee a bounded worst-case acknowledgment latency
(:attr:`AckPolicy.max_latency`); the sender's timeout-period computation
(:func:`repro.protocols.blockack.safe_timeout_period`) depends on it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.timers import Timer

__all__ = ["AckPolicy", "EagerAckPolicy", "DelayedAckPolicy", "CountingAckPolicy"]


class AckPolicy(ABC):
    """Decides when the receiver runs its acknowledge-and-advance step."""

    def __init__(self) -> None:
        self._flush: Optional[Callable[[], None]] = None
        self._sim: Optional[Simulator] = None

    def attach(self, sim: Simulator, flush: Callable[[], None]) -> None:
        """Bind to the simulator and the receiver's flush function."""
        self._sim = sim
        self._flush = flush

    @abstractmethod
    def on_update(self, pending: int) -> None:
        """Called after data arrives; ``pending`` is the acknowledgeable
        run length (``vr - nr`` after sliding)."""

    def cancel_pending(self) -> None:
        """Drop any scheduled flush (crash semantics); default no-op."""

    @property
    @abstractmethod
    def max_latency(self) -> float:
        """Worst-case delay between a message becoming acknowledgeable and
        the acknowledgment leaving the receiver."""


class EagerAckPolicy(AckPolicy):
    """Acknowledge immediately whenever a block is pending."""

    def on_update(self, pending: int) -> None:
        if pending > 0:
            self._flush()

    @property
    def max_latency(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "EagerAckPolicy()"


class DelayedAckPolicy(AckPolicy):
    """Hold acknowledgments up to ``delay`` so arrivals coalesce."""

    def __init__(self, delay: float) -> None:
        super().__init__()
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self._timer: Optional[Timer] = None

    def attach(self, sim: Simulator, flush: Callable[[], None]) -> None:
        super().attach(sim, flush)
        self._timer = Timer(sim, self._fire, name="delayed-ack")

    def on_update(self, pending: int) -> None:
        if pending > 0 and not self._timer.running:
            self._timer.start(self.delay)

    def _fire(self) -> None:
        self._flush()

    def cancel_pending(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    @property
    def max_latency(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"DelayedAckPolicy({self.delay})"


class CountingAckPolicy(AckPolicy):
    """Acknowledge at ``threshold`` pending messages, or after ``max_delay``."""

    def __init__(self, threshold: int, max_delay: float) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        self.threshold = threshold
        self.backstop = max_delay
        self._timer: Optional[Timer] = None

    def attach(self, sim: Simulator, flush: Callable[[], None]) -> None:
        super().attach(sim, flush)
        self._timer = Timer(sim, self._fire, name="counting-ack")

    def on_update(self, pending: int) -> None:
        if pending >= self.threshold:
            self._timer.stop()
            self._flush()
        elif pending > 0 and not self._timer.running:
            self._timer.start(self.backstop)

    def _fire(self) -> None:
        self._flush()

    def cancel_pending(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    @property
    def max_latency(self) -> float:
        return self.backstop

    def __repr__(self) -> str:
        return f"CountingAckPolicy({self.threshold}, {self.backstop})"
