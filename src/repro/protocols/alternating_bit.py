"""Alternating-bit protocol as a degenerate block-acknowledgment instance.

The paper traces the window protocol's roots to the alternating-bit
protocol (Lynch; Bartlett, Scantlebury & Wilkinson) and notes in Section
VI that earlier designs are special cases of block acknowledgment.  The
alternating-bit protocol *is* the block-acknowledgment protocol with
``w = 1``: the wire domain is ``2w = 2`` (the alternating bit), every
acknowledgment is the singleton block ``(b, b)``, and the single-message
window makes the go-back-N/selective-repeat distinction vanish.

These factories therefore return genuine
:class:`~repro.protocols.blockack.BlockAckSender` /
:class:`~repro.protocols.blockack.BlockAckReceiver` instances configured
to that corner — both a usable protocol and an executable proof of the
paper's "special case" remark (tested in ``tests/test_alternating_bit.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.numbering import ModularNumbering
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender

__all__ = ["make_alternating_bit_sender", "make_alternating_bit_receiver"]


def make_alternating_bit_sender(
    timeout_period: Optional[float] = None,
    timeout_mode: str = "simple",
) -> BlockAckSender:
    """An alternating-bit sender: window 1, wire numbers mod 2."""
    return BlockAckSender(
        window=1,
        numbering=ModularNumbering(window=1),  # domain 2w = 2: the bit
        timeout_mode=timeout_mode,
        timeout_period=timeout_period,
    )


def make_alternating_bit_receiver() -> BlockAckReceiver:
    """An alternating-bit receiver: window 1, wire numbers mod 2."""
    return BlockAckReceiver(window=1, numbering=ModularNumbering(window=1))
