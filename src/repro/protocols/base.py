"""Common interface for simulated protocol endpoints.

Every protocol in this package (block acknowledgment and the baselines) is
split into a *sender endpoint* and a *receiver endpoint* that communicate
only through two :class:`~repro.channel.channel.Channel` objects — the
forward (data) channel and the reverse (acknowledgment) channel.  The
shared surface here keeps the benchmark harness protocol-agnostic: the
runner wires any ``(sender, receiver)`` pair the same way and reads the
same statistics off both.

Lifecycle::

    sender = SomeSender(window=8)
    receiver = SomeReceiver(window=8)
    sender.attach(sim, forward_channel, recorder)
    receiver.attach(sim, reverse_channel, recorder)
    forward_channel.connect(receiver.on_message)
    reverse_channel.connect(sender.on_message)
    receiver.on_deliver = application_callback
    sender.on_window_open = source_callback

Application data enters through :meth:`SenderEndpoint.submit` whenever
:attr:`SenderEndpoint.can_accept` is true, and leaves through the
receiver's ``on_deliver`` callback, in order, exactly once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.channel.channel import Channel
from repro.sim.engine import Simulator
from repro.trace.recorder import NullRecorder

__all__ = ["SenderStats", "ReceiverStats", "SenderEndpoint", "ReceiverEndpoint"]


@dataclass
class SenderStats:
    """Counters every sender endpoint maintains."""

    submitted: int = 0  # payloads accepted from the application
    data_sent: int = 0  # data transmissions, including retransmissions
    retransmissions: int = 0
    acks_received: int = 0
    stale_acks: int = 0  # acks carrying no new information
    timeouts_fired: int = 0
    acked: int = 0  # payloads known delivered (cumulative prefix)
    last_ack_time: float = 0.0

    @property
    def efficiency(self) -> float:
        """Acknowledged payloads per data transmission (1.0 = no waste)."""
        return self.acked / self.data_sent if self.data_sent else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "data_sent": self.data_sent,
            "retransmissions": self.retransmissions,
            "acks_received": self.acks_received,
            "stale_acks": self.stale_acks,
            "timeouts_fired": self.timeouts_fired,
            "acked": self.acked,
        }


@dataclass
class ReceiverStats:
    """Counters every receiver endpoint maintains."""

    data_received: int = 0
    duplicates: int = 0  # data below the accept point (already delivered)
    redundant: int = 0  # data already buffered (needs unsafe timeouts)
    out_of_order: int = 0  # data that had to be buffered
    acks_sent: int = 0
    delivered: int = 0  # payloads released to the application
    max_buffered: int = 0  # high-water mark of the reorder buffer
    last_delivery_time: float = 0.0

    @property
    def acks_per_delivery(self) -> float:
        """Acknowledgment messages per delivered payload (E4's metric)."""
        return self.acks_sent / self.delivered if self.delivered else 0.0

    def as_dict(self) -> dict:
        return {
            "data_received": self.data_received,
            "duplicates": self.duplicates,
            "redundant": self.redundant,
            "out_of_order": self.out_of_order,
            "acks_sent": self.acks_sent,
            "delivered": self.delivered,
            "max_buffered": self.max_buffered,
        }


class SenderEndpoint(ABC):
    """Base class for protocol senders."""

    actor_name = "sender"

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self.tx: Optional[Channel] = None
        self.trace = NullRecorder()
        self.stats = SenderStats()
        self.on_window_open: Optional[Callable[[], None]] = None

    def attach(self, sim: Simulator, tx: Channel, trace=None) -> None:
        """Bind the endpoint to a simulator and its outbound channel."""
        self.sim = sim
        self.tx = tx
        if trace is not None:
            self.trace = trace
        self._after_attach()

    def _after_attach(self) -> None:
        """Hook for subclasses that need setup once ``sim``/``tx`` exist."""

    @property
    @abstractmethod
    def can_accept(self) -> bool:
        """True when :meth:`submit` may be called (window open)."""

    @abstractmethod
    def submit(self, payload: Any) -> int:
        """Accept one payload from the application; returns its sequence
        number.  Must only be called when :attr:`can_accept` is true."""

    @abstractmethod
    def on_message(self, message: Any) -> None:
        """Channel delivery callback (acknowledgments arrive here)."""

    @property
    @abstractmethod
    def all_acknowledged(self) -> bool:
        """True when every submitted payload is known delivered."""

    def _window_opened(self) -> None:
        """Notify the application that the window reopened."""
        if self.on_window_open is not None:
            self.on_window_open()


class ReceiverEndpoint(ABC):
    """Base class for protocol receivers."""

    actor_name = "receiver"

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self.tx: Optional[Channel] = None  # reverse channel (acks)
        self.trace = NullRecorder()
        self.stats = ReceiverStats()
        self.on_deliver: Optional[Callable[[int, Any], None]] = None

    def attach(self, sim: Simulator, tx: Channel, trace=None) -> None:
        """Bind the endpoint to a simulator and its outbound (ack) channel."""
        self.sim = sim
        self.tx = tx
        if trace is not None:
            self.trace = trace
        self._after_attach()

    def _after_attach(self) -> None:
        """Hook for subclasses that need setup once ``sim``/``tx`` exist."""

    @abstractmethod
    def on_message(self, message: Any) -> None:
        """Channel delivery callback (data messages arrive here)."""

    def _deliver(self, seq: int, payload: Any) -> None:
        """Release one payload to the application, updating stats."""
        self.stats.delivered += 1
        self.stats.last_delivery_time = self.sim.now
        if self.on_deliver is not None:
            self.on_deliver(seq, payload)
