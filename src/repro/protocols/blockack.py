"""The block-acknowledgment window protocol on the timed simulator.

This module is the runnable (timed, timer-driven) counterpart of the
paper's abstract protocol.  One sender and one receiver class cover the
whole design space of the paper:

* **numbering** — :class:`~repro.core.numbering.UnboundedNumbering`
  (Section II: true numbers on the wire) or
  :class:`~repro.core.numbering.ModularNumbering` (Section V: numbers mod
  ``2w`` on the wire, reconstructed with the paper's function ``f``);
* **timeout mode** — how the sender resolves the paper's timeout guards
  with real timers (see below);
* **ack policy** — how the receiver resolves the nondeterminism of
  actions 4/5 (see :mod:`repro.protocols.ack_policy`).

Endpoint scaffolding (payload store, transmission bookkeeping, adaptive
retransmission, timer plumbing) comes from
:mod:`repro.protocols.window_core`; this module keeps the protocol's own
decision logic — the numbering codec, the timeout guards, and the block
acknowledgment bookkeeping.

Timeout modes
-------------

The paper's guards read channel and receiver state that a real sender
cannot see, so a timer realization must *imply* the guard.  Let ``T`` be a
period no smaller than (max forward transit) + (max ack latency at the
receiver) + (max reverse transit); see :func:`safe_timeout_period`.

``simple`` — Section II, one timer.
    The timer restarts on **every** data transmission.  When it fires,
    every message (and any acknowledgment it triggered) sent before the
    last transmission has left the channels, which implies the paper's
    guard ``(na != ns) ∧ C_SR = {} ∧ C_RS = {} ∧ ¬rcvd[nr]`` — the last
    conjunct because had the receiver been able to acknowledge anything,
    that acknowledgment would have arrived (or been lost) within ``T``.
    Only ``na`` is retransmitted, so recovering a lost block ack costs one
    full ``T`` per covered message: the slowness Section IV fixes.

``per_message_safe`` — our implementable realization of Section IV.
    One timer per outstanding message, restarted on each transmission of
    that message.  An expired message ``i`` is retransmitted only when the
    sender can *prove* the paper's guard ``timeout(i)``:

    * ``i == na`` — then either the receiver never received ``i``
      (``¬rcvd[i]``) or it accepted ``i`` and the acknowledgment was lost
      (``i < nr``); both disjuncts of the guard's fifth conjunct are
      covered, exactly as for the simple timeout.
    * ``i < hi_acked``, **and** at least the maximum reverse-channel
      lifetime has elapsed since the sender first learned that — an ack
      ending past ``i`` was received at some time ``t2``, so the
      receiver's ``nr`` has passed ``i`` (the guard's ``i < nr``), and
      the block acknowledgment that covered ``i`` was *sent before* the
      one received at ``t2`` (blocks are emitted in ``nr`` order), hence
      has left the channel by ``t2 + reverse_lifetime``: it is provably
      lost, so ``*RS^i = 0``.  Waiting out that one reverse lifetime is
      essential — with reordered acknowledgments the covering block can
      arrive *after* a later block, and retransmitting ``i`` while it is
      still in flight violates assertion 8 (and, over mod-2w wire
      numbers, eventually corrupts decoding).

    Messages that expire while ineligible are parked; when an
    acknowledgment reveals coverage they are released together after the
    single reverse-lifetime wait, so distinct lost messages recover
    without serialized timeout periods between them — the Section IV
    speed-up — while every retransmission provably satisfies the paper's
    guard.

``oracle`` — Section IV verbatim (simulation-only).
    The sender polls the exact guard — including the receiver's ``rcvd``
    array and the channels' in-flight contents — every ``poll_period``.
    This is the paper's abstract protocol made executable; it exists to
    validate the timer realizations against (E5) and is flagged as
    unimplementable outside a simulator.

``aggressive`` — deliberately unsound (E12 ablation).
    Retransmits any expired unacknowledged message.  With unbounded
    numbers this merely wastes bandwidth; with bounded (mod-``2w``)
    numbers it can violate assertion 8 and corrupt or stall the transfer,
    which is precisely why the paper's guard has the ``¬rcvd[i]``
    conjunct.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.core.messages import BlockAck, DataMessage
from repro.core.numbering import Numbering, UnboundedNumbering
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.ack_policy import AckPolicy, EagerAckPolicy
from repro.protocols.window_core import WindowedReceiver, WindowedSender
from repro.robustness.controller import AdaptiveConfig
from repro.sim.timers import Timer
from repro.trace.events import EventKind

__all__ = [
    "BlockAckSender",
    "BlockAckReceiver",
    "safe_timeout_period",
    "TIMEOUT_MODES",
]

TIMEOUT_MODES = ("simple", "per_message_safe", "oracle", "aggressive")


def safe_timeout_period(
    forward_lifetime: float,
    reverse_lifetime: float,
    ack_latency: float = 0.0,
    margin: float = 1e-6,
) -> float:
    """Smallest provably safe retransmission period.

    The paper: "the timeout period should be chosen large enough to
    guarantee that a data message is resent only when the last copy of
    this message or its acknowledgment is lost during transmission."
    That bound is (max data transit) + (max time the receiver may sit on
    an acknowledgment) + (max ack transit), plus a strict margin.
    """
    if forward_lifetime < 0 or reverse_lifetime < 0 or ack_latency < 0:
        raise ValueError("lifetimes and latency must be non-negative")
    return forward_lifetime + ack_latency + reverse_lifetime + margin


class BlockAckSender(WindowedSender):
    """Sender side of the block-acknowledgment protocol.

    Parameters
    ----------
    window:
        The paper's ``w`` — maximum outstanding messages.
    numbering:
        Wire numbering scheme; defaults to unbounded (Section II).
    timeout_mode:
        One of :data:`TIMEOUT_MODES`; see module docstring.
    timeout_period:
        The period ``T``.  Required for timer modes; see
        :func:`safe_timeout_period`.  For ``oracle`` mode it is the poll
        period (how often the exact guard is evaluated).
    reverse_lifetime:
        Maximum time an acknowledgment can spend in the reverse channel;
        the ``per_message_safe`` mode's coverage-release wait.  Derived by
        the runner from the channel when left None; falls back to
        ``timeout_period`` (which always bounds it) at attach time.
    lookahead:
        Position-reuse factor ``K`` (Section VI extension): with ``K > 1``
        the sender may have up to ``w`` unacknowledged messages spread
        over a ``K*w``-wide sequence range, reusing acknowledged positions
        ahead of a stalled ``na``.  Requires a matching
        ``ModularNumbering(..., lookahead=K)`` when wire numbers are
        bounded.  ``K = 1`` is the paper's base protocol.
    adaptive:
        Optional :class:`~repro.robustness.controller.AdaptiveConfig`.
        When set, timer periods come from a
        :class:`~repro.robustness.controller.RetransmissionController`
        (Jacobson/Karels RTO, exponential backoff, retry budget) instead
        of the fixed ``timeout_period``, and sustained timeout runs
        degrade the window and eventually declare the link dead
        (:attr:`link_dead`).  ``None`` (the default) keeps the paper's
        fixed-timer behavior bit-for-bit.  Not supported in ``oracle``
        mode, which has no timers to adapt.
    """

    timer_name = "retx"
    attach_error = "timeout_period must be set before attaching the sender"

    def __init__(
        self,
        window: int,
        numbering: Optional[Numbering] = None,
        timeout_mode: str = "simple",
        timeout_period: Optional[float] = None,
        reverse_lifetime: Optional[float] = None,
        lookahead: int = 1,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        if timeout_mode not in TIMEOUT_MODES:
            raise ValueError(
                f"timeout_mode must be one of {TIMEOUT_MODES}, got {timeout_mode!r}"
            )
        if adaptive is not None and timeout_mode == "oracle":
            raise ValueError("adaptive retransmission needs timers; oracle has none")
        super().__init__(timeout_period=timeout_period, adaptive=adaptive)
        self.window = SenderWindow(window, lookahead=lookahead)
        self.numbering = numbering if numbering is not None else UnboundedNumbering()
        self.timeout_mode = timeout_mode
        # map the paper's timeout modes onto the core's timer styles
        self.timer_style = {"simple": "single", "oracle": "custom"}.get(
            timeout_mode, "per_seq"
        )
        self.reverse_lifetime = reverse_lifetime
        self.hi_acked = -1  # highest sequence number seen in any valid ack
        self._parked: Set[int] = set()  # expired but not yet eligible
        self._covered_at: Dict[int, float] = {}  # seq -> time hi_acked passed it
        self._poll: Optional[Timer] = None  # oracle mode
        # oracle hooks, wired by enable_oracle()
        self._oracle_receiver: Optional["BlockAckReceiver"] = None
        self._oracle_forward = None
        self._oracle_reverse = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _after_attach(self) -> None:
        if self.reverse_lifetime is None and self.timeout_period is not None:
            # T >= forward + ack latency + reverse, so T always bounds the
            # reverse lifetime; a tighter value comes from the runner.
            self.reverse_lifetime = self.timeout_period
        super()._after_attach()
        if self.timeout_mode == "oracle":
            self._poll = Timer(self.sim, self._on_oracle_poll, name="oracle-poll")

    def enable_oracle(self, forward, reverse, receiver: "BlockAckReceiver") -> None:
        """Wire the oracle guard's inputs (``oracle`` mode only)."""
        if self.timeout_mode != "oracle":
            raise RuntimeError("enable_oracle requires timeout_mode='oracle'")
        self._oracle_forward = forward
        self._oracle_reverse = reverse
        self._oracle_receiver = receiver

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------

    def resize_window(self, new_window: int) -> None:
        """Change the flow-control window at runtime (Section VI remark).

        Bounded numbering stays sound because the wire domain was sized
        from the construction-time (maximum) window; shrinking only
        tightens the live range, and regrowing is capped at that maximum.
        Wakes the source if the resize reopened the window.
        """
        was_open = self.window.can_send
        self.window.resize(new_window)
        if not was_open and self.window.can_send:
            self._window_opened()

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def _wire_message(self, seq: int, attempt: int) -> DataMessage:
        return DataMessage(
            seq=self.numbering.encode(seq),
            payload=self._payloads.get(seq),
            attempt=attempt,
        )

    def _arm_timers(self, seq: int, attempt: int) -> None:
        if self.timeout_mode == "oracle":
            if not self._poll.running:
                self._poll.start(self.timeout_period)
        else:
            super()._arm_timers(seq, attempt)

    # ------------------------------------------------------------------
    # acknowledgment handling (paper action 1)
    # ------------------------------------------------------------------

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, BlockAck):
            raise TypeError(f"block-ack sender got {ack!r}")
        self.stats.acks_received += 1
        lo = self.numbering.decode_at_sender(ack.lo, self.window.na)
        hi = self.numbering.decode_at_sender(ack.hi, self.window.na)
        if lo > hi or hi >= self.window.ns:
            # Provably stale or garbled: with bounded numbering, a very old
            # duplicate ack decodes beyond the send horizon.  Discard.
            self.stats.stale_acks += 1
            self.trace.record(
                self.actor_name, EventKind.NOTE, detail=f"discarded ack {ack}"
            )
            return
        self.trace.record(self.actor_name, EventKind.RECV_ACK, seq=lo, seq_hi=hi)
        outcome = self.window.apply_ack(lo, hi)
        if outcome.stale:
            self.stats.stale_acks += 1
        self.hi_acked = max(self.hi_acked, hi)
        self._register_ack(outcome.newly_acked, self.window.na)
        for seq in outcome.newly_acked:
            self._payloads.pop(seq, None)
            if self._timers is not None:
                self._timers.stop(seq)
            self._parked.discard(seq)
            self._covered_at.pop(seq, None)
        if self.timeout_mode == "simple" and self.window.all_acknowledged:
            self._timer.stop()
        if self.timeout_mode == "oracle" and self.window.all_acknowledged:
            self._poll.stop()
        if self.timeout_mode == "per_message_safe":
            self._note_coverage()
            self._release_parked()
        if outcome.advanced:
            self._window_open_event(self.window.na)

    # ------------------------------------------------------------------
    # timeout machinery
    # ------------------------------------------------------------------

    def _degrade(self) -> None:
        """Graceful degradation: shrink the effective window one step."""
        new_window = max(1, int(self.window.w * self.adaptive.degrade_factor))
        if new_window < self.window.w:
            self.trace.record(
                self.actor_name,
                EventKind.NOTE,
                detail=f"degrade window {self.window.w} -> {new_window}",
            )
            self.window.resize(new_window)

    def _after_link_dead(self) -> None:
        self._parked.clear()

    # ------------------------------------------------------------------
    # self-stabilization
    # ------------------------------------------------------------------

    def _stabilize_extra(self) -> list:
        """Repair block-ack bookkeeping the core does not know about."""
        repairs = []
        if self.hi_acked >= self.window.ns:
            repairs.append(
                f"hi_acked {self.hi_acked} -> {self.window.ns - 1} "
                "(beyond send horizon)"
            )
            self.hi_acked = self.window.ns - 1
        outstanding = set(self.window.outstanding())
        stale_parked = self._parked - outstanding
        if stale_parked:
            repairs.append(f"unparked {sorted(stale_parked)} (not outstanding)")
            self._parked -= stale_parked
        stale_covered = [s for s in self._covered_at if s not in outstanding]
        if stale_covered:
            repairs.append(
                f"dropped coverage stamps for {sorted(stale_covered)} "
                "(not outstanding)"
            )
            for seq in stale_covered:
                del self._covered_at[seq]
        return repairs

    def _timer_seqs(self):
        # parked messages deliberately hold no timer (they await coverage
        # or becoming na); messages with a coverage stamp own a drain-wait
        # timer that the running() check below them already respects
        return (
            s for s in self.window.outstanding() if s not in self._parked
        )

    def _rearm_after_repair(self) -> list:
        repairs = super()._rearm_after_repair()
        if (
            self._poll is not None
            and not self.link_dead
            and not self._down
            and not self.window.all_acknowledged
            and not self._poll.running
        ):
            self._poll.start(self.timeout_period)
            repairs.append("re-armed oracle poll")
        return repairs

    def _on_single_timeout(self) -> None:
        """Section II action 2: retransmit ``na`` only."""
        if self.window.all_acknowledged or self.window.na >= self.window.ns:
            # the second disjunct only differs under state corruption:
            # never retransmit from an inconsistent cursor (stabilize
            # repairs it before the next delivery or watchdog sweep)
            return
        self.stats.timeouts_fired += 1
        self.trace.record(
            self.actor_name, EventKind.TIMEOUT, seq=self.window.na, detail="simple"
        )
        if not self._consult_budget(None):
            return
        self._transmit(self.window.na, attempt=1)

    def _on_seq_timeout(self, seq: int) -> None:
        # late-bound delegation: _on_message_timeout predates the
        # window-core refactor and is interposed on by extensions (see
        # examples/adaptive_window.py), so it stays the real handler
        self._on_message_timeout(seq)

    def _on_message_timeout(self, seq: int) -> None:
        """Per-message timer expiry (``per_message_safe`` / ``aggressive``)."""
        if self.window.is_acked(seq):
            return
        if self.timeout_mode == "aggressive" or self._eligible(seq):
            self.stats.timeouts_fired += 1
            self.trace.record(
                self.actor_name, EventKind.TIMEOUT, seq=seq,
                detail=self.timeout_mode,
            )
            if not self._consult_budget(seq):
                return
            self._transmit(seq, attempt=1)
            return
        covered = self._covered_at.get(seq)
        if covered is not None:
            # eligible once the covering block ack has provably drained
            remaining = covered + self.reverse_lifetime - self.sim.now
            self._timers.start(seq, max(remaining, 0.0) + 1e-9)
        else:
            # Possibly buffered out-of-order at the receiver: retransmitting
            # now could put a second logical copy in play (assertion 8).
            # Park it; coverage by a later ack (or becoming na) releases it.
            self._parked.add(seq)

    def _eligible(self, seq: int) -> bool:
        """Provable instances of the paper's ``timeout(i)`` guard.

        ``seq == na``: either the receiver never got it, or every ack that
        could cover it has drained within the timer period (the simple-
        timeout argument).  ``seq < hi_acked``: the receiver's nr passed
        it, and the block ack that covered it — sent before the ack whose
        arrival set ``_covered_at[seq]`` — has drained once a full reverse
        lifetime has elapsed since then.
        """
        if seq == self.window.na:
            return True
        covered = self._covered_at.get(seq)
        return (
            covered is not None
            and self.sim.now >= covered + self.reverse_lifetime
        )

    def _note_coverage(self) -> None:
        """Record when ``hi_acked`` first passed each outstanding message."""
        if self.hi_acked < 0:
            return
        for seq in self.window.outstanding():
            if seq < self.hi_acked and seq not in self._covered_at:
                self._covered_at[seq] = self.sim.now

    def _release_parked(self) -> None:
        """Retransmit or schedule every parked message that can now move.

        ``na`` is retransmitted immediately (always safe).  Newly covered
        messages get a timer for the reverse-lifetime drain wait; the
        expiry path re-checks eligibility and retransmits.
        """
        self._parked = {s for s in self._parked if not self.window.is_acked(s)}
        for seq in sorted(self._parked):
            if self._eligible(seq):
                self._parked.discard(seq)
                self.stats.timeouts_fired += 1
                self.trace.record(
                    self.actor_name, EventKind.TIMEOUT, seq=seq, detail="released"
                )
                self._transmit(seq, attempt=1)
            elif seq in self._covered_at and not self._timers.running(seq):
                remaining = (
                    self._covered_at[seq] + self.reverse_lifetime - self.sim.now
                )
                self._parked.discard(seq)  # the timer owns it now
                self._timers.start(seq, max(remaining, 0.0) + 1e-9)

    # ------------------------------------------------------------------
    # crash/restart (fault injection)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose volatile state: timers, RTT estimates, retransmission
        bookkeeping.  The window counters, the unacknowledged payload
        store, and ``hi_acked`` survive as the durable snapshot."""
        self._down = True
        self.trace.record(self.actor_name, EventKind.NOTE, detail="crash")
        if self._timer is not None:
            self._timer.stop()
        if self._timers is not None:
            self._timers.stop_all()
        if self._poll is not None:
            self._poll.stop()
        self._parked.clear()
        self._covered_at.clear()
        if self._retx is not None:
            self._retx.reset_volatile()

    def restore(self) -> None:
        """Resume from the durable snapshot.

        Re-arms a retransmission timer for everything outstanding.  The
        last transmission of any outstanding message predates the crash,
        so a full timer period elapses before the first retransmission —
        the re-arm satisfies the same guard as a normal restart.
        """
        self._down = False
        self.trace.record(self.actor_name, EventKind.NOTE, detail="restart")
        if self.link_dead or self.window.all_acknowledged:
            return
        if self.timeout_mode == "per_message_safe":
            # Conservative re-stamp: waits a fresh reverse lifetime from
            # now, by which time any pre-crash covering ack has drained.
            self._note_coverage()
        if self._timer is not None:
            self._timer.restart()
        elif self._poll is not None:
            self._poll.start(self.timeout_period)
        else:
            for seq in self.window.outstanding():
                self._timers.start(seq)
        if self.can_accept:
            self._window_opened()

    # ------------------------------------------------------------------
    # oracle mode: the paper's guard, evaluated verbatim
    # ------------------------------------------------------------------

    def _on_oracle_poll(self) -> None:
        if self._oracle_receiver is None:
            raise RuntimeError("oracle mode requires enable_oracle(...) wiring")
        receiver = self._oracle_receiver
        for seq in self.window.outstanding():
            wire = self.numbering.encode(seq)
            in_forward = self._oracle_forward.count_matching(
                lambda m, w=wire: isinstance(m, DataMessage) and m.seq == w
            )
            if in_forward:
                continue  # *SR^i != 0
            covered = self._oracle_reverse.count_matching(
                lambda m, s=seq: isinstance(m, BlockAck)
                and self._ack_covers(m, s)
            )
            if covered:
                continue  # *RS^i != 0
            if not (seq < receiver.oracle_nr or not receiver.oracle_has_received(seq)):
                continue  # rcvd[i] ∧ i >= nr: receiver will ack it unaided
            self.stats.timeouts_fired += 1
            self.trace.record(
                self.actor_name, EventKind.TIMEOUT, seq=seq, detail="oracle"
            )
            self._transmit(seq, attempt=1)
        if not self.window.all_acknowledged:
            self._poll.start(self.timeout_period)

    def _ack_covers(self, ack: BlockAck, seq: int) -> bool:
        """Does in-flight wire ack ``ack`` cover true sequence ``seq``?

        With unbounded numbering this is a plain range test.  With modular
        numbering the in-flight window is narrower than the domain
        (assertion 8 + assertion 6), so decoding against ``na`` is exact.
        """
        lo = self.numbering.decode_at_sender(ack.lo, self.window.na)
        hi = self.numbering.decode_at_sender(ack.hi, self.window.na)
        return lo <= seq <= hi


class BlockAckReceiver(WindowedReceiver):
    """Receiver side of the block-acknowledgment protocol.

    Implements paper actions 3 (accept / duplicate-ack), 4 (slide ``vr``),
    and 5 (emit the block acknowledgment), with the 4/5 nondeterminism
    resolved by an :class:`~repro.protocols.ack_policy.AckPolicy`.
    """

    def __init__(
        self,
        window: int,
        numbering: Optional[Numbering] = None,
        ack_policy: Optional[AckPolicy] = None,
    ) -> None:
        super().__init__()
        self.window = ReceiverWindow(window)
        self.numbering = numbering if numbering is not None else UnboundedNumbering()
        self.ack_policy = ack_policy if ack_policy is not None else EagerAckPolicy()
        self._w = window

    def _after_attach(self) -> None:
        self.ack_policy.attach(self.sim, self._flush_acks)

    # ------------------------------------------------------------------
    # data path (paper action 3)
    # ------------------------------------------------------------------

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"block-ack receiver got {message!r}")
        seq = self.numbering.decode_at_receiver(
            message.seq, self.window.nr, self._w
        )
        self._note_arrival(seq)
        outcome = self.window.accept(seq, message.payload)
        if outcome.duplicate:
            # v < nr: already accepted — re-acknowledge with (v, v)
            self.stats.duplicates += 1
            self._send_ack(seq, seq, duplicate=True)
            return
        if outcome.redundant:
            self.stats.redundant += 1
            return
        if seq != self.window.vr:
            self.stats.out_of_order += 1
        pending_before = self.window.vr - self.window.nr
        self.window.advance()  # paper action 4 (iterated)
        self._note_buffered(len(self.window.received_unaccepted))
        pending = self.window.vr - self.window.nr
        if pending > pending_before or pending > 0:
            self.ack_policy.on_update(pending)

    # ------------------------------------------------------------------
    # acknowledgment emission (paper action 5)
    # ------------------------------------------------------------------

    def _flush_acks(self) -> None:
        self.window.advance()
        if not self.window.ack_ready:
            return
        lo, hi, payloads = self.window.take_block()
        self._send_ack(lo, hi, duplicate=False)
        self._deliver_block(lo, payloads)

    def _send_ack(self, lo: int, hi: int, duplicate: bool) -> None:
        ack = BlockAck(
            lo=self.numbering.encode(lo),
            hi=self.numbering.encode(hi),
            urgent=duplicate,
        )
        self.stats.acks_sent += 1
        kind = EventKind.RESEND_ACK if duplicate else EventKind.SEND_ACK
        self.trace.record(self.actor_name, kind, seq=lo, seq_hi=hi)
        self.tx.send(ack)

    # ------------------------------------------------------------------
    # crash/restart (fault injection)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the reorder buffer and any pending delayed-ack flush.

        ``nr`` is durable — everything below it was acknowledged — so the
        sender's view stays consistent; the forgotten ``[nr, vr)`` run
        and buffered out-of-order messages were never acknowledged and
        will be retransmitted.
        """
        self.trace.record(self.actor_name, EventKind.NOTE, detail="crash")
        self.window.drop_volatile()
        self.ack_policy.cancel_pending()

    def restore(self) -> None:
        """Resume; nothing to re-arm — the sender drives recovery."""
        self.trace.record(self.actor_name, EventKind.NOTE, detail="restart")

    # ------------------------------------------------------------------
    # self-stabilization
    # ------------------------------------------------------------------

    def _rearm_after_repair(self) -> list:
        """After a state repair, make sure any pending block still flushes."""
        self.window.advance()
        pending = self.window.vr - self.window.nr
        if pending > 0:
            self.ack_policy.on_update(pending)
            return [f"kicked ack policy ({pending} pending)"]
        return []

    # ------------------------------------------------------------------
    # oracle accessors (read by BlockAckSender in oracle mode)
    # ------------------------------------------------------------------

    @property
    def oracle_nr(self) -> int:
        return self.window.nr

    def oracle_has_received(self, seq: int) -> bool:
        return self.window.has_received(seq)
