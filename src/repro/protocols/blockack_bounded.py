"""Byte-exact bounded-storage endpoints (paper Section V, final programs).

:class:`BoundedBlockAckSender` / :class:`BoundedBlockAckReceiver` run the
protocol exactly as the paper's final Section-V programs do: **no state
grows with the transfer** — counters live mod ``2w``, the ``ackd``/``rcvd``
flags and the payload buffers are rings of ``w`` cells, and all guards use
modular comparisons (via :class:`~repro.core.bounded.BoundedSenderBook` /
:class:`~repro.core.bounded.BoundedReceiverBook`).

The reference implementation (:mod:`repro.protocols.blockack` with
:class:`~repro.core.numbering.ModularNumbering`) keeps true sequence
numbers internally and reconstructs; this one never knows them.  The E7
equivalence experiment runs both under identical schedules and asserts
byte-identical wire traffic and identical payload delivery.

The sender uses the Section-II *simple* timeout (one timer, retransmit
``na``), matching the protocol the paper actually carries through its
Section-V transformation.

Endpoint scaffolding (transmission bookkeeping, adaptive retransmission,
timer plumbing) comes from :mod:`repro.protocols.window_core`; the
bounded books and the ring payload store stay here because their O(w)
storage discipline is the whole point of Section V.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.bounded import BoundedReceiverBook, BoundedSenderBook
from repro.core.messages import BlockAck, DataMessage
from repro.protocols.ack_policy import AckPolicy, EagerAckPolicy
from repro.protocols.window_core import WindowedReceiver, WindowedSender
from repro.robustness.controller import AdaptiveConfig
from repro.trace.events import EventKind

__all__ = ["BoundedBlockAckSender", "BoundedBlockAckReceiver"]


class BoundedBlockAckSender(WindowedSender):
    """Sender with O(w) total state: Section V's final sender program.

    ``adaptive`` optionally replaces the fixed timeout with a
    :class:`~repro.robustness.controller.RetransmissionController`.  The
    wire-number domain is fixed at ``2w`` by construction, so graceful
    degradation cannot shrink the window here; a DEGRADE verdict falls
    back to a plain (backed-off) retry, and only LINK_DEAD changes
    behavior.  ``None`` keeps the fixed-timer program bit-for-bit.
    """

    timer_style = "single"
    timer_name = "bounded-retx"

    def __init__(
        self,
        window: int,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__(timeout_period=timeout_period, adaptive=adaptive)
        self.book = BoundedSenderBook(window)
        self.w = window
        self._payloads = [None] * window  # ring keyed by seq mod w
        self._delivered_count = 0  # stats only; NOT protocol state

    def _send_window_open(self) -> bool:
        return self.book.can_send

    @property
    def all_acknowledged(self) -> bool:
        return self.book.all_acknowledged

    def _take_next(self) -> int:
        return self.book.take_next()

    def _store_payload(self, wire: int, payload: Any) -> None:
        self._payloads[wire % self.w] = payload

    def _payload_for(self, wire: int) -> Any:
        return self._payloads[wire % self.w]

    def _arm_timers(self, wire: int, attempt: int) -> None:
        self._timer.restart()

    def _on_single_timeout(self) -> None:
        if (
            self.book.all_acknowledged
            or self.book.domain.sub(self.book.ns, self.book.na) > self.book.w
        ):
            # the second disjunct only differs under state corruption:
            # never retransmit from an inconsistent cursor (stabilize
            # repairs it before the next delivery or watchdog sweep)
            return
        self.stats.timeouts_fired += 1
        self.trace.record(
            self.actor_name, EventKind.TIMEOUT, seq=self.book.na, detail="simple"
        )
        if not self._consult_budget(None):
            return
        self._transmit(self.book.na, attempt=1)

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, BlockAck):
            raise TypeError(f"bounded block-ack sender got {ack!r}")
        self.stats.acks_received += 1
        self.trace.record(
            self.actor_name, EventKind.RECV_ACK, seq=ack.lo, seq_hi=ack.hi
        )
        na_before = self.book.na
        advanced = self.book.apply_ack(ack.lo, ack.hi)
        if advanced == 0:
            self.stats.stale_acks += 1
        newly = [self.book.domain.add(na_before, i) for i in range(advanced)]
        for wire in newly:
            self._payloads[wire % self.w] = None
        for cell in self.book.marked_cells():
            # release buffer cells as soon as their number is acknowledged
            # (Section V storage discipline), including cells marked ahead
            # of a stalled na; an occupied cell is then a witness that its
            # number is still unacknowledged — see BoundedSenderBook.repair
            self._payloads[cell] = None
        self._delivered_count += advanced
        self._register_ack(newly, self._delivered_count)
        if self.book.all_acknowledged:
            self._timer.stop()
        if advanced:
            self._window_open_event(self.book.na)

    # ------------------------------------------------------------------
    # self-stabilization
    # ------------------------------------------------------------------

    def _repair_state(self) -> list:
        witness = {
            cell
            for cell, payload in enumerate(self._payloads)
            if payload is not None
        }
        return self.book.repair(witness_cells=witness)


class BoundedBlockAckReceiver(WindowedReceiver):
    """Receiver with O(w) total state: Section V's final receiver program."""

    def __init__(
        self, window: int, ack_policy: Optional[AckPolicy] = None
    ) -> None:
        super().__init__()
        self.book = BoundedReceiverBook(window)
        self.w = window
        self.ack_policy = ack_policy if ack_policy is not None else EagerAckPolicy()
        self._delivered_count = 0  # stats only; NOT protocol state

    def _after_attach(self) -> None:
        self.ack_policy.attach(self.sim, self._flush_acks)

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"bounded block-ack receiver got {message!r}")
        wire = message.seq
        self._note_arrival(wire)
        if self.book.accept(wire, message.payload):
            # v < nr: duplicate of an accepted message — re-ack (v, v)
            self.stats.duplicates += 1
            self._send_ack(wire, wire, duplicate=True)
            return
        if wire != self.book.vr:
            self.stats.out_of_order += 1
        pending_before = self.book.domain.sub(self.book.vr, self.book.nr)
        self.book.advance()
        self._note_buffered(self.book.buffered_count())
        pending = self.book.domain.sub(self.book.vr, self.book.nr)
        if pending > pending_before or pending > 0:
            self.ack_policy.on_update(pending)

    def _flush_acks(self) -> None:
        self.book.advance()
        if not self.book.ack_ready:
            return
        lo, hi, payloads = self.book.take_block()
        self._send_ack(lo, hi, duplicate=False)
        for offset, payload in enumerate(payloads):
            wire = self.book.domain.add(lo, offset)
            self.trace.record(self.actor_name, EventKind.DELIVER, seq=wire)
            self._delivered_count += 1
            self._deliver(wire, payload)

    def _send_ack(self, lo: int, hi: int, duplicate: bool) -> None:
        self.stats.acks_sent += 1
        kind = EventKind.RESEND_ACK if duplicate else EventKind.SEND_ACK
        self.trace.record(self.actor_name, kind, seq=lo, seq_hi=hi)
        self.tx.send(BlockAck(lo=lo, hi=hi, urgent=duplicate))

    # ------------------------------------------------------------------
    # self-stabilization
    # ------------------------------------------------------------------

    def _repair_state(self) -> list:
        return self.book.repair()

    def _rearm_after_repair(self) -> list:
        """After a state repair, make sure any pending block still flushes."""
        self.book.advance()
        pending = self.book.domain.sub(self.book.vr, self.book.nr)
        if pending > 0:
            self.ack_policy.on_update(pending)
            return [f"kicked ack policy ({pending} pending)"]
        return []
