"""Byte-exact bounded-storage endpoints (paper Section V, final programs).

:class:`BoundedBlockAckSender` / :class:`BoundedBlockAckReceiver` run the
protocol exactly as the paper's final Section-V programs do: **no state
grows with the transfer** — counters live mod ``2w``, the ``ackd``/``rcvd``
flags and the payload buffers are rings of ``w`` cells, and all guards use
modular comparisons (via :class:`~repro.core.bounded.BoundedSenderBook` /
:class:`~repro.core.bounded.BoundedReceiverBook`).

The reference implementation (:mod:`repro.protocols.blockack` with
:class:`~repro.core.numbering.ModularNumbering`) keeps true sequence
numbers internally and reconstructs; this one never knows them.  The E7
equivalence experiment runs both under identical schedules and asserts
byte-identical wire traffic and identical payload delivery.

The sender uses the Section-II *simple* timeout (one timer, retransmit
``na``), matching the protocol the paper actually carries through its
Section-V transformation.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.bounded import BoundedReceiverBook, BoundedSenderBook
from repro.core.messages import BlockAck, DataMessage
from repro.protocols.ack_policy import AckPolicy, EagerAckPolicy
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.robustness.budget import RetryVerdict
from repro.robustness.controller import AdaptiveConfig, RetransmissionController
from repro.sim.timers import AdaptiveTimer
from repro.trace.events import EventKind

__all__ = ["BoundedBlockAckSender", "BoundedBlockAckReceiver"]


class BoundedBlockAckSender(SenderEndpoint):
    """Sender with O(w) total state: Section V's final sender program.

    ``adaptive`` optionally replaces the fixed timeout with a
    :class:`~repro.robustness.controller.RetransmissionController`.  The
    wire-number domain is fixed at ``2w`` by construction, so graceful
    degradation cannot shrink the window here; a DEGRADE verdict falls
    back to a plain (backed-off) retry, and only LINK_DEAD changes
    behavior.  ``None`` keeps the fixed-timer program bit-for-bit.
    """

    def __init__(
        self,
        window: int,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__()
        self.book = BoundedSenderBook(window)
        self.w = window
        self.timeout_period = timeout_period
        self.adaptive = adaptive
        self.link_dead = False
        self._retx: Optional[RetransmissionController] = None
        self._payloads: list = [None] * window  # ring keyed by seq mod w
        self._timer: Optional[AdaptiveTimer] = None
        self._delivered_count = 0  # stats only; NOT protocol state

    def _after_attach(self) -> None:
        if self.timeout_period is None:
            raise ValueError("timeout_period must be set before attaching")
        if self.adaptive is not None:
            self._retx = self.adaptive.build(self.timeout_period)
        self._timer = AdaptiveTimer(
            self.sim, self._on_timeout, period_fn=self._period, name="bounded-retx"
        )

    def _period(self) -> float:
        if self._retx is not None:
            return self._retx.period(None)
        return self.timeout_period

    @property
    def can_accept(self) -> bool:
        return not self.link_dead and self.book.can_send

    def submit(self, payload: Any) -> int:
        wire = self.book.take_next()
        self._payloads[wire % self.w] = payload
        self.stats.submitted += 1
        self._transmit(wire, attempt=0)
        return wire

    @property
    def all_acknowledged(self) -> bool:
        return self.book.all_acknowledged

    def _transmit(self, wire: int, attempt: int) -> None:
        self.stats.data_sent += 1
        if attempt > 0:
            self.stats.retransmissions += 1
            self.trace.record(self.actor_name, EventKind.RESEND_DATA, seq=wire)
        else:
            self.trace.record(self.actor_name, EventKind.SEND_DATA, seq=wire)
        self.tx.send(
            DataMessage(
                seq=wire, payload=self._payloads[wire % self.w], attempt=attempt
            )
        )
        if self._retx is not None:
            self._retx.on_send(wire, self.sim.now, retransmit=attempt > 0)
        self._timer.restart()

    def _on_timeout(self) -> None:
        if self.book.all_acknowledged:
            return
        self.stats.timeouts_fired += 1
        self.trace.record(
            self.actor_name, EventKind.TIMEOUT, seq=self.book.na, detail="simple"
        )
        if self._retx is not None:
            verdict = self._retx.on_timeout(None)
            if verdict is RetryVerdict.LINK_DEAD:
                self.link_dead = True
                self.trace.record(
                    self.actor_name, EventKind.NOTE, detail="link dead"
                )
                self._timer.stop()
                return
        self._transmit(self.book.na, attempt=1)

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, BlockAck):
            raise TypeError(f"bounded block-ack sender got {ack!r}")
        self.stats.acks_received += 1
        self.trace.record(
            self.actor_name, EventKind.RECV_ACK, seq=ack.lo, seq_hi=ack.hi
        )
        na_before = self.book.na
        advanced = self.book.apply_ack(ack.lo, ack.hi)
        if advanced == 0:
            self.stats.stale_acks += 1
        if self._retx is not None:
            newly = [
                self.book.domain.add(na_before, i) for i in range(advanced)
            ]
            self._retx.on_ack(newly, self.sim.now)
        self._delivered_count += advanced
        self.stats.acked = self._delivered_count
        self.stats.last_ack_time = self.sim.now
        if self.book.all_acknowledged:
            self._timer.stop()
        if advanced:
            self.trace.record(
                self.actor_name, EventKind.WINDOW_OPEN, seq=self.book.na
            )
            self._window_opened()


class BoundedBlockAckReceiver(ReceiverEndpoint):
    """Receiver with O(w) total state: Section V's final receiver program."""

    def __init__(
        self, window: int, ack_policy: Optional[AckPolicy] = None
    ) -> None:
        super().__init__()
        self.book = BoundedReceiverBook(window)
        self.w = window
        self.ack_policy = ack_policy if ack_policy is not None else EagerAckPolicy()
        self._delivered_count = 0  # stats only; NOT protocol state

    def _after_attach(self) -> None:
        self.ack_policy.attach(self.sim, self._flush_acks)

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"bounded block-ack receiver got {message!r}")
        self.stats.data_received += 1
        wire = message.seq
        self.trace.record(self.actor_name, EventKind.RECV_DATA, seq=wire)
        if self.book.accept(wire, message.payload):
            # v < nr: duplicate of an accepted message — re-ack (v, v)
            self.stats.duplicates += 1
            self._send_ack(wire, wire, duplicate=True)
            return
        if wire != self.book.vr:
            self.stats.out_of_order += 1
        pending_before = self.book.domain.sub(self.book.vr, self.book.nr)
        self.book.advance()
        self.stats.max_buffered = max(
            self.stats.max_buffered, self.book.buffered_count()
        )
        pending = self.book.domain.sub(self.book.vr, self.book.nr)
        if pending > pending_before or pending > 0:
            self.ack_policy.on_update(pending)

    def _flush_acks(self) -> None:
        self.book.advance()
        if not self.book.ack_ready:
            return
        lo, hi, payloads = self.book.take_block()
        self._send_ack(lo, hi, duplicate=False)
        for offset, payload in enumerate(payloads):
            wire = self.book.domain.add(lo, offset)
            self.trace.record(self.actor_name, EventKind.DELIVER, seq=wire)
            self._delivered_count += 1
            self._deliver(wire, payload)

    def _send_ack(self, lo: int, hi: int, duplicate: bool) -> None:
        self.stats.acks_sent += 1
        kind = EventKind.RESEND_ACK if duplicate else EventKind.SEND_ACK
        self.trace.record(self.actor_name, kind, seq=lo, seq_hi=hi)
        self.tx.send(BlockAck(lo=lo, hi=hi, urgent=duplicate))
