"""Go-back-N baseline (the "traditional window protocol" of the paper).

Classic go-back-N with cumulative acknowledgments and unbounded internal
sequence numbers (so it is *safe* under reorder — the unsafe bounded-number
variant that motivates the paper lives in :mod:`repro.verify.faulty`):

* the receiver accepts **only in-order** data; anything else is discarded
  and answered with a duplicate cumulative ack for the last accepted
  message;
* the sender keeps one timer; on expiry it retransmits the **entire**
  outstanding window (the "go back");
* a cumulative ack for ``k`` acknowledges everything ``<= k``; stale
  (non-advancing) acks are ignored.

Against block acknowledgment this baseline shows both paper claims: equal
throughput when channels are perfect (E2) and collapse under loss (whole
windows retransmitted, E3) or reorder (out-of-order arrivals discarded,
E10).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.messages import CumulativeAck, DataMessage
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.robustness.budget import RetryVerdict
from repro.robustness.controller import AdaptiveConfig, RetransmissionController
from repro.sim.timers import AdaptiveTimer
from repro.trace.events import EventKind

__all__ = ["GoBackNSender", "GoBackNReceiver"]


class GoBackNSender(SenderEndpoint):
    """Go-back-N sender: cumulative acks, whole-window retransmission.

    ``adaptive`` optionally replaces the fixed timeout with a
    :class:`~repro.robustness.controller.RetransmissionController`
    (estimated RTO, backoff, retry budget with graceful degradation);
    ``None`` keeps the fixed-timer baseline bit-for-bit.
    """

    def __init__(
        self,
        window: int,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.w = window
        self.na = 0  # oldest unacknowledged
        self.ns = 0  # next to send
        self.timeout_period = timeout_period
        self.adaptive = adaptive
        self.link_dead = False
        self._retx: Optional[RetransmissionController] = None
        self._payloads: Dict[int, Any] = {}
        self._timer: Optional[AdaptiveTimer] = None

    def _after_attach(self) -> None:
        if self.timeout_period is None:
            raise ValueError("timeout_period must be set before attaching")
        if self.adaptive is not None:
            self._retx = self.adaptive.build(self.timeout_period)
        self._timer = AdaptiveTimer(
            self.sim, self._on_timeout, period_fn=self._period, name="gbn-retx"
        )

    def _period(self) -> float:
        if self._retx is not None:
            return self._retx.period(None)
        return self.timeout_period

    # -- application interface -------------------------------------------

    @property
    def can_accept(self) -> bool:
        return not self.link_dead and self.ns < self.na + self.w

    def submit(self, payload: Any) -> int:
        if not self.can_accept:
            raise RuntimeError(f"window full: na={self.na} ns={self.ns}")
        seq = self.ns
        self.ns += 1
        self._payloads[seq] = payload
        self.stats.submitted += 1
        self._transmit(seq, attempt=0)
        return seq

    @property
    def all_acknowledged(self) -> bool:
        return self.na == self.ns

    # -- transmission -------------------------------------------------------

    def _transmit(self, seq: int, attempt: int) -> None:
        self.stats.data_sent += 1
        if attempt > 0:
            self.stats.retransmissions += 1
            self.trace.record(self.actor_name, EventKind.RESEND_DATA, seq=seq)
        else:
            self.trace.record(self.actor_name, EventKind.SEND_DATA, seq=seq)
        self.tx.send(
            DataMessage(seq=seq, payload=self._payloads.get(seq), attempt=attempt)
        )
        if self._retx is not None:
            self._retx.on_send(seq, self.sim.now, retransmit=attempt > 0)
        if not self._timer.running:
            self._timer.start()

    def _on_timeout(self) -> None:
        """Go back: retransmit every outstanding message, restart timer."""
        if self.all_acknowledged:
            return
        self.stats.timeouts_fired += 1
        self.trace.record(
            self.actor_name, EventKind.TIMEOUT, seq=self.na, detail="go-back"
        )
        if self._retx is not None:
            verdict = self._retx.on_timeout(None)
            if verdict is RetryVerdict.LINK_DEAD:
                self.link_dead = True
                self.trace.record(
                    self.actor_name, EventKind.NOTE, detail="link dead"
                )
                self._timer.stop()
                return
            if verdict is RetryVerdict.DEGRADE:
                self.w = max(1, int(self.w * self.adaptive.degrade_factor))
        for seq in range(self.na, self.ns):
            self._transmit(seq, attempt=1)
        self._timer.start()

    # -- acknowledgment handling ---------------------------------------------

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, CumulativeAck):
            raise TypeError(f"go-back-N sender got {ack!r}")
        self.stats.acks_received += 1
        if ack.seq < self.na:
            self.stats.stale_acks += 1
            return
        if ack.seq >= self.ns:
            # cannot happen with unbounded numbers; defensive for reuse
            self.stats.stale_acks += 1
            return
        self.trace.record(self.actor_name, EventKind.RECV_ACK, seq=ack.seq)
        newly_acked = list(range(self.na, ack.seq + 1))
        for seq in newly_acked:
            self._payloads.pop(seq, None)
        self.na = ack.seq + 1
        if self._retx is not None:
            self._retx.on_ack(newly_acked, self.sim.now)
        self.stats.acked = self.na
        self.stats.last_ack_time = self.sim.now
        if self.all_acknowledged:
            self._timer.stop()
        else:
            self._timer.start()  # restart for new oldest
        self.trace.record(self.actor_name, EventKind.WINDOW_OPEN, seq=self.na)
        self._window_opened()


class GoBackNReceiver(ReceiverEndpoint):
    """Go-back-N receiver: in-order accept only, cumulative acks."""

    def __init__(self, window: int) -> None:
        super().__init__()
        self.w = window  # unused except for symmetry/diagnostics
        self.nr = 0  # next expected

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"go-back-N receiver got {message!r}")
        self.stats.data_received += 1
        self.trace.record(self.actor_name, EventKind.RECV_DATA, seq=message.seq)
        if message.seq == self.nr:
            self.nr += 1
            self.trace.record(self.actor_name, EventKind.DELIVER, seq=message.seq)
            self._deliver(message.seq, message.payload)
        elif message.seq < self.nr:
            self.stats.duplicates += 1
        else:
            self.stats.out_of_order += 1  # discarded, not buffered
        if self.nr > 0:
            self._send_ack(self.nr - 1)

    def _send_ack(self, seq: int) -> None:
        self.stats.acks_sent += 1
        self.trace.record(self.actor_name, EventKind.SEND_ACK, seq=seq)
        self.tx.send(CumulativeAck(seq=seq))
