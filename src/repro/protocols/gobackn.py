"""Go-back-N baseline (the "traditional window protocol" of the paper).

Classic go-back-N with cumulative acknowledgments and unbounded internal
sequence numbers (so it is *safe* under reorder — the unsafe bounded-number
variant that motivates the paper lives in :mod:`repro.verify.faulty`):

* the receiver accepts **only in-order** data; anything else is discarded
  and answered with a duplicate cumulative ack for the last accepted
  message;
* the sender keeps one timer; on expiry it retransmits the **entire**
  outstanding window (the "go back");
* a cumulative ack for ``k`` acknowledges everything ``<= k``; stale
  (non-advancing) acks are ignored.

Against block acknowledgment this baseline shows both paper claims: equal
throughput when channels are perfect (E2) and collapse under loss (whole
windows retransmitted, E3) or reorder (out-of-order arrivals discarded,
E10).

Endpoint scaffolding (payload store, transmission bookkeeping, adaptive
retransmission, timer plumbing) comes from
:mod:`repro.protocols.window_core`; this module keeps only the go-back-N
decision logic.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.messages import CumulativeAck, DataMessage
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.window_core import WindowedReceiver, WindowedSender
from repro.robustness.controller import AdaptiveConfig
from repro.trace.events import EventKind

__all__ = ["GoBackNSender", "GoBackNReceiver"]


class GoBackNSender(WindowedSender):
    """Go-back-N sender: cumulative acks, whole-window retransmission.

    ``adaptive`` optionally replaces the fixed timeout with a
    :class:`~repro.robustness.controller.RetransmissionController`
    (estimated RTO, backoff, retry budget with graceful degradation);
    ``None`` keeps the fixed-timer baseline bit-for-bit.
    """

    timer_style = "single"
    timer_name = "gbn-retx"

    def __init__(
        self,
        window: int,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__(timeout_period=timeout_period, adaptive=adaptive)
        self.window = SenderWindow(window)

    # compatibility accessors: the raw counters were public before the
    # window-core refactor moved them onto SenderWindow
    @property
    def na(self) -> int:
        return self.window.na

    @property
    def ns(self) -> int:
        return self.window.ns

    @property
    def w(self) -> int:
        return self.window.w

    # -- transmission -------------------------------------------------------

    def _arm_timers(self, seq: int, attempt: int) -> None:
        # one timer for the whole window: arm on first use, never restart
        # mid-flight (the go-back retransmission loop re-arms at the end)
        if not self._timer.running:
            self._timer.start()

    def _on_single_timeout(self) -> None:
        """Go back: retransmit every outstanding message, restart timer."""
        if self.all_acknowledged:
            return
        self.stats.timeouts_fired += 1
        self.trace.record(
            self.actor_name, EventKind.TIMEOUT, seq=self.window.na, detail="go-back"
        )
        if not self._consult_budget(None):
            return
        for seq in self.window.outstanding():
            self._transmit(seq, attempt=1)
        self._timer.start()

    def _degrade(self) -> None:
        # shrink the effective window; cumulative acking needs no trace
        self.window.resize(
            max(1, int(self.window.w * self.adaptive.degrade_factor))
        )

    # -- acknowledgment handling ---------------------------------------------

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, CumulativeAck):
            raise TypeError(f"go-back-N sender got {ack!r}")
        self.stats.acks_received += 1
        if ack.seq < self.window.na:
            self.stats.stale_acks += 1
            return
        if ack.seq >= self.window.ns:
            # cannot happen with unbounded numbers; defensive for reuse
            self.stats.stale_acks += 1
            return
        self.trace.record(self.actor_name, EventKind.RECV_ACK, seq=ack.seq)
        outcome = self.window.apply_ack(self.window.na, ack.seq)
        for seq in outcome.newly_acked:
            self._payloads.pop(seq, None)
        self._register_ack(outcome.newly_acked, self.window.na)
        if self.all_acknowledged:
            self._timer.stop()
        else:
            self._timer.start()  # restart for new oldest
        self._window_open_event(self.window.na)


class GoBackNReceiver(WindowedReceiver):
    """Go-back-N receiver: in-order accept only, cumulative acks."""

    def __init__(self, window: int) -> None:
        super().__init__()
        self.window = ReceiverWindow(window)

    @property
    def nr(self) -> int:
        """Next expected sequence number (public before the refactor)."""
        return self.window.nr

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"go-back-N receiver got {message!r}")
        seq = message.seq
        self._note_arrival(seq)
        if seq == self.window.nr:
            # in-order: accept and release immediately (never buffered)
            self.window.accept(seq, message.payload)
            self.window.advance()
            lo, _hi, payloads = self.window.take_block()
            self._deliver_block(lo, payloads)
        elif seq < self.window.nr:
            self.stats.duplicates += 1
        else:
            self.stats.out_of_order += 1  # discarded, not buffered
        if self.window.nr > 0:
            self._send_ack(self.window.nr - 1)

    def _send_ack(self, seq: int) -> None:
        self.stats.acks_sent += 1
        self.trace.record(self.actor_name, EventKind.SEND_ACK, seq=seq)
        self.tx.send(CumulativeAck(seq=seq))
