"""Protocol factory registry: build sender/receiver pairs by name.

The experiments and the CLI refer to protocols by short names; this
registry maps each name to a factory that builds a matched
``(sender, receiver)`` pair.  Factories accept the common keyword
arguments (``window``, plus protocol-specific extras) so sweep harnesses
can stay generic.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.numbering import ModularNumbering
from repro.protocols.ack_policy import AckPolicy
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.protocols.blockack_bounded import (
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
)
from repro.protocols.gobackn import GoBackNReceiver, GoBackNSender
from repro.protocols.sack import SackReceiver, SackSender
from repro.robustness.controller import AdaptiveConfig
from repro.protocols.selective_repeat import (
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
)
from repro.protocols.stenning import StenningReceiver, StenningSender

__all__ = ["PROTOCOLS", "make_pair", "protocol_names"]

Pair = Tuple[SenderEndpoint, ReceiverEndpoint]
Factory = Callable[..., Pair]


def _blockack(
    window: int,
    timeout_mode: str = "per_message_safe",
    bounded_wire: bool = False,
    ack_policy: Optional[AckPolicy] = None,
    timeout_period: Optional[float] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    lookahead: int = 1,
    **_: object,
) -> Pair:
    numbering = (
        ModularNumbering(window, lookahead=lookahead) if bounded_wire else None
    )
    sender = BlockAckSender(
        window,
        numbering=numbering,
        timeout_mode=timeout_mode,
        timeout_period=timeout_period,
        adaptive=adaptive,
        lookahead=lookahead,
    )
    receiver = BlockAckReceiver(window, numbering=numbering, ack_policy=ack_policy)
    return sender, receiver


def _blockack_simple(window: int, **kwargs: object) -> Pair:
    kwargs.pop("timeout_mode", None)
    return _blockack(window, timeout_mode="simple", **kwargs)


def _blockack_oracle(window: int, **kwargs: object) -> Pair:
    kwargs.pop("timeout_mode", None)
    kwargs.setdefault("timeout_period", 0.25)
    return _blockack(window, timeout_mode="oracle", **kwargs)


def _blockack_bounded(
    window: int,
    ack_policy: Optional[AckPolicy] = None,
    timeout_period: Optional[float] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    **_: object,
) -> Pair:
    sender = BoundedBlockAckSender(
        window, timeout_period=timeout_period, adaptive=adaptive
    )
    receiver = BoundedBlockAckReceiver(window, ack_policy=ack_policy)
    return sender, receiver


def _gobackn(
    window: int,
    timeout_period: Optional[float] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    **_: object,
) -> Pair:
    return (
        GoBackNSender(window, timeout_period, adaptive=adaptive),
        GoBackNReceiver(window),
    )


def _selective_repeat(
    window: int,
    timeout_period: Optional[float] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    **_: object,
) -> Pair:
    return (
        SelectiveRepeatSender(window, timeout_period, adaptive=adaptive),
        SelectiveRepeatReceiver(window),
    )


def _tcp_sack(
    window: int, timeout_period: Optional[float] = None, **_: object
) -> Pair:
    return SackSender(window, timeout_period), SackReceiver(window)


def _stenning(
    window: int,
    domain: Optional[int] = None,
    reuse_delay: Optional[float] = None,
    timeout_period: Optional[float] = None,
    **_: object,
) -> Pair:
    d = domain if domain is not None else 2 * window
    sender = StenningSender(
        window, d, reuse_delay=reuse_delay, timeout_period=timeout_period
    )
    return sender, StenningReceiver(window, d)


PROTOCOLS: Dict[str, Factory] = {
    "blockack": _blockack,  # per-message safe timers (Section IV realization)
    "blockack-simple": _blockack_simple,  # Section II single timer
    "blockack-oracle": _blockack_oracle,  # Section IV verbatim (oracle guard)
    "blockack-bounded": _blockack_bounded,  # Section V byte-exact programs
    "gobackn": _gobackn,
    "selective-repeat": _selective_repeat,
    "stenning": _stenning,
    "tcp-sack": _tcp_sack,  # modern descendant (RFC 2018-style, unbounded)
}


def protocol_names() -> list:
    """Registered protocol names, stable order."""
    return list(PROTOCOLS)


def make_pair(name: str, window: int, **kwargs: object) -> Pair:
    """Build a matched sender/receiver pair for the named protocol."""
    try:
        factory = PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {', '.join(PROTOCOLS)}"
        ) from None
    return factory(window, **kwargs)
