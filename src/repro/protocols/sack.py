"""A TCP-SACK-style baseline: cumulative ack plus selective-ack blocks.

Block acknowledgment's idea — tell the sender exactly *which ranges*
arrived — is where modern transport landed: TCP's SACK option (RFC 2018)
carries a cumulative acknowledgment plus up to three ``(lo, hi)`` blocks
of out-of-order data.  This module implements a compact NewReno/SACK-lite
sender and receiver so the paper's protocol can be compared against its
descendant:

* the **receiver** acknowledges every arrival with
  ``SackAck(cum, blocks)``: ``cum`` is the highest in-order sequence
  received, ``blocks`` the three most relevant buffered runs;
* the **sender** keeps a scoreboard.  A hole (unacknowledged sequence
  below SACKed data) is fast-retransmitted once enough evidence
  accumulates — three duplicate cumulative acks, or three SACKed
  segments above it (the FACK-style trigger) — without waiting for the
  retransmission timer, which remains as the backstop.

Differences from the paper's protocol worth noticing in experiments:
SACK needs effectively unbounded sequence numbers (TCP's 32-bit space +
PAWS timestamps; this implementation uses true integers), sends one ack
per arrival like selective repeat (E4's overhead), and its acknowledgment
is *advisory* — SACKed data may legally be retransmitted — whereas block
acknowledgment's pairs are definitive, which is what lets the paper bound
the number space at ``2w``.

Endpoint scaffolding (payload store, transmission bookkeeping, window
occupancy) comes from :mod:`repro.protocols.window_core`; the SACK
scoreboard stays separate because SACK blocks are advisory, not
definitive — they never advance the window's acknowledgment cursor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set, Tuple

from repro.core.messages import DataMessage
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.window_core import WindowedReceiver, WindowedSender
from repro.sim.timers import Timer
from repro.trace.events import EventKind

__all__ = ["SackAck", "SackSender", "SackReceiver", "DUP_ACK_THRESHOLD"]

#: duplicate-ack / SACKed-segments-above threshold for fast retransmit
DUP_ACK_THRESHOLD = 3

#: TCP carries at most 3 SACK blocks alongside a timestamp option
MAX_SACK_BLOCKS = 3


@dataclass(frozen=True)
class SackAck:
    """Cumulative acknowledgment plus selective-acknowledgment blocks.

    ``cum`` acknowledges everything ``<= cum`` (-1 when nothing in-order
    has arrived yet); ``blocks`` are disjoint ``(lo, hi)`` ranges of
    buffered out-of-order data, most relevant first.
    """

    cum: int
    blocks: Tuple[Tuple[int, int], ...] = ()

    def __str__(self) -> str:
        blocks = ",".join(f"{lo}-{hi}" for lo, hi in self.blocks)
        return f"SACK(cum={self.cum}{';' + blocks if blocks else ''})"


class SackSender(WindowedSender):
    """Scoreboard sender with fast retransmit and a timer backstop."""

    # the plain RTO Timer below predates the adaptive bank; SACK's own
    # fast-retransmit logic covers what backoff would
    timer_style = "custom"
    timer_name = "sack-rto"

    def __init__(self, window: int, timeout_period: Optional[float] = None) -> None:
        super().__init__(timeout_period=timeout_period)
        self.window = SenderWindow(window)
        self._sacked: Set[int] = set()
        self._fast_retransmitted: Set[int] = set()  # once per episode
        self._dup_acks = 0

    def _build_timers(self) -> None:
        self._rto = Timer(self.sim, self._on_timeout, name=self.timer_name)

    # compatibility accessors: the raw counters were public before the
    # window-core refactor moved them onto SenderWindow
    @property
    def na(self) -> int:
        return self.window.na

    @property
    def ns(self) -> int:
        return self.window.ns

    @property
    def w(self) -> int:
        return self.window.w

    # -- transmission ------------------------------------------------------

    def _arm_timers(self, seq: int, attempt: int) -> None:
        if not self._rto.running:
            self._rto.start(self.timeout_period)

    def _on_timeout(self) -> None:
        """RTO backstop: resend the oldest hole, reset the episode."""
        if self.all_acknowledged or self.window.na >= self.window.ns:
            # the second disjunct only differs under state corruption:
            # never retransmit from an inconsistent cursor (stabilize
            # repairs it before the next delivery or watchdog sweep)
            return
        self.stats.timeouts_fired += 1
        self.trace.record(self.actor_name, EventKind.TIMEOUT, seq=self.window.na)
        self._fast_retransmitted.clear()  # new recovery episode
        self._dup_acks = 0
        self._transmit(self.window.na, attempt=1)
        self._rto.start(self.timeout_period)

    # -- acknowledgment handling ---------------------------------------------

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, SackAck):
            raise TypeError(f"SACK sender got {ack!r}")
        self.stats.acks_received += 1
        self.trace.record(
            self.actor_name, EventKind.RECV_ACK, seq=ack.cum,
            detail=ack.blocks,
        )
        advanced = False
        if ack.cum + 1 > self.window.na and ack.cum < self.window.ns:
            outcome = self.window.apply_ack(self.window.na, ack.cum)
            for seq in outcome.newly_acked:
                self._payloads.pop(seq, None)
                self._sacked.discard(seq)
                self._fast_retransmitted.discard(seq)
            self._dup_acks = 0
            advanced = True
            self._register_ack(outcome.newly_acked, self.window.na)
            if self.all_acknowledged:
                self._rto.stop()
            else:
                self._rto.start(self.timeout_period)
        else:
            self._dup_acks += 1
            self.stats.stale_acks += 1

        for lo, hi in ack.blocks:
            for seq in range(max(lo, self.window.na), min(hi + 1, self.window.ns)):
                self._sacked.add(seq)

        self._fast_retransmit_holes()
        if advanced:
            self._window_open_event(self.window.na)

    # -- self-stabilization --------------------------------------------------

    def _stabilize_extra(self) -> list:
        """Repair the SACK scoreboard (advisory state, safe to drop)."""
        repairs = []
        live = range(self.window.na, self.window.ns)
        for name, board in (
            ("sacked", self._sacked),
            ("fast-retransmitted", self._fast_retransmitted),
        ):
            stale = {s for s in board if s not in live}
            if stale:
                repairs.append(f"pruned {name} scoreboard {sorted(stale)}")
                board -= stale
        if self._dup_acks < 0:
            repairs.append(f"dup-ack counter reset (was {self._dup_acks})")
            self._dup_acks = 0
        return repairs

    def _rearm_after_repair(self) -> list:
        if self.link_dead or self._down or self.all_acknowledged:
            return []
        if not self._rto.running:
            self._rto.start(self.timeout_period)
            return ["re-armed RTO backstop"]
        return []

    def _fast_retransmit_holes(self) -> None:
        """Resend holes with enough reordering evidence above them."""
        if not self._sacked:
            return
        sacked_sorted = sorted(self._sacked)
        for seq in range(self.window.na, sacked_sorted[-1]):
            if seq in self._sacked or seq in self._fast_retransmitted:
                continue
            above = sum(1 for s in sacked_sorted if s > seq)
            if above >= DUP_ACK_THRESHOLD or self._dup_acks >= DUP_ACK_THRESHOLD:
                self._fast_retransmitted.add(seq)
                self.trace.record(
                    self.actor_name, EventKind.TIMEOUT, seq=seq,
                    detail="fast-retransmit",
                )
                self._transmit(seq, attempt=1)


class SackReceiver(WindowedReceiver):
    """Out-of-order buffering receiver emitting cum + SACK blocks."""

    def __init__(self, window: int) -> None:
        super().__init__()
        self.window = ReceiverWindow(window)

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"SACK receiver got {message!r}")
        seq = message.seq
        self._note_arrival(seq)
        outcome = self.window.accept(seq, message.payload)
        self._classify(outcome, seq, self.window.vr)
        self.window.advance()
        self._note_buffered(len(self.window.received_unaccepted))
        self._drain_ready()
        self._send_ack(recent=seq)

    def _send_ack(self, recent: int) -> None:
        cum = self.window.nr - 1
        blocks = self._sack_blocks(recent)
        self.stats.acks_sent += 1
        self.trace.record(
            self.actor_name, EventKind.SEND_ACK, seq=cum, detail=blocks
        )
        self.tx.send(SackAck(cum=cum, blocks=blocks))

    def _sack_blocks(self, recent: int) -> Tuple[Tuple[int, int], ...]:
        """Up to three buffered runs, the one containing ``recent`` first."""
        buffered = self.window.received_unaccepted
        if not buffered:
            return ()
        runs: List[List[int]] = []
        for seq in buffered:
            if runs and seq == runs[-1][1] + 1:
                runs[-1][1] = seq
            else:
                runs.append([seq, seq])
        runs.sort(key=lambda run: (not run[0] <= recent <= run[1], -run[1]))
        return tuple((lo, hi) for lo, hi in runs[:MAX_SACK_BLOCKS])
