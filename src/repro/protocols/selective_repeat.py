"""Selective-repeat baseline (Stenning's protocol, paper reference [14]).

The paper describes this baseline as the variant that tolerates both loss
and disorder but "requires that every data message be acknowledged by a
distinct acknowledgment message ... a severe restriction over the behavior
of a regular window protocol":

* the receiver accepts out-of-order data within the window, buffers it,
  and emits one singleton acknowledgment ``(v, v)`` for **every** data
  message received (fresh or duplicate);
* the sender keeps one retransmission timer per outstanding message and
  retransmits individually.

Block acknowledgment keeps this protocol's loss resilience (E3) while
cutting its per-message acknowledgment traffic (E4) — that comparison is
the heart of the paper's Section VI claim that selective repeat and
go-back-N are the two degenerate corners of block acknowledgment.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.messages import BlockAck, DataMessage
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.robustness.budget import RetryVerdict
from repro.robustness.controller import AdaptiveConfig, RetransmissionController
from repro.sim.timers import AdaptiveTimerBank
from repro.trace.events import EventKind

__all__ = ["SelectiveRepeatSender", "SelectiveRepeatReceiver"]


class SelectiveRepeatSender(SenderEndpoint):
    """Selective-repeat sender: per-message acks and timers.

    ``adaptive`` optionally replaces the fixed per-message timeout with a
    :class:`~repro.robustness.controller.RetransmissionController`
    (estimated RTO, per-message backoff, retry budget with graceful
    degradation); ``None`` keeps the fixed-timer baseline bit-for-bit.
    """

    def __init__(
        self,
        window: int,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__()
        self.window = SenderWindow(window)
        self.timeout_period = timeout_period
        self.adaptive = adaptive
        self.link_dead = False
        self._retx: Optional[RetransmissionController] = None
        self._payloads: Dict[int, Any] = {}
        self._timers: Optional[AdaptiveTimerBank] = None

    def _after_attach(self) -> None:
        if self.timeout_period is None:
            raise ValueError("timeout_period must be set before attaching")
        if self.adaptive is not None:
            self._retx = self.adaptive.build(self.timeout_period)
        self._timers = AdaptiveTimerBank(
            self.sim, self._on_timeout, period_fn=self._period, name="sr-retx"
        )

    def _period(self, seq: int) -> float:
        if self._retx is not None:
            return self._retx.period(seq)
        return self.timeout_period

    @property
    def can_accept(self) -> bool:
        return not self.link_dead and self.window.can_send

    def submit(self, payload: Any) -> int:
        seq = self.window.take_next()
        self._payloads[seq] = payload
        self.stats.submitted += 1
        self._transmit(seq, attempt=0)
        return seq

    @property
    def all_acknowledged(self) -> bool:
        return self.window.all_acknowledged

    def _transmit(self, seq: int, attempt: int) -> None:
        self.stats.data_sent += 1
        if attempt > 0:
            self.stats.retransmissions += 1
            self.trace.record(self.actor_name, EventKind.RESEND_DATA, seq=seq)
        else:
            self.trace.record(self.actor_name, EventKind.SEND_DATA, seq=seq)
        self.tx.send(
            DataMessage(seq=seq, payload=self._payloads.get(seq), attempt=attempt)
        )
        if self._retx is not None:
            self._retx.on_send(seq, self.sim.now, retransmit=attempt > 0)
        self._timers.start(seq)

    def _on_timeout(self, seq: int) -> None:
        if self.window.is_acked(seq):
            return
        self.stats.timeouts_fired += 1
        self.trace.record(self.actor_name, EventKind.TIMEOUT, seq=seq)
        if self._retx is not None:
            verdict = self._retx.on_timeout(seq)
            if verdict is RetryVerdict.LINK_DEAD:
                self.link_dead = True
                self.trace.record(
                    self.actor_name, EventKind.NOTE, detail="link dead"
                )
                self._timers.stop_all()
                return
            if verdict is RetryVerdict.DEGRADE:
                self.window.resize(
                    max(1, int(self.window.w * self.adaptive.degrade_factor))
                )
        self._transmit(seq, attempt=1)

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, BlockAck) or not ack.is_singleton:
            raise TypeError(f"selective-repeat sender expects (v,v) acks, got {ack!r}")
        self.stats.acks_received += 1
        seq = ack.lo
        if self.window.is_acked(seq) or seq >= self.window.ns:
            self.stats.stale_acks += 1
            return
        self.trace.record(self.actor_name, EventKind.RECV_ACK, seq=seq, seq_hi=seq)
        outcome = self.window.apply_ack(seq, seq)
        if self._retx is not None:
            self._retx.on_ack(outcome.newly_acked, self.sim.now)
        self._timers.stop(seq)
        self._payloads.pop(seq, None)
        self.stats.acked = self.window.na
        self.stats.last_ack_time = self.sim.now
        if outcome.advanced:
            self.trace.record(
                self.actor_name, EventKind.WINDOW_OPEN, seq=self.window.na
            )
            self._window_opened()


class SelectiveRepeatReceiver(ReceiverEndpoint):
    """Selective-repeat receiver: out-of-order buffering, one ack per datum."""

    def __init__(self, window: int) -> None:
        super().__init__()
        self.window = ReceiverWindow(window)

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"selective-repeat receiver got {message!r}")
        self.stats.data_received += 1
        seq = message.seq
        self.trace.record(self.actor_name, EventKind.RECV_DATA, seq=seq)
        outcome = self.window.accept(seq, message.payload)
        if outcome.duplicate:
            self.stats.duplicates += 1
        elif outcome.redundant:
            self.stats.redundant += 1
        elif seq != self.window.vr:
            self.stats.out_of_order += 1
        # the defining trait: EVERY received data message gets its own ack
        self._send_ack(seq)
        self.window.advance()
        self.stats.max_buffered = max(
            self.stats.max_buffered, len(self.window.received_unaccepted)
        )
        while self.window.ack_ready:
            lo, hi, payloads = self.window.take_block()
            for offset, payload in enumerate(payloads):
                self.trace.record(
                    self.actor_name, EventKind.DELIVER, seq=lo + offset
                )
                self._deliver(lo + offset, payload)

    def _send_ack(self, seq: int) -> None:
        self.stats.acks_sent += 1
        self.trace.record(self.actor_name, EventKind.SEND_ACK, seq=seq, seq_hi=seq)
        self.tx.send(BlockAck(lo=seq, hi=seq))
