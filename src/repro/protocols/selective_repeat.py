"""Selective-repeat baseline (Stenning's protocol, paper reference [14]).

The paper describes this baseline as the variant that tolerates both loss
and disorder but "requires that every data message be acknowledged by a
distinct acknowledgment message ... a severe restriction over the behavior
of a regular window protocol":

* the receiver accepts out-of-order data within the window, buffers it,
  and emits one singleton acknowledgment ``(v, v)`` for **every** data
  message received (fresh or duplicate);
* the sender keeps one retransmission timer per outstanding message and
  retransmits individually.

Block acknowledgment keeps this protocol's loss resilience (E3) while
cutting its per-message acknowledgment traffic (E4) — that comparison is
the heart of the paper's Section VI claim that selective repeat and
go-back-N are the two degenerate corners of block acknowledgment.

Endpoint scaffolding (payload store, transmission bookkeeping, adaptive
retransmission, per-sequence timer bank) comes from
:mod:`repro.protocols.window_core`; this module keeps only the
selective-repeat decision logic.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.messages import BlockAck, DataMessage
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.window_core import WindowedReceiver, WindowedSender
from repro.robustness.controller import AdaptiveConfig
from repro.trace.events import EventKind

__all__ = ["SelectiveRepeatSender", "SelectiveRepeatReceiver"]


class SelectiveRepeatSender(WindowedSender):
    """Selective-repeat sender: per-message acks and timers.

    ``adaptive`` optionally replaces the fixed per-message timeout with a
    :class:`~repro.robustness.controller.RetransmissionController`
    (estimated RTO, per-message backoff, retry budget with graceful
    degradation); ``None`` keeps the fixed-timer baseline bit-for-bit.
    """

    timer_style = "per_seq"
    timer_name = "sr-retx"

    def __init__(
        self,
        window: int,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__(timeout_period=timeout_period, adaptive=adaptive)
        self.window = SenderWindow(window)

    def _on_seq_timeout(self, seq: int) -> None:
        if self.window.is_acked(seq):
            return
        self.stats.timeouts_fired += 1
        self.trace.record(self.actor_name, EventKind.TIMEOUT, seq=seq)
        if not self._consult_budget(seq):
            return
        self._transmit(seq, attempt=1)

    def _degrade(self) -> None:
        self.window.resize(
            max(1, int(self.window.w * self.adaptive.degrade_factor))
        )

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, BlockAck) or not ack.is_singleton:
            raise TypeError(f"selective-repeat sender expects (v,v) acks, got {ack!r}")
        self.stats.acks_received += 1
        seq = ack.lo
        if self.window.is_acked(seq) or seq >= self.window.ns:
            self.stats.stale_acks += 1
            return
        self.trace.record(self.actor_name, EventKind.RECV_ACK, seq=seq, seq_hi=seq)
        outcome = self.window.apply_ack(seq, seq)
        self._register_ack(outcome.newly_acked, self.window.na)
        self._timers.stop(seq)
        self._payloads.pop(seq, None)
        if outcome.advanced:
            self._window_open_event(self.window.na)


class SelectiveRepeatReceiver(WindowedReceiver):
    """Selective-repeat receiver: out-of-order buffering, one ack per datum."""

    def __init__(self, window: int) -> None:
        super().__init__()
        self.window = ReceiverWindow(window)

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"selective-repeat receiver got {message!r}")
        seq = message.seq
        self._note_arrival(seq)
        outcome = self.window.accept(seq, message.payload)
        self._classify(outcome, seq, self.window.vr)
        # the defining trait: EVERY received data message gets its own ack
        self._send_ack(seq)
        self.window.advance()
        self._note_buffered(len(self.window.received_unaccepted))
        self._drain_ready()

    def _send_ack(self, seq: int) -> None:
        self.stats.acks_sent += 1
        self.trace.record(self.actor_name, EventKind.SEND_ACK, seq=seq, seq_hi=seq)
        self.tx.send(BlockAck(lo=seq, hi=seq))
