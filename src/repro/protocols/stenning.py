"""Timer-constrained bounded-number baseline (Stenning / Shankar–Lam).

This is the second prior protocol the paper's introduction critiques: it
achieves bounded sequence numbers *and* tolerance of loss + disorder, but
by imposing a real-time constraint on every send — "a specified time
period should elapse between the sending of two data messages with the
same sequence number".  The reuse period must exceed the maximum lifetime
of a message and its acknowledgment, so that when a wire number is reused
no stale copy can be misattributed.

Consequence (the paper: "this additional constraint may adversely affect
the rate of data transfer in the event that a small domain of sequence
numbers is used"): new transmissions of each of the ``D`` wire numbers
are at least ``reuse_delay`` apart, capping throughput at::

    min( w / RTT,  D / reuse_delay )

The E6 experiment sweeps ``D`` and shows the linear cap, with block
acknowledgment flat at channel capacity for every domain >= 2w.

Decoding with the reuse discipline
----------------------------------

All live data sequence numbers lie in ``[nr - w, nr + w)`` — too wide for
unique mod-``D`` decoding when ``D < 2w``.  The reuse discipline is what
closes the gap: a previous generation ``x ≡ s (mod D)`` was necessarily
acknowledged and its copies aged out before ``s`` was reused, so the only
candidate that can actually be in transit is the **largest** value
``v ≡ s (mod D)`` with ``v < nr + w`` (receiver side) or ``v < ns``
(sender side, for acks).  This works for any ``D >= w + 1`` — smaller
than the ``2w`` the paper's own protocol needs, which is exactly the
trade: a smaller number space bought with real-time delays.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.messages import BlockAck, DataMessage
from repro.core.window import ReceiverWindow, SenderWindow
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.sim.timers import Timer, TimerBank
from repro.trace.events import EventKind

__all__ = ["StenningSender", "StenningReceiver", "decode_latest"]


def decode_latest(wire: int, domain: int, bound: int) -> Optional[int]:
    """Largest ``v ≡ wire (mod domain)`` with ``v < bound``; None if < 0."""
    if not 0 <= wire < domain:
        raise ValueError(f"wire {wire} outside domain 0..{domain - 1}")
    if bound <= 0:
        return None
    v = ((bound - 1 - wire) // domain) * domain + wire
    return v if v >= 0 else None


class StenningSender(SenderEndpoint):
    """Bounded-number sender with the per-number reuse delay.

    Parameters
    ----------
    window:
        Maximum outstanding messages ``w``.
    domain:
        Wire sequence-number domain ``D``; must be at least ``w + 1``.
    reuse_delay:
        Minimum spacing between transmissions carrying the same wire
        number.  Must exceed the maximum one-way data lifetime + ack
        latency + ack lifetime; the runner derives it from the channels
        when left None (same bound as the retransmission timeout).
    timeout_period:
        Per-message retransmission timeout; derived by the runner when
        None (and shared with ``reuse_delay`` unless both are given).
    """

    def __init__(
        self,
        window: int,
        domain: int,
        reuse_delay: Optional[float] = None,
        timeout_period: Optional[float] = None,
    ) -> None:
        super().__init__()
        if domain < window + 1:
            raise ValueError(
                f"domain must be >= w + 1 = {window + 1}, got {domain}"
            )
        self.window = SenderWindow(window)
        self.domain = domain
        self.reuse_delay = reuse_delay
        self.timeout_period = timeout_period
        self._payloads: Dict[int, Any] = {}
        self._last_tx: Dict[int, float] = {}  # wire number -> last send time
        self._timers: Optional[TimerBank] = None
        self._wake: Optional[Timer] = None

    def _after_attach(self) -> None:
        if self.timeout_period is None:
            raise ValueError("timeout_period must be set before attaching")
        if self.reuse_delay is None:
            self.reuse_delay = self.timeout_period
        self._timers = TimerBank(self.sim, self._on_timeout, name="st-retx")
        self._wake = Timer(self.sim, self._window_opened, name="st-reuse-wake")

    # -- the real-time send constraint -------------------------------------

    def _reuse_ready_at(self, seq: int) -> float:
        """Earliest time the wire slot for ``seq`` may be used again."""
        last = self._last_tx.get(seq % self.domain)
        return 0.0 if last is None else last + self.reuse_delay

    @property
    def can_accept(self) -> bool:
        return (
            self.window.can_send
            and self.sim is not None
            and self.sim.now >= self._reuse_ready_at(self.window.ns)
        )

    def _arm_reuse_wake(self) -> None:
        """Wake the source when the blocking wire slot becomes reusable."""
        if not self.window.can_send:
            return  # window-open callback will fire on the next ack instead
        ready_at = self._reuse_ready_at(self.window.ns)
        if ready_at > self.sim.now and not self._wake.running:
            self._wake.start(ready_at - self.sim.now)

    # -- application interface ----------------------------------------------

    def submit(self, payload: Any) -> int:
        if not self.can_accept:
            raise RuntimeError(
                f"cannot send: window or reuse constraint (ns={self.window.ns})"
            )
        seq = self.window.take_next()
        self._payloads[seq] = payload
        self.stats.submitted += 1
        self._transmit(seq, attempt=0)
        self._arm_reuse_wake()
        return seq

    @property
    def all_acknowledged(self) -> bool:
        return self.window.all_acknowledged

    # -- transmission ----------------------------------------------------------

    def _transmit(self, seq: int, attempt: int) -> None:
        wire = seq % self.domain
        self.stats.data_sent += 1
        if attempt > 0:
            self.stats.retransmissions += 1
            self.trace.record(self.actor_name, EventKind.RESEND_DATA, seq=seq)
        else:
            self.trace.record(self.actor_name, EventKind.SEND_DATA, seq=seq)
        self._last_tx[wire] = self.sim.now
        self.tx.send(
            DataMessage(seq=wire, payload=self._payloads.get(seq), attempt=attempt)
        )
        self._timers.start(seq, self.timeout_period)

    def _on_timeout(self, seq: int) -> None:
        if self.window.is_acked(seq):
            return
        self.stats.timeouts_fired += 1
        self.trace.record(self.actor_name, EventKind.TIMEOUT, seq=seq)
        self._transmit(seq, attempt=1)

    # -- self-stabilization --------------------------------------------------

    def stabilize(self) -> list:
        """Guarded repair (Dolev): restore the window, re-arm dead timers.

        Stenning predates the window-core scaffolding, so it carries its
        own copy of the guard/repair hook; the repair rules themselves
        live on :class:`~repro.core.window.SenderWindow` and are shared
        with every other protocol.
        """
        repairs = self.window.repair(witness=self._payloads.keys())
        outstanding = set() if self.all_acknowledged else set(self.window.outstanding())
        for seq in sorted(outstanding):
            if not self._timers.running(seq):
                self._timers.start(seq, self.timeout_period)
                repairs.append(f"re-armed timer for seq {seq}")
        for seq in sorted(self._timers.active_keys()):
            if seq not in outstanding:
                self._timers.stop(seq)
                repairs.append(f"disarmed stale timer for seq {seq}")
        if repairs:
            self.trace.record(
                self.actor_name, EventKind.NOTE,
                detail="stabilize: " + "; ".join(repairs),
            )
            if self.can_accept:
                self._window_opened()
            self._arm_reuse_wake()
        return repairs

    # -- acknowledgment handling -------------------------------------------------

    def on_message(self, ack: Any) -> None:
        if not isinstance(ack, BlockAck) or not ack.is_singleton:
            raise TypeError(f"Stenning sender expects (v,v) acks, got {ack!r}")
        self.stats.acks_received += 1
        seq = decode_latest(ack.lo, self.domain, bound=self.window.ns)
        if seq is None or seq < self.window.na or self.window.is_acked(seq):
            self.stats.stale_acks += 1
            return
        self.trace.record(self.actor_name, EventKind.RECV_ACK, seq=seq, seq_hi=seq)
        outcome = self.window.apply_ack(seq, seq)
        self._timers.stop(seq)
        self._payloads.pop(seq, None)
        self.stats.acked = self.window.na
        self.stats.last_ack_time = self.sim.now
        if outcome.advanced:
            self.trace.record(
                self.actor_name, EventKind.WINDOW_OPEN, seq=self.window.na
            )
            self._window_opened()
            self._arm_reuse_wake()


class StenningReceiver(ReceiverEndpoint):
    """Bounded-number selective-repeat receiver with reuse-based decoding."""

    def __init__(self, window: int, domain: int) -> None:
        super().__init__()
        if domain < window + 1:
            raise ValueError(
                f"domain must be >= w + 1 = {window + 1}, got {domain}"
            )
        self.window = ReceiverWindow(window)
        self.domain = domain
        self._w = window

    def on_message(self, message: Any) -> None:
        if not isinstance(message, DataMessage):
            raise TypeError(f"Stenning receiver got {message!r}")
        self.stats.data_received += 1
        seq = decode_latest(
            message.seq, self.domain, bound=self.window.nr + self._w
        )
        if seq is None:  # wire number not yet usable: cannot occur in a run
            return
        self.trace.record(self.actor_name, EventKind.RECV_DATA, seq=seq)
        outcome = self.window.accept(seq, message.payload)
        if outcome.duplicate:
            self.stats.duplicates += 1
        elif outcome.redundant:
            self.stats.redundant += 1
        elif seq != self.window.vr:
            self.stats.out_of_order += 1
        self._send_ack(seq)
        self.window.advance()
        self.stats.max_buffered = max(
            self.stats.max_buffered, len(self.window.received_unaccepted)
        )
        while self.window.ack_ready:
            lo, hi, payloads = self.window.take_block()
            for offset, payload in enumerate(payloads):
                self.trace.record(self.actor_name, EventKind.DELIVER, seq=lo + offset)
                self._deliver(lo + offset, payload)

    def _send_ack(self, seq: int) -> None:
        self.stats.acks_sent += 1
        wire = seq % self.domain
        self.trace.record(self.actor_name, EventKind.SEND_ACK, seq=seq, seq_hi=seq)
        self.tx.send(BlockAck(lo=wire, hi=wire))

    # -- self-stabilization --------------------------------------------------

    def stabilize(self) -> list:
        """Guarded repair: restore window consistency, flush stalled blocks."""
        repairs = self.window.repair()
        if repairs:
            self.trace.record(
                self.actor_name, EventKind.NOTE,
                detail="stabilize: " + "; ".join(repairs),
            )
            while self.window.ack_ready:
                lo, hi, payloads = self.window.take_block()
                for offset, payload in enumerate(payloads):
                    self.trace.record(
                        self.actor_name, EventKind.DELIVER, seq=lo + offset
                    )
                    self._deliver(lo + offset, payload)
        return repairs
