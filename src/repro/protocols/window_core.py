"""Shared window-protocol endpoint core.

Every windowed protocol in this package — block acknowledgment, its
bounded Section-V twin, go-back-N, selective repeat, and the TCP-SACK
baseline — used to re-implement the same endpoint scaffolding: a payload
store keyed by sequence number, transmission bookkeeping (stats counters
plus ``SEND_DATA``/``RESEND_DATA`` trace records), retransmission-timer
plumbing, the adaptive-retransmission controller hookup, and the
acknowledgment-cursor bookkeeping that advances ``na`` and reopens the
window.  That duplication made each new endpoint expensive to write and
impossible to keep uniform, which is exactly what the multi-flow session
host needs: N cheap, interchangeable, flow-aware endpoints per simulated
network.

This module factors the scaffolding into two bases:

* :class:`WindowedSender` — owns the timeout period, the optional
  :class:`~repro.robustness.controller.AdaptiveConfig` plumbing, the
  payload store, and the retransmission timers (``timer_style`` picks
  one Section-II style timer, a per-sequence bank, or none).  Subclasses
  supply the *ack policy side* of the sender: how a wire message is
  built (:meth:`_wire_message`), how timers re-arm after a transmission
  (:meth:`_arm_timers`), and what an acknowledgment means
  (:meth:`on_message`); the core provides the invariant-preserving
  helpers they compose (:meth:`_transmit`, :meth:`_register_ack`,
  :meth:`_consult_budget`, :meth:`_declare_link_dead`).
* :class:`WindowedReceiver` — owns a
  :class:`~repro.core.window.ReceiverWindow` (``nr``/``vr`` tracking)
  and the arrival/delivery bookkeeping every receiver repeats:
  :meth:`_note_arrival` (stats + ``RECV_DATA``), :meth:`_classify`
  (duplicate / redundant / out-of-order counters plus the reorder-buffer
  high-water mark), and :meth:`_deliver_block` (in-order release with
  ``DELIVER`` records).

The per-protocol modules shrink to their actual decision logic, and the
refactor is pinned byte-identical to the pre-refactor implementations by
the golden decision-trace tests (``tests/test_golden_traces.py``).

Window *state* itself stays in :mod:`repro.core.window` (unbounded
counters) and :mod:`repro.core.bounded` (mod-``2w`` rings); this module
is the endpoint machinery around that state.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.core.messages import DataMessage
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.robustness.budget import RetryVerdict
from repro.robustness.controller import AdaptiveConfig, RetransmissionController
from repro.sim.timers import AdaptiveTimer, AdaptiveTimerBank
from repro.trace.events import EventKind

__all__ = ["WindowedSender", "WindowedReceiver", "TIMER_STYLES"]

#: how a windowed sender retransmits: one Section-II style timer covering
#: the oldest outstanding message, a per-sequence timer bank, or no
#: core-managed timer at all (the subclass arms its own).
TIMER_STYLES = ("single", "per_seq", "custom")


class WindowedSender(SenderEndpoint):
    """Common machinery for every windowed protocol sender.

    Parameters
    ----------
    timeout_period:
        The retransmission period ``T``; required before attach for
        timer-driven styles (the runner derives a provably safe value
        from the channel bounds when left ``None``).
    adaptive:
        Optional :class:`~repro.robustness.controller.AdaptiveConfig`;
        when set, timer periods come from a
        :class:`~repro.robustness.controller.RetransmissionController`
        and sustained timeout runs degrade the window
        (:meth:`_degrade`) and eventually declare the link dead.
        ``None`` keeps fixed-timer behaviour bit-for-bit.

    Class attributes subclasses may override
    ----------------------------------------
    ``timer_style``
        One of :data:`TIMER_STYLES` (default ``"per_seq"``).
    ``timer_name``
        Label for the core-built timer(s) (default ``"retx"``).
    ``attach_error``
        Message raised when attaching without a timeout period.
    """

    timer_style = "per_seq"
    timer_name = "retx"
    attach_error = "timeout_period must be set before attaching"

    def __init__(
        self,
        timeout_period: Optional[float] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__()
        self.timeout_period = timeout_period
        self.adaptive = adaptive
        self.link_dead = False
        self.flow_id: Optional[int] = None  # set by the multi-flow host
        self._retx: Optional[RetransmissionController] = None
        self._down = False  # crashed and not yet restored
        self._payloads: Dict[int, Any] = {}
        self._timer: Optional[AdaptiveTimer] = None  # "single" style
        self._timers: Optional[AdaptiveTimerBank] = None  # "per_seq" style

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _after_attach(self) -> None:
        if self.timeout_period is None:
            raise ValueError(self.attach_error)
        if self.adaptive is not None:
            self._retx = self.adaptive.build(self.timeout_period)
        self._build_timers()

    def _build_timers(self) -> None:
        """Construct the core-managed timer(s) for this ``timer_style``."""
        if self.timer_style == "single":
            self._timer = AdaptiveTimer(
                self.sim,
                self._on_single_timeout,
                period_fn=self._single_period,
                name=self.timer_name,
            )
        elif self.timer_style == "per_seq":
            self._timers = AdaptiveTimerBank(
                self.sim,
                self._on_seq_timeout,
                period_fn=self._seq_period,
                name=self.timer_name,
            )
        elif self.timer_style != "custom":
            raise ValueError(
                f"timer_style must be one of {TIMER_STYLES}, "
                f"got {self.timer_style!r}"
            )

    def _single_period(self) -> float:
        """Arming period for the single Section-II style timer."""
        if self._retx is not None:
            return self._retx.period(None)
        return self.timeout_period

    def _seq_period(self, seq: int) -> float:
        """Arming period for one per-sequence timer."""
        if self._retx is not None:
            return self._retx.period(seq)
        return self.timeout_period

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------

    @property
    def can_accept(self) -> bool:
        return not self.link_dead and not self._down and self._send_window_open()

    def _send_window_open(self) -> bool:
        """Window-occupancy part of the submit guard."""
        return self.window.can_send

    @property
    def all_acknowledged(self) -> bool:
        return self.window.all_acknowledged

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def submit(self, payload: Any) -> int:
        seq = self._take_next()  # paper action 0
        self._store_payload(seq, payload)
        self.stats.submitted += 1
        self._transmit(seq, attempt=0)
        return seq

    def _take_next(self) -> int:
        """Allocate the next sequence number."""
        return self.window.take_next()

    def _store_payload(self, seq: int, payload: Any) -> None:
        """Retain the payload until ``seq`` is acknowledged."""
        self._payloads[seq] = payload

    def _payload_for(self, seq: int) -> Any:
        """Stored payload for one (re)transmission."""
        return self._payloads.get(seq)

    def _wire_message(self, seq: int, attempt: int) -> Any:
        """Build the wire message for one (re)transmission of ``seq``."""
        return DataMessage(seq=seq, payload=self._payload_for(seq), attempt=attempt)

    def _transmit(self, seq: int, attempt: int) -> None:
        """One (re)transmission: stats, trace, send, controller, timers."""
        message = self._wire_message(seq, attempt)
        self.stats.data_sent += 1
        if attempt > 0:
            self.stats.retransmissions += 1
            self.trace.record(self.actor_name, EventKind.RESEND_DATA, seq=seq)
        else:
            self.trace.record(self.actor_name, EventKind.SEND_DATA, seq=seq)
        self.tx.send(message)
        if self._retx is not None:
            self._retx.on_send(seq, self.sim.now, retransmit=attempt > 0)
        self._arm_timers(seq, attempt)

    def _arm_timers(self, seq: int, attempt: int) -> None:
        """Re-arm retransmission timers after a transmission."""
        if self._timer is not None:
            # the single timer measures time since the *last* transmission
            self._timer.restart()
        elif self._timers is not None:
            self._timers.start(seq)

    # ------------------------------------------------------------------
    # acknowledgment bookkeeping
    # ------------------------------------------------------------------

    def _register_ack(
        self, newly_acked: Iterable[int], acked_value: int
    ) -> None:
        """Fold one informative acknowledgment into the shared state.

        Feeds the adaptive controller its RTT evidence and refreshes the
        ``acked``/``last_ack_time`` stats.  Callers remain responsible
        for payload/timer cleanup (it differs per protocol).
        """
        if self._retx is not None:
            self._retx.on_ack(newly_acked, self.sim.now)
        self.stats.acked = acked_value
        self.stats.last_ack_time = self.sim.now

    def _window_open_event(self, na: int) -> None:
        """Record the window reopening and wake the source."""
        self.trace.record(self.actor_name, EventKind.WINDOW_OPEN, seq=na)
        self._window_opened()

    # ------------------------------------------------------------------
    # timeout escalation (adaptive retransmission)
    # ------------------------------------------------------------------

    def _consult_budget(self, key: Any) -> bool:
        """Adaptive only: escalate one fired timeout through the budget.

        Returns False when the link was just declared dead, in which
        case the caller must not retransmit.
        """
        if self._retx is None:
            return True
        verdict = self._retx.on_timeout(key, now=self.sim.now)
        if verdict is RetryVerdict.LINK_DEAD:
            self._declare_link_dead(key)
            return False
        if verdict is RetryVerdict.DEGRADE:
            self._degrade()
        return True

    def _degrade(self) -> None:
        """Graceful degradation hook; default shrinks nothing."""

    def _declare_link_dead(self, key: Any = None) -> None:
        """Retry budget exhausted: stop retransmitting, surface the verdict."""
        self.link_dead = True
        detail = "link dead"
        if key is not None:
            detail = f"link dead (seq {key} at t={self.sim.now:g})"
        self.trace.record(self.actor_name, EventKind.NOTE, detail=detail)
        if self._timer is not None:
            self._timer.stop()
        if self._timers is not None:
            self._timers.stop_all()
        self._after_link_dead()

    def _after_link_dead(self) -> None:
        """Hook for subclass cleanup once the link is declared dead."""

    # ------------------------------------------------------------------
    # self-stabilization (guard/repair hooks, Dolev et al.)
    # ------------------------------------------------------------------

    def stabilize(self) -> list:
        """Run every local guard/repair rule; return what was repaired.

        Composes the window/book state repair (:meth:`_repair_state`),
        the adaptive controller's guards, protocol-specific bookkeeping
        repairs (:meth:`_stabilize_extra`), and timer re-arming for
        outstanding messages whose timers corruption left dead
        (:meth:`_rearm_after_repair`).  On consistent state every rule
        is a pure read and the method returns ``[]`` without touching
        the trace — clean runs are byte-identical whether or not anyone
        calls this.
        """
        repairs = self._repair_state()
        if self._retx is not None:
            repairs += self._retx.repair()
        repairs += self._stabilize_extra()
        repairs += self._rearm_after_repair()
        if repairs:
            self.trace.record(
                self.actor_name,
                EventKind.NOTE,
                detail="stabilize: " + "; ".join(repairs),
            )
            if self.can_accept:
                # repairs may have reopened the window without an ack
                self._window_opened()
        return repairs

    def _repair_state(self) -> list:
        """Repair the window state, witnessed by the held payloads.

        A held payload proves its number was sent and is not yet
        acknowledged (acknowledgment releases the payload), which is
        exactly the evidence :meth:`SenderWindow.repair` needs.
        """
        return self.window.repair(witness=self._payloads.keys())

    def _stabilize_extra(self) -> list:
        """Protocol-specific bookkeeping repairs; default has none."""
        return []

    def _rearm_after_repair(self) -> list:
        """Re-arm retransmission timers corruption may have silenced.

        Corrupted cursor state can leave outstanding messages with no
        running timer (e.g. everything looked acknowledged, so timers
        were stopped); without this rule the repaired sender would wait
        forever.  Arms with the *configured* period — never a possibly
        still-suspect adaptive one, since the controller repair above
        already ran its guards.  The dual rule disarms timers for
        numbers a repair promoted to acknowledged: those expiries have
        nothing to retransmit (the payload is released) and would only
        escalate the retry budget toward a spurious LINK_DEAD.
        """
        if self.link_dead or self._down:
            return []
        repairs = []
        done = self.all_acknowledged
        if self._timer is not None:
            if not done and not self._timer.running:
                self._timer.restart()
                repairs.append("re-armed retransmission timer")
            elif done and self._timer.running:
                self._timer.stop()
                repairs.append(
                    "disarmed retransmission timer (nothing outstanding)"
                )
        if self._timers is not None:
            wanted = set() if done else set(self._timer_seqs())
            for seq in sorted(wanted):
                if not self._timers.running(seq):
                    self._timers.start(seq)
                    repairs.append(f"re-armed timer for seq {seq}")
            for seq in sorted(self._timers.active_keys()):
                if seq not in wanted:
                    self._timers.stop(seq)
                    repairs.append(f"disarmed stale timer for seq {seq}")
        return repairs

    def _timer_seqs(self) -> Iterable[int]:
        """Sequence numbers that should hold a live per-seq timer."""
        return self.window.outstanding()

    # ------------------------------------------------------------------
    # timeout handlers (wired by _build_timers; override per style)
    # ------------------------------------------------------------------

    def _on_single_timeout(self) -> None:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def _on_seq_timeout(self, seq: int) -> None:  # pragma: no cover
        raise NotImplementedError


class WindowedReceiver(ReceiverEndpoint):
    """Common machinery for every windowed protocol receiver.

    Subclasses own a :class:`~repro.core.window.ReceiverWindow` (or the
    bounded book equivalent) as ``self.window`` and call the helpers
    here from their :meth:`on_message`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.flow_id: Optional[int] = None  # set by the multi-flow host

    def _note_arrival(self, seq: int) -> None:
        """Stats + trace for one arriving data message."""
        self.stats.data_received += 1
        self.trace.record(self.actor_name, EventKind.RECV_DATA, seq=seq)

    def _classify(self, outcome: Any, seq: int, expected: int) -> None:
        """Bump the duplicate / redundant / out-of-order counters."""
        if outcome.duplicate:
            self.stats.duplicates += 1
        elif outcome.redundant:
            self.stats.redundant += 1
        elif seq != expected:
            self.stats.out_of_order += 1

    def _note_buffered(self, buffered_count: int) -> None:
        """Track the reorder-buffer high-water mark."""
        self.stats.max_buffered = max(self.stats.max_buffered, buffered_count)

    def _deliver_block(self, lo: int, payloads: Iterable[Any]) -> None:
        """Release one in-order block to the application, tracing each."""
        for offset, payload in enumerate(payloads):
            seq = lo + offset
            self.trace.record(self.actor_name, EventKind.DELIVER, seq=seq)
            self._deliver(seq, payload)

    def _drain_ready(self) -> None:
        """Deliver every completed in-order block (paper actions 4+5)."""
        while self.window.ack_ready:
            lo, _hi, payloads = self.window.take_block()
            self._deliver_block(lo, payloads)

    # ------------------------------------------------------------------
    # self-stabilization (guard/repair hooks, Dolev et al.)
    # ------------------------------------------------------------------

    def stabilize(self) -> list:
        """Run every local guard/repair rule; return what was repaired.

        Same contract as :meth:`WindowedSender.stabilize`: pure reads
        and an empty result on consistent state, so clean runs never
        notice the guards.  The post-repair kick runs only when a state
        repair actually happened — a receiver with consistent state and
        a legitimately pending block (e.g. a delayed-ack flush already
        scheduled) must not be perturbed.
        """
        repairs = self._repair_state()
        if repairs:
            repairs += self._rearm_after_repair()
        if repairs:
            self.trace.record(
                self.actor_name,
                EventKind.NOTE,
                detail="stabilize: " + "; ".join(repairs),
            )
        return repairs

    def _repair_state(self) -> list:
        """Repair the receiver window state."""
        return self.window.repair()

    def _rearm_after_repair(self) -> list:
        """Protocol-specific post-repair kick; default has none."""
        return []
