"""Adaptive retransmission and fault tolerance.

The paper's timers assume a *known, fixed* timeout period derived from
bounded channel lifetimes.  Real links offer no such bound a priori:
Jain's *Divergence of Timeout Algorithms for Packet Retransmissions*
shows fixed timers diverge under load, and the self-stabilizing ARQ line
of work motivates surviving transient endpoint and channel faults.  This
package supplies the missing machinery:

* :mod:`repro.robustness.rtt` — :class:`RttEstimator`, the
  Jacobson/Karels EWMA of smoothed RTT and RTT variance, with Karn's
  rule (retransmitted messages never contribute samples) enforced by the
  controller;
* :mod:`repro.robustness.backoff` — :class:`BackoffPolicy`, exponential
  timer backoff with a cap and optional deterministic jitter;
* :mod:`repro.robustness.budget` — :class:`RetryBudget`, which converts
  consecutive unproductive timeouts into graceful degradation (shrink
  the effective window) and, past a hard limit, a ``LINK_DEAD`` verdict
  instead of retrying forever;
* :mod:`repro.robustness.controller` — :class:`AdaptiveConfig` /
  :class:`RetransmissionController`, the object protocol senders consult
  for timer periods and timeout verdicts;
* :mod:`repro.robustness.faults` — :class:`FaultPlan`, scripted fault
  injection (frame corruption, loss brownouts, endpoint crash/restart)
  for simulated transfers;
* :mod:`repro.robustness.corruption` — :class:`StateCorruption`, the
  adversarial state-corruption fault model behind the self-stabilization
  machinery (PROTOCOL.md §9): seeded mutation of live endpoint state at
  a named site, applied through a :class:`FaultPlan`.

Adaptive behavior is strictly opt-in: every protocol sender takes an
``adaptive`` knob defaulting to ``None``, under which the fixed-timeout
code paths are bit-identical to the paper's realization.
"""

from repro.robustness.backoff import BackoffPolicy
from repro.robustness.budget import RetryBudget, RetryVerdict
from repro.robustness.controller import AdaptiveConfig, RetransmissionController
from repro.robustness.corruption import StateCorruption
from repro.robustness.faults import CrashRestart, FaultPlan
from repro.robustness.rtt import RttEstimator

__all__ = [
    "AdaptiveConfig",
    "BackoffPolicy",
    "CrashRestart",
    "FaultPlan",
    "RetransmissionController",
    "RetryBudget",
    "RetryVerdict",
    "RttEstimator",
    "StateCorruption",
]
