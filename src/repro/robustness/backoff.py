"""Exponential retransmission backoff with cap and jitter.

Jain's divergence result is about *feedback*: a fixed timer retransmits
at a constant rate into an already-congested or blacked-out channel,
and the retransmissions themselves keep the channel saturated.  Backing
the timer off exponentially per consecutive failure breaks the loop; a
cap keeps the sender responsive once the channel heals; jitter (when
enabled) decorrelates competing senders.

Jitter draws come from a dedicated seeded stream so that enabling it
never perturbs channel randomness and runs stay reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """Multiplier schedule applied on top of the base RTO.

    ``factor(attempts)`` returns the multiplier for a timer that has
    already fired ``attempts`` consecutive times without progress:
    ``min(multiplier ** attempts, cap)``, optionally stretched by a
    uniform random jitter of up to ``jitter`` (a fraction, e.g. ``0.1``
    for +10%).
    """

    def __init__(
        self,
        multiplier: float = 2.0,
        cap: float = 8.0,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if cap < 1.0:
            raise ValueError(f"cap must be >= 1, got {cap}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random(0)

    def factor(self, attempts: int) -> float:
        """Backoff multiplier after ``attempts`` consecutive expiries."""
        if attempts < 0:
            raise ValueError(f"attempts must be non-negative, got {attempts}")
        base = min(self.multiplier**attempts, self.cap)
        if self.jitter:
            base *= 1.0 + self.rng.uniform(0.0, self.jitter)
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffPolicy(x{self.multiplier}, cap={self.cap}, "
            f"jitter={self.jitter})"
        )
