"""Retry budgets and graceful degradation.

A sender that retries forever converts a dead link into an infinite
retransmission loop.  :class:`RetryBudget` bounds that: it watches the
run of *consecutive* timeouts since the last acknowledgment progress and
escalates through three verdicts:

* ``RETRY`` — within budget, retransmit normally;
* ``DEGRADE`` — the run crossed a soft threshold: shrink the effective
  window (fewer messages hammering a sick channel) and keep going;
* ``LINK_DEAD`` — the run crossed the hard limit: stop retransmitting
  and surface the verdict to the application.

Any acknowledgment progress resets the run — a healthy link never
degrades.
"""

from __future__ import annotations

import enum

__all__ = ["RetryBudget", "RetryVerdict"]


class RetryVerdict(enum.Enum):
    """What a sender should do about one fired retransmission timeout."""

    RETRY = "retry"
    DEGRADE = "degrade"
    LINK_DEAD = "link_dead"


class RetryBudget:
    """Escalating verdicts over consecutive unproductive timeouts.

    Parameters
    ----------
    degrade_after:
        Every time the consecutive-timeout run grows by this many, a
        ``DEGRADE`` verdict is issued (so a long outage degrades in
        steps: at ``degrade_after``, ``2*degrade_after``, ...).
    dead_after:
        Once the run reaches this length, every further timeout yields
        ``LINK_DEAD``.
    """

    def __init__(self, degrade_after: int = 3, dead_after: int = 12) -> None:
        if degrade_after < 1:
            raise ValueError(f"degrade_after must be >= 1, got {degrade_after}")
        if dead_after < degrade_after:
            raise ValueError(
                f"dead_after {dead_after} below degrade_after {degrade_after}"
            )
        self.degrade_after = degrade_after
        self.dead_after = dead_after
        self.consecutive = 0
        self.total_timeouts = 0
        self.degrades = 0
        self.exhausted = False

    def on_timeout(self) -> RetryVerdict:
        """Record one fired timeout; return the escalation verdict."""
        self.consecutive += 1
        self.total_timeouts += 1
        if self.consecutive >= self.dead_after:
            self.exhausted = True
            return RetryVerdict.LINK_DEAD
        if self.consecutive % self.degrade_after == 0:
            self.degrades += 1
            return RetryVerdict.DEGRADE
        return RetryVerdict.RETRY

    def on_progress(self) -> None:
        """Acknowledgment progress: the link is alive, reset the run."""
        self.consecutive = 0

    def reset(self) -> None:
        """Full reset (endpoint restart): forget runs and exhaustion."""
        self.consecutive = 0
        self.exhausted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryBudget(run={self.consecutive}, "
            f"degrade_after={self.degrade_after}, dead_after={self.dead_after})"
        )
