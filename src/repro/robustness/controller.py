"""The adaptive-retransmission controller protocol senders consult.

One :class:`RetransmissionController` per sender bundles the three
mechanisms of this package — RTT estimation, exponential backoff, and
the retry budget — behind the two questions a sender actually asks:

* *how long should this (re)arm be?* — :meth:`period`, the estimator's
  RTO times the backoff factor for that timer's consecutive-expiry
  count;
* *this timer fired; now what?* — :meth:`on_timeout`, which returns a
  :class:`~repro.robustness.budget.RetryVerdict` (retry / degrade /
  link dead).

The sender reports its side of the conversation through
:meth:`on_send` (every transmission, flagging retransmissions so Karn's
rule can discard ambiguous samples) and :meth:`on_ack` (every
acknowledgment, with the newly acknowledged sequence numbers).

Senders with a single timer (the Section-II ``simple`` mode) use
``key=None`` for period/backoff bookkeeping; per-message-timer senders
key by sequence number.  RTT samples are always keyed by sequence
number.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set

from repro.robustness.backoff import BackoffPolicy
from repro.robustness.budget import RetryBudget, RetryVerdict
from repro.robustness.rtt import RttEstimator

__all__ = ["AdaptiveConfig", "RetransmissionController"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for adaptive retransmission.  Pass to a sender's ``adaptive=``.

    ``initial_rto`` / ``min_rto`` left ``None`` inherit the sender's
    (possibly runner-derived) fixed ``timeout_period`` — so inside the
    simulator the RTO floor is the *provably safe* period and adaptivity
    can only lengthen timers, preserving assertion 8.  On real links set
    explicit values.
    """

    initial_rto: Optional[float] = None  # None: sender's timeout_period
    min_rto: Optional[float] = None  # None: sender's timeout_period
    max_rto: Optional[float] = None  # None: uncapped (backoff cap still applies)
    alpha: float = 0.125  # srtt gain (Jacobson/Karels)
    beta: float = 0.25  # rttvar gain
    k: float = 4.0  # rto = srtt + k * rttvar
    backoff_multiplier: float = 2.0
    backoff_cap: float = 8.0  # max backoff factor
    jitter: float = 0.0  # up-to fraction added to each period
    jitter_seed: int = 0  # dedicated stream: never perturbs the channel
    degrade_after: int = 3  # consecutive timeouts per degradation step
    degrade_factor: float = 0.5  # window multiplier per degradation step
    dead_after: int = 12  # consecutive timeouts until LINK_DEAD

    def __post_init__(self) -> None:
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1], got {self.degrade_factor}"
            )

    def build(self, fallback_rto: Optional[float]) -> "RetransmissionController":
        """Instantiate the controller, resolving ``None`` knobs."""
        return RetransmissionController(self, fallback_rto)


class RetransmissionController:
    """Live adaptive-retransmission state for one sender."""

    def __init__(
        self, config: AdaptiveConfig, fallback_rto: Optional[float]
    ) -> None:
        initial = (
            config.initial_rto if config.initial_rto is not None else fallback_rto
        )
        if initial is None:
            raise ValueError(
                "adaptive retransmission needs an initial RTO: set "
                "AdaptiveConfig.initial_rto or the sender's timeout_period"
            )
        min_rto = config.min_rto if config.min_rto is not None else fallback_rto
        self.config = config
        self.estimator = RttEstimator(
            initial_rto=initial,
            alpha=config.alpha,
            beta=config.beta,
            k=config.k,
            min_rto=min_rto,
            max_rto=config.max_rto,
        )
        self.backoff = BackoffPolicy(
            multiplier=config.backoff_multiplier,
            cap=config.backoff_cap,
            jitter=config.jitter,
            rng=random.Random(config.jitter_seed),
        )
        self.budget = RetryBudget(
            degrade_after=config.degrade_after, dead_after=config.dead_after
        )
        self.link_dead = False
        self.dead_key: Optional[Any] = None  # timer key whose expiry killed the link
        self.dead_at: Optional[float] = None  # virtual time of that expiry
        self.degrades = 0
        self._attempts: Dict[Any, int] = {}  # timer key -> consecutive expiries
        self._sent_at: Dict[Any, float] = {}  # seq -> first-send time
        self._tainted: Set[Any] = set()  # seqs ever retransmitted (Karn)
        self._instruments = None  # see bind_instruments

    def bind_instruments(self, instruments: Optional[Any]) -> None:
        """Attach telemetry hooks (duck-typed ``ControllerInstruments``:
        ``on_rtt_sample(rtt, rto)``,
        ``on_timeout(attempts, verdict, key=, now=)``)."""
        self._instruments = instruments

    # ------------------------------------------------------------------
    # the sender's two questions
    # ------------------------------------------------------------------

    def period(self, key: Any = None) -> float:
        """Arming period for the timer identified by ``key``."""
        return self.estimator.rto * self.backoff.factor(
            self._attempts.get(key, 0)
        )

    def on_timeout(self, key: Any = None, now: Optional[float] = None) -> RetryVerdict:
        """Record one fired timeout on ``key``; escalate via the budget."""
        self._attempts[key] = self._attempts.get(key, 0) + 1
        verdict = self.budget.on_timeout()
        if verdict is RetryVerdict.LINK_DEAD:
            self.link_dead = True
            if self.dead_at is None:
                self.dead_key = key
                self.dead_at = now
        elif verdict is RetryVerdict.DEGRADE:
            self.degrades += 1
        if self._instruments is not None:
            self._instruments.on_timeout(
                self._attempts[key], verdict.value, key=key, now=now
            )
        return verdict

    # ------------------------------------------------------------------
    # the sender's reports
    # ------------------------------------------------------------------

    def on_send(self, seq: Any, now: float, retransmit: bool) -> None:
        """Note one transmission of ``seq`` at time ``now``."""
        if retransmit:
            # Karn's rule: an ack for a retransmitted message is ambiguous
            self._tainted.add(seq)
            self._sent_at.pop(seq, None)
        elif seq not in self._tainted:
            self._sent_at[seq] = now

    def on_ack(self, newly_acked: Iterable[Any], now: float) -> None:
        """Fold RTT samples from ``newly_acked`` and reset failure runs."""
        progressed = False
        for seq in newly_acked:
            progressed = True
            sent_at = self._sent_at.pop(seq, None)
            if sent_at is not None and seq not in self._tainted:
                self.estimator.sample(now - sent_at)
                if self._instruments is not None:
                    self._instruments.on_rtt_sample(
                        now - sent_at, self.estimator.rto
                    )
            self._tainted.discard(seq)
            self._attempts.pop(seq, None)
        if progressed:
            self.budget.on_progress()
            self._attempts.pop(None, None)  # single-timer senders' key

    # ------------------------------------------------------------------
    # lifecycle and reporting
    # ------------------------------------------------------------------

    def reset_volatile(self) -> None:
        """Drop everything an endpoint crash loses (all of it is volatile)."""
        self.estimator.reset()
        self.budget.reset()
        self._attempts.clear()
        self._sent_at.clear()
        self._tainted.clear()

    def repair(self) -> list:
        """Restore local consistency after arbitrary state corruption.

        The estimator's state space is self-describing enough to guard
        locally: ``srtt``/``rttvar`` must be finite, non-negative, and
        within a generous drift allowance of the initial RTO (adaptive
        RTOs grow by observed delay, never by nine orders of magnitude
        in one virtual tick).  A violated guard resets the estimator to
        its initial RTO — the cold-start state, which is safe by
        construction.  Backoff attempt counts and the retry budget's
        consecutive-timeout run are clamped to the ranges the budget's
        own escalation logic could have produced: a run that reached
        ``dead_after`` would already have declared the link dead, so a
        live controller holding one is corrupt (and one more expiry
        would spuriously kill the link).  Returns a description of each
        repair applied.
        """
        repairs = []
        est = self.estimator
        bound = 1e3 * est.initial_rto
        for name in ("srtt", "rttvar"):
            value = getattr(est, name)
            if value is not None and not (
                math.isfinite(value) and 0.0 <= value <= bound
            ):
                repairs.append(
                    f"estimator reset ({name}={value} outside [0, {bound:g}])"
                )
                est.reset()
                break
        dead_after = self.budget.dead_after
        bogus_keys = [
            key
            for key, count in self._attempts.items()
            if count < 0 or count >= dead_after
        ]
        for key in bogus_keys:
            repairs.append(
                f"attempt count for key {key!r} cleared "
                f"(was {self._attempts[key]})"
            )
            del self._attempts[key]
        if not self.link_dead and not (
            0 <= self.budget.consecutive < dead_after
        ):
            repairs.append(
                f"consecutive-timeout run reset (was {self.budget.consecutive})"
            )
            self.budget.consecutive = 0
            self.budget.exhausted = False
        return repairs

    @property
    def verdict(self) -> str:
        """Current link-health verdict: alive / degraded / dead."""
        if self.link_dead:
            return "dead"
        return "degraded" if self.degrades else "alive"

    def stats_dict(self) -> dict:
        return {
            "rto": self.estimator.rto,
            "srtt": self.estimator.srtt,
            "rttvar": self.estimator.rttvar,
            "rtt_samples": self.estimator.samples,
            "degrades": self.degrades,
            "budget_timeouts": self.budget.total_timeouts,
            "verdict": self.verdict,
            "dead_key": self.dead_key,
            "dead_at": self.dead_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetransmissionController(rto={self.estimator.rto:.4g}, "
            f"verdict={self.verdict})"
        )
