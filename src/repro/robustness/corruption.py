"""Adversarial in-memory state corruption (self-stabilization fault model).

The faults in :mod:`repro.robustness.faults` attack the *channels* and the
*availability* of endpoints; this module attacks their **state**: at a
scheduled virtual time a :class:`StateCorruption` reaches into a live
endpoint and mutates protocol bookkeeping — window cursors, acknowledgment
records, the in-flight payload store, RTT/RTO/backoff state — the fault
model of the self-stabilization literature (Dolev et al., PAPERS.md).

Corruption *sites* pick what is mutated; *severities* pick how:

``bitflip``
    One low bit of one cursor (or one membership bit) flips — a single
    upset, the classic soft-error model.
``random``
    The targeted state is re-randomized within its domain with the
    plan's dedicated seeded rng — arbitrary-but-plausible garbage.
``worst``
    A handcrafted adversarial preset: cursor inversions (``na > ns``),
    the forbidden ``ackd[na]`` bit, full volatile wipes, infinite RTT
    estimates — the states the repair rules were designed against.

Deliberate exclusions keep the model meaningful rather than merely
cruel: the sender's ``ns`` and the receiver's ``nr`` are never rewound,
and payload-store *entries* are never deleted (only their values
mutated).  All three are *authority ledgers* — ``ns`` certifies which
numbers were ever allocated, ``nr`` certifies which were ever
acknowledged, and a payload entry's existence certifies
sent-but-unacknowledged (the store releases an entry exactly at
acknowledgment, which is what makes it the repair rules' witness).
Forging a ledger — rewinding a counter, deleting an entry — manufactures
authority (reusing a live number, un-acknowledging delivered data,
"acknowledging" data that was never delivered) that **no** local repair
can detect: the corrupted state is reachable-looking and every
observable matches it.  This is the same storage/stabilization trade-off
the bounded book exhibits (see ``PROTOCOL.md`` §9); the paper's own
crash model makes the identical choice by declaring ``nr`` durable.
Payload *values* stay fair game — their corruption is honest data
damage, detectable only by an end-to-end integrity check, and surfaces
as the ``degraded`` verdict.

Every mutator returns human-readable descriptions of what it changed, so
the :class:`~repro.verify.runtime.StabilizationMonitor` and the decision
trace can tell the story of one corruption and its recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List

__all__ = ["StateCorruption", "apply_corruption", "SITES", "SEVERITIES"]

#: what a corruption mutates
SITES = (
    "sender.window",  # acknowledgment cursor na (and, via worst, inversion)
    "sender.acks",  # ackd record / hi_acked bookkeeping
    "sender.payloads",  # in-flight payload store values
    "sender.rtt",  # RetransmissionController estimator/backoff/budget
    "receiver.window",  # vr cursor, reorder buffer, volatile payloads
)

#: how hard a corruption hits
SEVERITIES = ("bitflip", "random", "worst")


@dataclass(frozen=True)
class StateCorruption:
    """One scheduled adversarial mutation of live endpoint state."""

    at: float
    site: str = "sender.window"
    severity: str = "bitflip"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"corruption time must be non-negative, got {self.at}")
        if self.site not in SITES:
            raise ValueError(f"site must be one of {SITES}, got {self.site!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def endpoint(self) -> str:
        """Which endpoint this corruption targets: ``sender``/``receiver``."""
        return self.site.split(".", 1)[0]

    def __str__(self) -> str:
        return f"{self.site}/{self.severity}@{self.at:g}"


def apply_corruption(
    target: Any, spec: StateCorruption, rng: random.Random
) -> List[str]:
    """Mutate ``target``'s state per ``spec``; describe every mutation.

    ``target`` is the live endpoint object (duck-typed: anything exposing
    ``window`` or ``book`` state works, which covers all five protocols).
    Returns the list of mutation descriptions (possibly noting a no-op,
    e.g. corrupting RTT state on a sender with no adaptive controller).
    """
    handler = {
        "sender.window": _corrupt_sender_window,
        "sender.acks": _corrupt_sender_acks,
        "sender.payloads": _corrupt_payload_store,
        "sender.rtt": _corrupt_rtt_state,
        "receiver.window": _corrupt_receiver_window,
    }[spec.site]
    return handler(target, spec.severity, rng)


def _state_of(target: Any) -> Any:
    state = getattr(target, "window", None)
    if state is None:
        state = getattr(target, "book", None)
    if state is None:
        raise TypeError(f"{target!r} exposes neither window nor book state")
    return state


def _is_bounded(state: Any) -> bool:
    return hasattr(state, "domain")


# ----------------------------------------------------------------------
# site: sender.window — the acknowledgment cursor
# ----------------------------------------------------------------------

def _corrupt_sender_window(target: Any, severity: str, rng: random.Random):
    state = _state_of(target)
    before = state.na
    if _is_bounded(state):
        n = state.domain.n
        if severity == "bitflip":
            state.na ^= 1
        elif severity == "random":
            state.na = rng.randrange(n)
        else:  # worst: maximal illegal span (na "ahead" of ns mod n)
            state.na = state.domain.add(state.ns, 1)
    else:
        if severity == "bitflip":
            state.na ^= 1
        elif severity == "random":
            state.na = rng.randint(0, state.ns)
        else:  # worst: cursor inversion past the whole window
            state.na = state.ns + state.w
    return [f"window cursor na {before} -> {state.na} ({severity})"]


# ----------------------------------------------------------------------
# site: sender.acks — the ackd record
# ----------------------------------------------------------------------

def _corrupt_sender_acks(target: Any, severity: str, rng: random.Random):
    state = _state_of(target)
    mutations: List[str] = []
    if _is_bounded(state):
        cells = state._ackd
        if severity == "bitflip":
            cell = rng.randrange(state.w)
            cells[cell] = not cells[cell]
            mutations.append(f"ackd cell {cell} flipped to {cells[cell]}")
        elif severity == "random":
            for cell in range(state.w):
                if rng.random() < 0.5:
                    cells[cell] = not cells[cell]
                    mutations.append(f"ackd cell {cell} flipped to {cells[cell]}")
        else:  # worst: every cell claims "acknowledged", including na's
            for cell in range(state.w):
                cells[cell] = True
            mutations.append("all ackd cells set (including na's)")
        return mutations or ["ackd ring untouched by random draw"]

    ackd = state._ackd
    if severity == "bitflip":
        if ackd:
            victim = rng.choice(sorted(ackd))
            ackd.discard(victim)
            mutations.append(f"ackd bit for {victim} cleared")
        else:
            ackd.add(state.na)
            mutations.append(f"forbidden ackd[na] bit set (na={state.na})")
    elif severity == "random":
        for seq in range(state.na, state.ns):
            if rng.random() < 0.5:
                if seq in ackd:
                    ackd.discard(seq)
                    mutations.append(f"ackd bit for {seq} cleared")
                else:
                    ackd.add(seq)
                    mutations.append(f"ackd bit for {seq} set")
    else:  # worst: everything in-window "acknowledged" plus garbage beyond
        added = set(range(state.na, state.ns)) | {state.ns + state.w}
        ackd |= added
        mutations.append(
            f"ackd record overwritten with {sorted(added)} (includes na "
            "and a never-sent number)"
        )
        if hasattr(target, "hi_acked"):
            target.hi_acked = state.ns + state.w
            mutations.append(f"hi_acked jumped to {target.hi_acked}")
    return mutations or ["ackd record untouched by random draw"]


# ----------------------------------------------------------------------
# site: sender.payloads — the in-flight payload store
# ----------------------------------------------------------------------

def _corrupt_payload_store(target: Any, severity: str, rng: random.Random):
    store = target._payloads
    mutations: List[str] = []
    if isinstance(store, dict):
        held = sorted(store)
        if not held:
            return ["payload store empty; nothing to corrupt"]
        if severity == "bitflip":
            seq = rng.choice(held)
            old = store[seq]
            store[seq] = (old ^ 1) if isinstance(old, int) else None
            mutations.append(f"payload for {seq} corrupted ({old!r} -> {store[seq]!r})")
        elif severity == "random":
            seq = rng.choice(held)
            old = store[seq]
            store[seq] = rng.getrandbits(32)
            mutations.append(
                f"payload for {seq} randomized ({old!r} -> {store[seq]!r})"
            )
        else:  # worst: every held payload value destroyed
            for seq in held:
                store[seq] = None
            mutations.append(f"all {len(held)} held payload values wiped to None")
        return mutations
    # bounded ring: an empty (None) cell *is* the released-at-ack ledger
    # entry, so even "worst" writes garbage values rather than emptying
    # cells — see the ledger exclusion in the module docstring
    held = [i for i, p in enumerate(store) if p is not None]
    if not held:
        return ["payload ring empty; nothing to corrupt"]
    if severity == "bitflip":
        cell = rng.choice(held)
        old = store[cell]
        store[cell] = (old ^ 1) if isinstance(old, int) else -1
        mutations.append(f"payload cell {cell} corrupted ({old!r} -> {store[cell]!r})")
    elif severity == "random":
        cell = rng.choice(held)
        old = store[cell]
        store[cell] = rng.getrandbits(32)
        mutations.append(
            f"payload cell {cell} randomized ({old!r} -> {store[cell]!r})"
        )
    else:
        for cell in held:
            store[cell] = -1
        mutations.append(f"all {len(held)} payload cell values destroyed (-1)")
    return mutations


# ----------------------------------------------------------------------
# site: sender.rtt — the adaptive-retransmission controller
# ----------------------------------------------------------------------

def _corrupt_rtt_state(target: Any, severity: str, rng: random.Random):
    controller = getattr(target, "_retx", None)
    if controller is None:
        return ["no adaptive controller; rtt corruption is a no-op"]
    est = controller.estimator
    mutations: List[str] = []
    if severity == "bitflip":
        if est.srtt is None:
            est.srtt, est.rttvar = -1.0, -0.5
            mutations.append("srtt/rttvar forced negative from cold start")
        else:
            est.srtt = -est.srtt
            mutations.append(f"srtt sign flipped to {est.srtt}")
    elif severity == "random":
        est.srtt = rng.uniform(1e3, 1e9)
        est.rttvar = rng.uniform(1e3, 1e9)
        mutations.append(f"srtt/rttvar randomized to {est.srtt:.3g}/{est.rttvar:.3g}")
        key = rng.choice([None, 0])
        controller._attempts[key] = rng.randint(50, 10**6)
        mutations.append(
            f"backoff attempt count for key {key!r} jumped to "
            f"{controller._attempts[key]}"
        )
    else:  # worst
        est.srtt = float("inf")
        est.rttvar = -1.0
        controller._attempts[None] = 10**9
        controller.budget.consecutive = 10**9
        mutations.append(
            "srtt=inf, rttvar=-1, attempts and consecutive-timeout run "
            "jumped to 1e9 (one more timeout would spuriously kill the link)"
        )
    return mutations


# ----------------------------------------------------------------------
# site: receiver.window — vr cursor, reorder buffer, volatile payloads
# ----------------------------------------------------------------------

def _corrupt_receiver_window(target: Any, severity: str, rng: random.Random):
    state = _state_of(target)
    mutations: List[str] = []
    before = state.vr
    if _is_bounded(state):
        n = state.domain.n
        if severity == "bitflip":
            state.vr ^= 1
        elif severity == "random":
            state.vr = rng.randrange(n)
            cell = rng.randrange(state.w)
            state._rcvd[cell] = not state._rcvd[cell]
            mutations.append(f"rcvd cell {cell} flipped to {state._rcvd[cell]}")
        else:  # worst: claim a full never-received window, wipe the rings
            state.vr = state.domain.add(state.nr, state.w)
            state._rcvd = [False] * state.w
            state._payloads = [None] * state.w
            mutations.append("reorder/payload rings wiped")
        mutations.insert(0, f"window cursor vr {before} -> {state.vr} ({severity})")
        return mutations
    if severity == "bitflip":
        state.vr ^= 1
    elif severity == "random":
        state.vr = rng.randint(0, state.vr + state.w)
        if state._rcvd and rng.random() < 0.5:
            victim = rng.choice(sorted(state._rcvd))
            state._rcvd.discard(victim)
            mutations.append(f"buffered receipt {victim} forgotten")
    else:  # worst: claim a full never-received window, wipe all volatile state
        state.vr = state.nr + state.w
        state._rcvd.clear()
        state._payloads.clear()
        mutations.append("reorder buffer and payload buffer wiped")
    mutations.insert(0, f"window cursor vr {before} -> {state.vr} ({severity})")
    return mutations
