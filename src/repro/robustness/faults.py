"""Scripted fault injection for simulated transfers.

A :class:`FaultPlan` bundles every fault a robustness experiment throws
at one transfer, applied on top of whatever impairments the links
already carry:

* **frame corruption** — per-direction
  :class:`~repro.channel.impairments.FrameCorruption` models; corrupted
  frames are discarded on arrival (the checksum-fail path), counted in
  :class:`FaultStats`, and never reach the endpoint;
* **brownouts** — per-direction
  :class:`~repro.channel.impairments.BrownoutLoss` ramps, composed over
  the channel's existing loss model at install time;
* **endpoint crash/restart** — scheduled :class:`CrashRestart` events.
  A crashed endpoint loses its volatile state (timers, RTT estimates,
  parked-retransmission bookkeeping, the receiver's reorder buffer) and
  resumes from its durable snapshot (window counters, payload store);
  messages delivered during the outage are dropped, as they would be at
  a dead host.
* **state corruption** — scheduled
  :class:`~repro.robustness.corruption.StateCorruption` events that
  adversarially mutate live endpoint state (the self-stabilization
  fault model; see that module).  Once any corruption has fired, the
  plan turns into a convergence harness: each endpoint's
  ``stabilize()`` guard/repair hooks run before every subsequent
  delivery into it (Dolev-style guarded actions), and a periodic
  watchdog sweeps both endpoints so a transfer silenced by corruption
  (no messages flowing at all) still recovers.  The watchdog ticks on
  the sender's *configured* timeout period — never an adaptive one,
  which may itself be corrupt — and retires after two consecutive
  clean sweeps with no repairs.

The plan owns a dedicated seeded rng for corruption draws, so injecting
faults never perturbs the channels' own random streams — the underlying
loss/delay trace stays identical with and without corruption.  State
corruption draws come from yet another stream, so adding a
``StateCorruption`` to a plan leaves its frame-corruption draws (and
therefore the whole wire schedule up to the corruption instant)
untouched.

``run_transfer(..., fault_plan=plan)`` installs the plan after wiring;
experiments read the injection counters back from ``plan.stats``.  A
plan instance wires into exactly one transfer: :meth:`FaultPlan.install`
raises on re-install (re-wrapping the loss models would double-wrap
them and desynchronize their rng streams) and :meth:`FaultPlan.uninstall`
restores the channels' original impairments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.channel.impairments import BrownoutLoss, FrameCorruption
from repro.robustness.corruption import StateCorruption, apply_corruption

__all__ = ["CrashRestart", "FaultPlan", "FaultStats"]


@dataclass(frozen=True)
class CrashRestart:
    """One scheduled endpoint crash.

    The endpoint goes down at ``at``, stays down for ``outage``, then
    restarts from its durable snapshot.  ``endpoint`` is ``"sender"`` or
    ``"receiver"``; the endpoint object must implement ``crash()`` and
    ``restore()`` (the block-ack endpoints do).
    """

    at: float
    outage: float = 0.0
    endpoint: str = "sender"

    def __post_init__(self) -> None:
        if self.at < 0 or self.outage < 0:
            raise ValueError("crash time and outage must be non-negative")
        if self.endpoint not in ("sender", "receiver"):
            raise ValueError(
                f"endpoint must be 'sender' or 'receiver', got {self.endpoint!r}"
            )


@dataclass
class FaultStats:
    """What the plan actually injected, for reporting."""

    corrupt_forward: int = 0  # frames corrupted on the data channel
    corrupt_reverse: int = 0  # frames corrupted on the ack channel
    crashes: int = 0
    restarts: int = 0
    dropped_while_down: int = 0  # deliveries into a crashed endpoint
    state_corruptions: int = 0  # StateCorruption events applied
    repairs: int = 0  # individual guard/repair rule firings

    def as_dict(self) -> dict:
        return {
            "corrupt_forward": self.corrupt_forward,
            "corrupt_reverse": self.corrupt_reverse,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "dropped_while_down": self.dropped_while_down,
            "state_corruptions": self.state_corruptions,
            "repairs": self.repairs,
        }


class FaultPlan:
    """A scripted set of faults to inject into one transfer."""

    def __init__(
        self,
        forward_corruption: Optional[FrameCorruption] = None,
        reverse_corruption: Optional[FrameCorruption] = None,
        forward_brownout: Optional[Sequence] = None,
        reverse_brownout: Optional[Sequence] = None,
        crashes: Sequence[CrashRestart] = (),
        corruptions: Sequence[StateCorruption] = (),
        seed: int = 0,
    ) -> None:
        self.forward_corruption = forward_corruption
        self.reverse_corruption = reverse_corruption
        self.forward_brownout = forward_brownout
        self.reverse_brownout = reverse_brownout
        self.crashes = tuple(crashes)
        self.corruptions = tuple(sorted(corruptions, key=lambda c: c.at))
        self.seed = seed
        self.stats = FaultStats()
        self.monitor: Optional[Any] = None  # StabilizationMonitor, if any
        # optional ``observer(kind, endpoint, detail)`` called at each
        # fault boundary with kind in "crash"/"restart"/"corrupt"/"repair"
        # (the causal flight recorder hooks in here; it also uses the
        # callback to flush a streaming dump so a run killed mid-outage
        # still leaves complete JSONL lines on disk)
        self.observer: Optional[Callable[[str, str, Any], None]] = None
        self._rng = random.Random(seed)
        # dedicated stream: adding StateCorruptions must not shift the
        # frame-corruption draws above (Weyl offset keeps it distinct)
        self._corrupt_rng = random.Random((seed + 1) * 0x9E3779B97F4A7C15)
        self._down = {"sender": False, "receiver": False}
        self._installed = False
        self._saved_loss: Optional[tuple] = None
        self._channels: Optional[tuple] = None
        self._endpoints: dict = {}
        self._sim = None
        self._corrupted = False  # any StateCorruption fired yet?
        self._watchdog_period: Optional[float] = None
        self._watchdog_armed = False
        self._clean_sweeps = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, sim, forward, reverse, sender, receiver) -> None:
        """Wire the plan into an already-connected transfer.

        Must run *after* the channels are connected to the endpoints:
        the corruption/outage interceptors re-connect each channel
        through a wrapper around the endpoint's delivery callback.

        A plan wires into exactly one transfer.  Re-installing would
        wrap the channels' loss models a second time — the nested
        brownouts then consult the channel rng twice per send and every
        subsequent draw in the run diverges — so it raises instead;
        call :meth:`uninstall` first to reuse the channels.
        """
        if self._installed:
            raise RuntimeError(
                "FaultPlan is already installed; call uninstall() first "
                "(re-installing would double-wrap the loss models and "
                "desynchronize their rng streams)"
            )
        self._installed = True
        self._sim = sim
        self._channels = (forward, reverse)
        self._saved_loss = (forward.loss, reverse.loss)
        self._endpoints = {"sender": sender, "receiver": receiver}
        if self.forward_brownout is not None:
            forward.loss = BrownoutLoss(self.forward_brownout, base=forward.loss)
        if self.reverse_brownout is not None:
            reverse.loss = BrownoutLoss(self.reverse_brownout, base=reverse.loss)
        forward.connect(
            self._intercept(receiver.on_message, "receiver", "forward")
        )
        reverse.connect(self._intercept(sender.on_message, "sender", "reverse"))
        for crash in self.crashes:
            endpoint = sender if crash.endpoint == "sender" else receiver
            sim.schedule_at(crash.at, self._crash, crash.endpoint, endpoint)
            sim.schedule_at(
                crash.at + crash.outage, self._restart, crash.endpoint, endpoint
            )
        if self.corruptions:
            # the watchdog sweeps on the configured (provably safe)
            # period, never an adaptive one — the estimate may be the
            # very state that was corrupted
            self._watchdog_period = getattr(
                sender, "timeout_period", None
            ) or 1.0
            for spec in self.corruptions:
                sim.schedule_at(spec.at, self._corrupt, spec)

    def uninstall(self) -> None:
        """Restore the channels' original impairment state.

        Leaves any interceptors connected (they are harmless pass-
        throughs once the plan is inert) but puts back the pre-install
        loss models, so a subsequent ``Channel.reset`` replays the
        original rng stream deterministically — e.g. a crash/restart
        cycle scheduled during an in-flight brownout must not leave the
        wrapped model installed for the next run over the same channel.
        """
        if not self._installed:
            return
        forward, reverse = self._channels
        forward.loss, reverse.loss = self._saved_loss
        self._installed = False

    def _intercept(
        self, deliver: Callable[[Any], None], endpoint_name: str, direction: str
    ) -> Callable[[Any], None]:
        corruption = (
            self.forward_corruption
            if direction == "forward"
            else self.reverse_corruption
        )

        def intercepted(message: Any) -> None:
            if corruption is not None and corruption.corrupts(self._rng):
                if direction == "forward":
                    self.stats.corrupt_forward += 1
                else:
                    self.stats.corrupt_reverse += 1
                return  # checksum failure: the frame never decodes
            if self._down[endpoint_name]:
                self.stats.dropped_while_down += 1
                return  # nobody home
            if self._corrupted:
                # guarded actions: repair local state before acting on it
                self._stabilize(endpoint_name)
            deliver(message)

        return intercepted

    # ------------------------------------------------------------------
    # crash/restart events
    # ------------------------------------------------------------------

    def _crash(self, name: str, endpoint: Any) -> None:
        self._down[name] = True
        self.stats.crashes += 1
        endpoint.crash()
        if self.observer is not None:
            self.observer("crash", name, None)

    def _restart(self, name: str, endpoint: Any) -> None:
        self._down[name] = False
        self.stats.restarts += 1
        endpoint.restore()
        if self.observer is not None:
            self.observer("restart", name, None)

    # ------------------------------------------------------------------
    # state corruption and the convergence watchdog
    # ------------------------------------------------------------------

    def _corrupt(self, spec: StateCorruption) -> None:
        target = self._endpoints[spec.endpoint]
        mutations = apply_corruption(target, spec, self._corrupt_rng)
        self.stats.state_corruptions += 1
        self._corrupted = True
        self._clean_sweeps = 0
        if self.monitor is not None:
            self.monitor.note_corruption(self._sim.now, spec, mutations)
        if self.observer is not None:
            self.observer(
                "corrupt", spec.endpoint, f"site={spec.site} n={len(mutations)}"
            )
        if not self._watchdog_armed:
            self._watchdog_armed = True
            self._sim.schedule_at(
                self._sim.now + self._watchdog_period, self._watchdog_tick
            )

    def _stabilize(self, endpoint_name: str) -> list:
        endpoint = self._endpoints[endpoint_name]
        stabilize = getattr(endpoint, "stabilize", None)
        if stabilize is None:
            return []
        repairs = stabilize()
        if repairs:
            self.stats.repairs += len(repairs)
            if self.monitor is not None:
                self.monitor.note_repairs(
                    self._sim.now, endpoint_name, repairs
                )
            if self.observer is not None:
                self.observer("repair", endpoint_name, "; ".join(repairs))
        return repairs

    def _watchdog_tick(self) -> None:
        """Periodic full sweep: repair both endpoints even when no
        messages flow (a corruption that silences the transfer leaves
        deliveries — and therefore the guarded actions — never firing).
        Retires after two consecutive sweeps with nothing to repair."""
        repaired = False
        for name in ("sender", "receiver"):
            if not self._down[name] and self._stabilize(name):
                repaired = True
        self._clean_sweeps = 0 if repaired else self._clean_sweeps + 1
        if self._clean_sweeps >= 2:
            self._watchdog_armed = False
            return
        self._sim.schedule_at(
            self._sim.now + self._watchdog_period, self._watchdog_tick
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(corrupt_fwd={self.forward_corruption!r}, "
            f"corrupt_rev={self.reverse_corruption!r}, "
            f"crashes={len(self.crashes)})"
        )
