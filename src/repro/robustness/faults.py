"""Scripted fault injection for simulated transfers.

A :class:`FaultPlan` bundles every fault a robustness experiment throws
at one transfer, applied on top of whatever impairments the links
already carry:

* **frame corruption** — per-direction
  :class:`~repro.channel.impairments.FrameCorruption` models; corrupted
  frames are discarded on arrival (the checksum-fail path), counted in
  :class:`FaultStats`, and never reach the endpoint;
* **brownouts** — per-direction
  :class:`~repro.channel.impairments.BrownoutLoss` ramps, composed over
  the channel's existing loss model at install time;
* **endpoint crash/restart** — scheduled :class:`CrashRestart` events.
  A crashed endpoint loses its volatile state (timers, RTT estimates,
  parked-retransmission bookkeeping, the receiver's reorder buffer) and
  resumes from its durable snapshot (window counters, payload store);
  messages delivered during the outage are dropped, as they would be at
  a dead host.

The plan owns a dedicated seeded rng for corruption draws, so injecting
faults never perturbs the channels' own random streams — the underlying
loss/delay trace stays identical with and without corruption.

``run_transfer(..., fault_plan=plan)`` installs the plan after wiring;
experiments read the injection counters back from ``plan.stats``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.channel.impairments import BrownoutLoss, FrameCorruption

__all__ = ["CrashRestart", "FaultPlan", "FaultStats"]


@dataclass(frozen=True)
class CrashRestart:
    """One scheduled endpoint crash.

    The endpoint goes down at ``at``, stays down for ``outage``, then
    restarts from its durable snapshot.  ``endpoint`` is ``"sender"`` or
    ``"receiver"``; the endpoint object must implement ``crash()`` and
    ``restore()`` (the block-ack endpoints do).
    """

    at: float
    outage: float = 0.0
    endpoint: str = "sender"

    def __post_init__(self) -> None:
        if self.at < 0 or self.outage < 0:
            raise ValueError("crash time and outage must be non-negative")
        if self.endpoint not in ("sender", "receiver"):
            raise ValueError(
                f"endpoint must be 'sender' or 'receiver', got {self.endpoint!r}"
            )


@dataclass
class FaultStats:
    """What the plan actually injected, for reporting."""

    corrupt_forward: int = 0  # frames corrupted on the data channel
    corrupt_reverse: int = 0  # frames corrupted on the ack channel
    crashes: int = 0
    restarts: int = 0
    dropped_while_down: int = 0  # deliveries into a crashed endpoint

    def as_dict(self) -> dict:
        return {
            "corrupt_forward": self.corrupt_forward,
            "corrupt_reverse": self.corrupt_reverse,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "dropped_while_down": self.dropped_while_down,
        }


class FaultPlan:
    """A scripted set of faults to inject into one transfer."""

    def __init__(
        self,
        forward_corruption: Optional[FrameCorruption] = None,
        reverse_corruption: Optional[FrameCorruption] = None,
        forward_brownout: Optional[Sequence] = None,
        reverse_brownout: Optional[Sequence] = None,
        crashes: Sequence[CrashRestart] = (),
        seed: int = 0,
    ) -> None:
        self.forward_corruption = forward_corruption
        self.reverse_corruption = reverse_corruption
        self.forward_brownout = forward_brownout
        self.reverse_brownout = reverse_brownout
        self.crashes = tuple(crashes)
        self.seed = seed
        self.stats = FaultStats()
        self._rng = random.Random(seed)
        self._down = {"sender": False, "receiver": False}

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, sim, forward, reverse, sender, receiver) -> None:
        """Wire the plan into an already-connected transfer.

        Must run *after* the channels are connected to the endpoints:
        the corruption/outage interceptors re-connect each channel
        through a wrapper around the endpoint's delivery callback.
        """
        if self.forward_brownout is not None:
            forward.loss = BrownoutLoss(self.forward_brownout, base=forward.loss)
        if self.reverse_brownout is not None:
            reverse.loss = BrownoutLoss(self.reverse_brownout, base=reverse.loss)
        forward.connect(
            self._intercept(receiver.on_message, "receiver", "forward")
        )
        reverse.connect(self._intercept(sender.on_message, "sender", "reverse"))
        for crash in self.crashes:
            endpoint = sender if crash.endpoint == "sender" else receiver
            sim.schedule_at(crash.at, self._crash, crash.endpoint, endpoint)
            sim.schedule_at(
                crash.at + crash.outage, self._restart, crash.endpoint, endpoint
            )

    def _intercept(
        self, deliver: Callable[[Any], None], endpoint_name: str, direction: str
    ) -> Callable[[Any], None]:
        corruption = (
            self.forward_corruption
            if direction == "forward"
            else self.reverse_corruption
        )

        def intercepted(message: Any) -> None:
            if corruption is not None and corruption.corrupts(self._rng):
                if direction == "forward":
                    self.stats.corrupt_forward += 1
                else:
                    self.stats.corrupt_reverse += 1
                return  # checksum failure: the frame never decodes
            if self._down[endpoint_name]:
                self.stats.dropped_while_down += 1
                return  # nobody home
            deliver(message)

        return intercepted

    # ------------------------------------------------------------------
    # crash/restart events
    # ------------------------------------------------------------------

    def _crash(self, name: str, endpoint: Any) -> None:
        self._down[name] = True
        self.stats.crashes += 1
        endpoint.crash()

    def _restart(self, name: str, endpoint: Any) -> None:
        self._down[name] = False
        self.stats.restarts += 1
        endpoint.restore()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(corrupt_fwd={self.forward_corruption!r}, "
            f"corrupt_rev={self.reverse_corruption!r}, "
            f"crashes={len(self.crashes)})"
        )
