"""Round-trip-time estimation (Jacobson/Karels EWMA).

The retransmission timeout (RTO) is derived from two exponentially
weighted moving averages maintained per connection:

* ``srtt`` — the smoothed round-trip time,
  ``srtt += alpha * (sample - srtt)``;
* ``rttvar`` — the smoothed mean deviation,
  ``rttvar += beta * (|sample - srtt| - rttvar)``;

with ``rto = srtt + k * rttvar`` clamped to ``[min_rto, max_rto]``.
The classic constants are ``alpha = 1/8``, ``beta = 1/4``, ``k = 4``.

Karn's rule — samples from retransmitted messages are ambiguous (the
acknowledgment may answer either copy) and must be discarded — is the
*caller's* obligation: :class:`~repro.robustness.controller.\
RetransmissionController` tracks which sequence numbers were ever
retransmitted and never feeds their samples here.

In simulated transfers the floor ``min_rto`` defaults to the provably
safe fixed period (see ``safe_timeout_period``), so adaptivity can only
*lengthen* timers — backoff and degradation — and never violates the
paper's one-copy-in-transit requirement (assertion 8).  On real links,
where no safe bound exists, set an explicit floor.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RttEstimator"]


class RttEstimator:
    """Jacobson/Karels smoothed RTT and variance, yielding an RTO."""

    def __init__(
        self,
        initial_rto: float,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
        min_rto: Optional[float] = None,
        max_rto: Optional[float] = None,
    ) -> None:
        if initial_rto <= 0:
            raise ValueError(f"initial_rto must be positive, got {initial_rto}")
        if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
            raise ValueError(f"alpha/beta must be in (0, 1), got {alpha}, {beta}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if (
            min_rto is not None
            and max_rto is not None
            and min_rto > max_rto
        ):
            raise ValueError(f"min_rto {min_rto} exceeds max_rto {max_rto}")
        self.initial_rto = initial_rto
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.samples = 0

    def sample(self, rtt: float) -> None:
        """Fold one (unambiguous) round-trip sample into the estimate."""
        if rtt < 0:
            raise ValueError(f"rtt sample must be non-negative, got {rtt}")
        if self.srtt is None:
            # first sample: srtt = s, rttvar = s/2 (RFC 6298 initialization)
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar += self.beta * (abs(self.srtt - rtt) - self.rttvar)
            self.srtt += self.alpha * (rtt - self.srtt)
        self.samples += 1

    @property
    def rto(self) -> float:
        """Current retransmission timeout, clamped to the configured band."""
        if self.srtt is None:
            value = self.initial_rto
        else:
            value = self.srtt + self.k * self.rttvar
        if self.min_rto is not None:
            value = max(value, self.min_rto)
        if self.max_rto is not None:
            value = min(value, self.max_rto)
        return value

    def reset(self) -> None:
        """Forget all samples (volatile state lost on endpoint restart)."""
        self.srtt = None
        self.rttvar = None
        self.samples = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RttEstimator(srtt={self.srtt}, rttvar={self.rttvar}, "
            f"rto={self.rto:.4g}, samples={self.samples})"
        )
