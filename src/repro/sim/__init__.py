"""Discrete-event simulation engine: virtual clock, timers, RNG streams."""

from repro.sim.engine import Event, ScheduleInPastError, SimulationError, Simulator
from repro.sim.randomness import RandomStreams, stream_seed
from repro.sim.timers import Timer, TimerBank

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "ScheduleInPastError",
    "Timer",
    "TimerBank",
    "RandomStreams",
    "stream_seed",
]
