"""Discrete-event simulation engine.

The engine is a classic event-list simulator: a priority queue of
:class:`Event` objects ordered by virtual time, drained by
:class:`Simulator.run`.  All protocol machinery in this package (channels,
timers, senders, receivers) is written against this engine.

Design notes
------------

* Virtual time is a ``float`` in abstract "time units".  Experiments
  typically interpret one unit as one mean one-way channel delay, but the
  engine itself attaches no meaning to the unit.
* Ties in event time are broken by insertion order, which makes executions
  deterministic given a seeded random number generator.  Determinism is
  load-bearing: the trace-equivalence experiment (E7) replays two protocol
  variants under identical schedules and asserts identical behaviour.
* Events may be cancelled in O(1) by marking; the queue lazily discards
  cancelled entries when they surface.  This is the standard "lazy
  deletion" idiom for binary-heap event lists.
* The heap holds ``(time, seq, event)`` tuples rather than bare events, so
  every sift comparison during push/pop is a C-level tuple comparison
  instead of a Python-level ``Event.__lt__`` call.  The tie-break order is
  identical to comparing events directly; only the cost changes.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError", "ScheduleInPastError"]


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled with a negative delay."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` and should not be
    constructed directly.  An event can be cancelled with :meth:`cancel`;
    cancelled events are silently skipped when their time comes.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        # heapq requires a total order; break time ties by insertion order
        # so that executions are reproducible.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6g}, {name}, {state})"


class Simulator:
    """An event-driven virtual-time simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=100.0)

    Callbacks run with the clock set to their scheduled time and may
    schedule further events.  The simulator is single-threaded and
    re-entrant scheduling from inside callbacks is the normal mode of
    operation.
    """

    def __init__(self) -> None:
        # entries are (time, seq, Event); see the module design notes
        self._queue: list[tuple[float, int, Event]] = []
        self._now: float = 0.0
        self._counter = itertools.count()
        self._events_processed = 0
        self._running = False
        self._instruments = None  # see set_instruments

    # ------------------------------------------------------------------
    # clock and introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(queue length); intended for tests and debugging, not hot paths.
        """
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._discard_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0][0]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which can be cancelled.  A zero delay is
        allowed and runs after all events already scheduled for the current
        instant.
        """
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay} time units in the past"
            )
        time = self._now + delay
        seq = next(self._counter)
        event = Event(time, seq, callback, args)
        heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def set_instruments(self, instruments: Optional[Any]) -> None:
        """Install (or with None, remove) engine telemetry hooks.

        ``instruments`` duck-types :class:`repro.obs.session.SimInstruments`:
        ``on_schedule(queue_len)``, ``on_fire(queue_len)``,
        ``on_cancel_discard()``.  The uninstrumented engine is untouched
        by this feature: ``schedule`` is swapped for its instrumented
        twin as an *instance* attribute, and the drain loops select an
        instrumented body once per call — with no instruments installed,
        every hot path is byte-for-byte the code above.
        """
        self._instruments = instruments
        if instruments is None:
            self.__dict__.pop("schedule", None)
        else:
            self.__dict__["schedule"] = self._schedule_instrumented

    def _schedule_instrumented(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """:meth:`schedule` plus the on_schedule hook (same semantics)."""
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay} time units in the past"
            )
        time = self._now + delay
        seq = next(self._counter)
        event = Event(time, seq, callback, args)
        heappush(self._queue, (time, seq, event))
        self._instruments.on_schedule(len(self._queue))
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event ran, False if the queue was empty.
        """
        queue = self._queue
        instruments = self._instruments
        while queue and queue[0][2].cancelled:
            heappop(queue)
            if instruments is not None:
                instruments.on_cancel_discard()
        if not queue:
            return False
        time, _, event = heappop(queue)
        self._now = time
        self._events_processed += 1
        if instruments is not None:
            instruments.on_fire(len(queue))
        event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this
            time.  The clock is advanced to ``until`` on exit so that
            subsequent relative scheduling behaves intuitively.
        max_events:
            Stop after executing this many events (a runaway guard).
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        queue = self._queue
        pop = heappop
        instruments = self._instruments
        executed = 0
        try:
            if instruments is None:
                while queue:
                    head = queue[0]
                    if head[2].cancelled:
                        pop(queue)
                        continue
                    if until is not None and head[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(queue)
                    event = head[2]
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    event.callback(*event.args)
            else:
                # instrumented twin of the loop above (kept separate so the
                # null path pays nothing for observability)
                while queue:
                    head = queue[0]
                    if head[2].cancelled:
                        pop(queue)
                        instruments.on_cancel_discard()
                        continue
                    if until is not None and head[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(queue)
                    event = head[2]
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    instruments.on_fire(len(queue))
                    event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_while(
        self,
        keep_going: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain pending events for as long as ``keep_going()`` is true.

        The predicate is evaluated before every event; the drain also
        stops when the clock (the time of the last executed event) passes
        ``max_time``, after ``max_events`` events, or when the queue runs
        dry.  Returns the number of events executed.

        This replaces the ``while not done(): sim.step()`` idiom: the
        whole drain loop lives inside the engine with the queue and heap
        ops bound to locals, so the per-event cost is one predicate call
        instead of predicate + ``step`` + head-scan indirection.
        """
        if self._running:
            raise SimulationError("Simulator.run_while is not re-entrant")
        self._running = True
        queue = self._queue
        pop = heappop
        instruments = self._instruments
        executed = 0
        try:
            if instruments is None:
                while keep_going():
                    if max_time is not None and self._now > max_time:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                    if not queue:
                        break
                    head = pop(queue)
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    event = head[2]
                    event.callback(*event.args)
            else:
                # instrumented twin (see run); null path stays untouched
                while keep_going():
                    if max_time is not None and self._now > max_time:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                        instruments.on_cancel_discard()
                    if not queue:
                        break
                    head = pop(queue)
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    event = head[2]
                    instruments.on_fire(len(queue))
                    event.callback(*event.args)
        finally:
            self._running = False
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain, guarded by ``max_events``."""
        self.run(max_events=max_events)
        self._discard_cancelled_head()
        if self._queue:
            raise SimulationError(
                f"event queue not drained after {max_events} events; "
                "possible livelock"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _discard_cancelled_head(self) -> None:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heappop(queue)
