"""Discrete-event simulation engine.

The engine is a classic event-list simulator: a priority queue of
:class:`Event` objects ordered by virtual time, drained by
:class:`Simulator.run`.  All protocol machinery in this package (channels,
timers, senders, receivers) is written against this engine.

Design notes
------------

* Virtual time is a ``float`` in abstract "time units".  Experiments
  typically interpret one unit as one mean one-way channel delay, but the
  engine itself attaches no meaning to the unit.
* Ties in event time are broken by insertion order, which makes executions
  deterministic given a seeded random number generator.  Determinism is
  load-bearing: the trace-equivalence experiment (E7) replays two protocol
  variants under identical schedules and asserts identical behaviour.
* Events may be cancelled in O(1) by marking; the queue lazily discards
  cancelled entries when they surface.  This is the standard "lazy
  deletion" idiom for binary-heap event lists.
* The heap holds ``(time, seq, event)`` tuples rather than bare events, so
  every sift comparison during push/pop is a C-level tuple comparison
  instead of a Python-level ``Event.__lt__`` call.  The tie-break order is
  identical to comparing events directly; only the cost changes.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappop, heappush
from typing import Any, Callable, Optional

__all__ = [
    "Event",
    "Simulator",
    "FastEvent",
    "FastSimulator",
    "make_simulator",
    "ENGINES",
    "SimulationError",
    "ScheduleInPastError",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled with a negative delay."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` and should not be
    constructed directly.  An event can be cancelled with :meth:`cancel`;
    cancelled events are silently skipped when their time comes.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        # heapq requires a total order; break time ties by insertion order
        # so that executions are reproducible.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6g}, {name}, {state})"


class Simulator:
    """An event-driven virtual-time simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=100.0)

    Callbacks run with the clock set to their scheduled time and may
    schedule further events.  The simulator is single-threaded and
    re-entrant scheduling from inside callbacks is the normal mode of
    operation.
    """

    # Optional seam: when set to a callable, every Timer built on this
    # simulator reports arms/cancels/fires as ``timer_observer(op, timer)``
    # (see repro.sim.timers).  A class attribute so the off-path cost is
    # one attribute read; the event loop itself never consults it.
    timer_observer = None

    def __init__(self) -> None:
        # entries are (time, seq, Event); see the module design notes
        self._queue: list[tuple[float, int, Event]] = []
        self._now: float = 0.0
        self._counter = itertools.count()
        self._events_processed = 0
        self._running = False
        self._instruments = None  # see set_instruments

    # ------------------------------------------------------------------
    # clock and introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(queue length); intended for tests and debugging, not hot paths.
        """
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._discard_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0][0]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which can be cancelled.  A zero delay is
        allowed and runs after all events already scheduled for the current
        instant.
        """
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay} time units in the past"
            )
        time = self._now + delay
        seq = next(self._counter)
        event = Event(time, seq, callback, args)
        heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def set_instruments(self, instruments: Optional[Any]) -> None:
        """Install (or with None, remove) engine telemetry hooks.

        ``instruments`` duck-types :class:`repro.obs.session.SimInstruments`:
        ``on_schedule(queue_len)``, ``on_fire(queue_len)``,
        ``on_cancel_discard()``.  The uninstrumented engine is untouched
        by this feature: ``schedule`` is swapped for its instrumented
        twin as an *instance* attribute, and the drain loops select an
        instrumented body once per call — with no instruments installed,
        every hot path is byte-for-byte the code above.
        """
        self._instruments = instruments
        if instruments is None:
            self.__dict__.pop("schedule", None)
        else:
            self.__dict__["schedule"] = self._schedule_instrumented

    def _schedule_instrumented(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """:meth:`schedule` plus the on_schedule hook (same semantics)."""
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay} time units in the past"
            )
        time = self._now + delay
        seq = next(self._counter)
        event = Event(time, seq, callback, args)
        heappush(self._queue, (time, seq, event))
        self._instruments.on_schedule(len(self._queue))
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event ran, False if the queue was empty.
        """
        queue = self._queue
        instruments = self._instruments
        while queue and queue[0][2].cancelled:
            heappop(queue)
            if instruments is not None:
                instruments.on_cancel_discard()
        if not queue:
            return False
        time, _, event = heappop(queue)
        self._now = time
        self._events_processed += 1
        if instruments is not None:
            instruments.on_fire(len(queue))
        event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this
            time.  The clock is advanced to ``until`` on exit so that
            subsequent relative scheduling behaves intuitively.
        max_events:
            Stop after executing this many events (a runaway guard).
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        queue = self._queue
        pop = heappop
        instruments = self._instruments
        executed = 0
        try:
            if instruments is None:
                while queue:
                    head = queue[0]
                    if head[2].cancelled:
                        pop(queue)
                        continue
                    if until is not None and head[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(queue)
                    event = head[2]
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    event.callback(*event.args)
            else:
                # instrumented twin of the loop above (kept separate so the
                # null path pays nothing for observability)
                while queue:
                    head = queue[0]
                    if head[2].cancelled:
                        pop(queue)
                        instruments.on_cancel_discard()
                        continue
                    if until is not None and head[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(queue)
                    event = head[2]
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    instruments.on_fire(len(queue))
                    event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_while(
        self,
        keep_going: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain pending events for as long as ``keep_going()`` is true.

        The predicate is evaluated before every event; the drain also
        stops when the *next pending event* would be later than
        ``max_time`` (head-peek, the same boundary rule as
        ``run(until=)`` — an event scheduled exactly at ``max_time``
        fires, one strictly past it does not, and the clock advances to
        ``max_time`` when the bound is what stopped the drain), after
        ``max_events`` events, or when the queue runs dry.  Returns the
        number of events executed.

        This replaces the ``while not done(): sim.step()`` idiom: the
        whole drain loop lives inside the engine with the queue and heap
        ops bound to locals, so the per-event cost is one predicate call
        instead of predicate + ``step`` + head-scan indirection.
        """
        if self._running:
            raise SimulationError("Simulator.run_while is not re-entrant")
        self._running = True
        queue = self._queue
        pop = heappop
        instruments = self._instruments
        executed = 0
        timed_out = False
        try:
            if instruments is None:
                while keep_going():
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                    if not queue:
                        break
                    if max_time is not None and queue[0][0] > max_time:
                        timed_out = True
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    head = pop(queue)
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    event = head[2]
                    event.callback(*event.args)
            else:
                # instrumented twin (see run); null path stays untouched
                while keep_going():
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                        instruments.on_cancel_discard()
                    if not queue:
                        break
                    if max_time is not None and queue[0][0] > max_time:
                        timed_out = True
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    head = pop(queue)
                    self._now = head[0]
                    self._events_processed += 1
                    executed += 1
                    event = head[2]
                    instruments.on_fire(len(queue))
                    event.callback(*event.args)
        finally:
            self._running = False
        if timed_out and self._now < max_time:
            self._now = max_time
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain, guarded by ``max_events``."""
        self.run(max_events=max_events)
        self._discard_cancelled_head()
        if self._queue:
            raise SimulationError(
                f"event queue not drained after {max_events} events; "
                "possible livelock"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _discard_cancelled_head(self) -> None:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heappop(queue)


class FastEvent(list):
    """A scheduled callback in the calendar-queue engine.

    Stored as one bare ``[time, seq, callback, args, cancelled, noop]``
    list — a single C-level allocation per event where :class:`Event`
    costs an object plus a heap tuple.  The API mirrors :class:`Event`
    (``cancel``, ``pending``, and the read-only field accessors), so all
    callers of :meth:`Simulator.schedule` work unchanged against either
    engine.

    ``noop`` is the owning simulator's cancellation counter: ``cancel``
    swaps it into the callback slot, which lets the batch fire loop run
    with **no per-event cancelled check at all** — a cancelled event
    that reaches the loop "fires" the counting no-op, and the drain
    subtracts those hits from ``events_processed`` once per batch.  The
    cancelled flag at index 4 is still set, so head-discard sweeps and
    ``pending``/``peek_time`` observe cancellation exactly as before.

    Comparison is inherited list lexicographic order; because ``(time,
    seq)`` is unique per simulator, a sort never compares beyond the
    first two elements, and the tie-break order is identical to
    :class:`Event`.
    """

    __slots__ = ()

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self[4]:
            self[4] = True
            # swap the real callback out for the sim's counting no-op;
            # keep the original at index 5 so .callback stays readable
            self[2], self[5] = self[5], self[2]

    @property
    def pending(self) -> bool:
        """True if the event has not been cancelled."""
        return not self[4]

    @property
    def time(self) -> float:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def callback(self) -> Callable[..., None]:
        return self[5] if self[4] else self[2]

    @property
    def args(self) -> tuple:
        return self[3]

    @property
    def cancelled(self) -> bool:
        return self[4]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self[4] else "pending"
        name = getattr(self[2], "__qualname__", repr(self[2]))
        return f"FastEvent(t={self[0]:.6g}, {name}, {state})"


# max-events sentinel: any int comparison beats a None check in the loop
_NO_BUDGET = 1 << 62


class FastSimulator:
    """Calendar-queue engine with batched same-timestamp drain.

    Drop-in replacement for :class:`Simulator` (same API, same event
    order) selected by ``engine="fast"`` at the runner/CLI layer.  Two
    structural changes produce the speedup:

    * **calendar queue** (R. Brown, CACM 1988): events live in
      ``nbuckets`` time buckets of ``width`` virtual-time units each,
      indexed by ``int(time / width) % nbuckets``.  Enqueue is an O(1)
      list append; dequeue scans forward from a cursor and only sorts
      the one bucket it pulls from.  The bucket count and width adapt to
      the live event population (buckets quadruple when the count
      doubles past them; width targets ~1/3 event per bucket-year), so
      both operations stay O(1) amortized where the binary heap pays
      O(log n) per push/pop.
    * **batch drain**: all events sharing the head timestamp are pulled
      as one batch (commonly by stealing the whole bucket list) and
      fired in seq order from a tight local loop — the dominant
      tie-heavy workloads (timer floods, fan-out) stop paying the
      per-event head-scan entirely.

    Determinism: the fire order is exactly the heap engine's ``(time,
    seq)`` order — buckets are plain lists sorted by list comparison,
    there is no identity-keyed container anywhere, so executions are
    independent of ``PYTHONHASHSEED``.  Bucket membership uses the
    *integer* year-bucket index ``int(time * (1/width))`` computed
    identically at enqueue and at scan time, never a float window
    comparison, so placement and pull can never disagree by a rounding
    ulp.

    Concurrency of maintenance and drain: resizes and cursor rewinds
    requested by ``schedule`` calls made *inside callbacks* are deferred
    (``_maint`` flag) and applied between batches by the drain loop
    itself, so the loop's cached locals (bucket list, mask, width) are
    never invalidated mid-batch.
    """

    _MAX_BUCKETS = 32768  # growth cap: 2^15 buckets ≈ 256 KiB of list heads

    # Same timer seam as Simulator; instances override via __dict__.
    timer_observer = None

    __slots__ = (
        "_now",
        "_seq",
        "_events_processed",
        "_running",
        "_instruments",
        "_count",
        "_buckets",
        "_mask",
        "_width",
        "_inv_width",
        "_cur_base",
        "_resize_at",
        "_resize_backoff",
        "_horizon",
        "_ins",
        "_maint",
        "_rewind",
        "_dirty",
        "_noop_hits",
        "_cancel_noop",
        "__dict__",  # set_instruments swaps `schedule` as an instance attr
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq = -1  # pre-increment: first event gets seq 0, like Event
        self._events_processed = 0
        self._running = False
        self._instruments = None
        self._count = 0  # bucket entries, including not-yet-discarded cancels
        self._buckets: list[list] = [[] for _ in range(8)]
        self._dirty = bytearray(8)  # 1 = bucket may be out of (time, seq) order
        self._mask = 7
        self._width = 1.0
        self._inv_width = 1.0
        self._cur_base = 0  # integer year-bucket index the cursor is at
        self._resize_at = 16
        self._resize_backoff = 1  # doubles per fruitless (no-growth) resize
        # insert-watch for the year-run drain (see run_while): while a
        # multi-event run is being fired, _horizon is its last timestamp
        # and _ins tracks the earliest schedule() at or below it; outside
        # a run, _horizon is -inf and the watch is a dead branch
        self._horizon = -math.inf
        self._ins = math.inf
        self._maint = False  # a resize and/or rewind is pending
        self._rewind = None  # earliest time scheduled behind the cursor
        hits = self._noop_hits = [0]  # cancelled events fired by the bare loop

        def _cancel_noop(*_args: Any) -> None:
            hits[0] += 1

        self._cancel_noop = _cancel_noop

    # ------------------------------------------------------------------
    # clock and introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(queue length); intended for tests and debugging, not hot paths.
        """
        return sum(1 for b in self._buckets for e in b if not e[4])

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        Direct search over all buckets, skipping cancelled entries —
        O(queue length), like :attr:`pending_count` a debugging surface
        rather than a hot path (the drain loops never call it).
        """
        best = None
        for b in self._buckets:
            for e in b:
                if not e[4] and (best is None or e[0] < best):
                    best = e[0]
        return best

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> FastEvent:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Returns the :class:`FastEvent`, which can be cancelled.  A zero
        delay is allowed and runs after all events already scheduled for
        the current instant (the seq tie-break).
        """
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay} time units in the past"
            )
        time = self._now + delay
        self._seq = seq = self._seq + 1
        event = FastEvent((time, seq, callback, args, False, self._cancel_noop))
        base = int(time * self._inv_width)
        idx = base & self._mask
        bucket = self._buckets[idx]
        if bucket and bucket[-1][0] > time:
            # append breaks (time, seq) order: seq is globally increasing,
            # so only an earlier *time* can unsort a bucket
            self._dirty[idx] = 1
        bucket.append(event)
        self._count = count = self._count + 1
        if time <= self._horizon and time < self._ins:
            self._ins = time  # lands inside the live year-run: flag it
        if base < self._cur_base:
            # landed behind the cursor (possible after run(until=) walked
            # the cursor past a gap): ask the drain to rewind before the
            # next pull so the scan cannot miss it
            if self._rewind is None or time < self._rewind:
                self._rewind = time
            self._maint = True
        elif count >= self._resize_at:
            if self._running:
                self._maint = True  # defer: a drain loop holds locals
            else:
                self._resize()
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> FastEvent:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def set_instruments(self, instruments: Optional[Any]) -> None:
        """Install (or with None, remove) engine telemetry hooks.

        Same contract as :meth:`Simulator.set_instruments`: ``schedule``
        is swapped for its instrumented twin as an *instance* attribute,
        and the drain entry points select an instrumented body once per
        call, so the uninstrumented hot loops stay untouched.  The
        queue-length reported to the hooks is the bucket population
        (including not-yet-discarded cancelled entries), mirroring the
        heap engine's ``len(queue)``.
        """
        self._instruments = instruments
        if instruments is None:
            self.__dict__.pop("schedule", None)
        else:
            self.__dict__["schedule"] = self._schedule_instrumented

    def _schedule_instrumented(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> FastEvent:
        """:meth:`schedule` plus the on_schedule hook (same semantics)."""
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay} time units in the past"
            )
        time = self._now + delay
        self._seq = seq = self._seq + 1
        event = FastEvent((time, seq, callback, args, False, self._cancel_noop))
        base = int(time * self._inv_width)
        idx = base & self._mask
        bucket = self._buckets[idx]
        if bucket and bucket[-1][0] > time:
            self._dirty[idx] = 1
        bucket.append(event)
        self._count = count = self._count + 1
        if time <= self._horizon and time < self._ins:
            self._ins = time
        if base < self._cur_base:
            if self._rewind is None or time < self._rewind:
                self._rewind = time
            self._maint = True
        elif count >= self._resize_at:
            self._maint = True
        self._instruments.on_schedule(count)
        return event

    # ------------------------------------------------------------------
    # calendar maintenance (runs between batches, never mid-drain)
    # ------------------------------------------------------------------

    def _do_maintenance(self) -> None:
        """Apply a deferred resize and/or cursor rewind."""
        self._maint = False
        if self._count >= self._resize_at:
            self._resize()  # re-anchors the cursor at the earliest event
            self._rewind = None
            return
        rewind = self._rewind
        if rewind is not None:
            self._rewind = None
            self._cur_base = int(rewind * self._inv_width)

    def _resize(self) -> None:
        """Grow the bucket array and re-fit the bucket width.

        Quadruples the bucket count (re-triggering at most every
        doubling of the population), fits ``width`` so the live events
        spread at roughly one event per three bucket-years, rebuilds the
        buckets, and re-anchors the cursor at the earliest pending
        event.  Cancelled entries are dropped during the rebuild.
        """
        events = []
        old_dirty = self._dirty
        for i, bucket in enumerate(self._buckets):
            if old_dirty[i] and len(bucket) > 1:
                # restore per-bucket (time, seq) order first so the rebuild's
                # append-order check below is a sufficient dirtiness test
                # (same-time runs must already be in seq order)
                bucket.sort()
            events.extend(e for e in bucket if not e[4])
        self._count = count = len(events)
        old_nbuckets = nbuckets = self._mask + 1
        while count >= (nbuckets << 1) and nbuckets < self._MAX_BUCKETS:
            nbuckets <<= 2
        if nbuckets >= self._MAX_BUCKETS:
            nbuckets = self._MAX_BUCKETS
            # stop re-triggering: from here on only width could adapt,
            # and a fixed-width cap keeps schedule() at two compares
            self._resize_at = _NO_BUDGET
        else:
            # The trigger count includes cancelled garbage, so a steady
            # workload that cancels as fast as it schedules re-triggers
            # forever without ever growing (measured: a timer-churn cell
            # rebuilt every ~25 events, 8k rebuilds per run).  A resize
            # exists to *grow*; purging is incidental — the drain's
            # head-discard already reclaims garbage as time advances.
            # So back off exponentially while resizes find no growth,
            # and reset the moment one does.  Garbage held between
            # rebuilds stays bounded by 65x the live population.
            if nbuckets > old_nbuckets:
                self._resize_backoff = 1
            else:
                self._resize_backoff = min(self._resize_backoff << 1, 64)
            self._resize_at = max(
                nbuckets << 1, count + count * self._resize_backoff
            )
        if count > 1:
            # C-level min/max via list comparison: (time, seq) leads
            tmin = min(events)[0]
            tmax = max(events)[0]
            span = tmax - tmin
            if span > 0.0:
                self._width = span * 3.0 / count
                self._inv_width = 1.0 / self._width
        self._mask = mask = nbuckets - 1
        inv_width = self._inv_width
        buckets = self._buckets = [[] for _ in range(nbuckets)]
        dirty = self._dirty = bytearray(nbuckets)
        for e in events:
            idx = int(e[0] * inv_width) & mask
            b = buckets[idx]
            if b and b[-1][0] > e[0]:
                # rebuild order is old-bucket concatenation order: mark only
                # the buckets it actually unsorts (seq order is preserved
                # within each old bucket, so time is the sole discriminator)
                dirty[idx] = 1
            b.append(e)
        anchor = min(events)[0] if events else self._now
        self._cur_base = int(anchor * inv_width)

    # ------------------------------------------------------------------
    # batch pull (helper form: step, instrumented drains)
    # ------------------------------------------------------------------

    def _pull_batch(self, instruments: Optional[Any] = None) -> Optional[list]:
        """Remove and return the next same-timestamp batch, or None.

        The batch comes back sorted by ``(time, seq)`` with cancelled
        entries possibly interleaved (the *head* is always pending).
        The uninstrumented ``run``/``run_while`` loops inline this logic
        with locals; this method is the shared slow-path used by
        :meth:`step` and the instrumented drains.
        """
        if self._maint:
            self._do_maintenance()
        if self._count == 0:
            return None
        buckets = self._buckets
        dirty = self._dirty
        mask = self._mask
        inv_width = self._inv_width
        base = self._cur_base
        scanned = 0
        while True:
            idx = base & mask
            bucket = buckets[idx]
            if bucket:
                if dirty[idx]:
                    if len(bucket) > 1:
                        bucket.sort()
                    dirty[idx] = 0
                while bucket and bucket[0][4]:
                    del bucket[0]
                    self._count -= 1
                    if instruments is not None:
                        instruments.on_cancel_discard()
                if bucket:
                    head_time = bucket[0][0]
                    if int(head_time * inv_width) == base:
                        if bucket[-1][0] == head_time:
                            ready = bucket
                            buckets[idx] = []
                        else:
                            j = 1
                            while bucket[j][0] == head_time:
                                j += 1
                            ready = bucket[:j]
                            del bucket[:j]
                        self._count -= len(ready)
                        self._cur_base = base
                        return ready
                elif self._count == 0:
                    return None
            base += 1
            scanned += 1
            if scanned > mask:
                # a full cycle with no hit in any bucket's current year:
                # the width no longer matches the live distribution (a
                # sparse queue whose events sit many years apart would
                # otherwise pay a full lap per pull).  _resize purges
                # cancelled garbage, re-fits the width to the live span,
                # and re-anchors the cursor at the true minimum — whose
                # bucket the next probe then hits directly.
                self._resize()
                if self._count == 0:
                    return None
                buckets = self._buckets
                dirty = self._dirty
                mask = self._mask
                inv_width = self._inv_width
                base = self._cur_base
                scanned = 0

    def _put_back(self, leftover: list) -> None:
        """Return an interrupted batch's unfired tail to its bucket.

        The events re-enter the bucket the cursor is parked on (their
        year-bucket index — pull just took them from it); the next pull
        re-sorts and finds them first again.
        """
        if leftover:
            idx = self._cur_base & self._mask
            self._buckets[idx].extend(leftover)
            self._dirty[idx] = 1
            self._count += len(leftover)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event ran, False if the queue was empty.
        """
        batch = self._pull_batch(self._instruments)
        if batch is None:
            return False
        event = batch[0]  # pull guarantees a pending head
        self._put_back(batch[1:])
        self._now = event[0]
        self._events_processed += 1
        if self._instruments is not None:
            self._instruments.on_fire(self._count)
        event[2](*event[3])
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue (same semantics as :meth:`Simulator.run`).

        ``until`` stops once the next batch would be strictly later and
        advances the clock to ``until``; ``max_events`` stops after that
        many events, leaving the rest queued.
        """
        if self._running:
            raise SimulationError("FastSimulator.run is not re-entrant")
        self._running = True
        try:
            if self._instruments is not None:
                self._run_instrumented(until, max_events)
            else:
                self._run_fast(until, max_events)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def _run_fast(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """The uninstrumented :meth:`run` drain: inlined pull + batch fire.

        On a callback exception the unfired tail of the current batch is
        returned to its bucket (the heap engine likewise keeps unfired
        events queued) and the exception propagates with
        ``events_processed`` already counting the events that did fire.
        """
        budget = _NO_BUDGET if max_events is None else max_events
        fired = 0
        # drain-loop locals: valid until the next maintenance point,
        # which only ever runs between batches (see _do_maintenance)
        buckets = self._buckets
        dirty = self._dirty
        mask = self._mask
        inv_width = self._inv_width
        noop_hits = self._noop_hits
        bound = math.inf if until is None else until
        while True:
            if self._maint:
                self._do_maintenance()
                buckets = self._buckets
                dirty = self._dirty
                mask = self._mask
                inv_width = self._inv_width
            if self._count == 0:
                break
            # ---- pull the next same-timestamp batch ----
            base = self._cur_base
            scanned = 0
            ready = None
            single = None
            head_time = 0.0
            while True:
                idx = base & mask
                bucket = buckets[idx]
                if bucket:
                    if dirty[idx]:
                        if len(bucket) > 1:
                            bucket.sort()
                        dirty[idx] = 0
                    while bucket and bucket[0][4]:
                        del bucket[0]
                        self._count -= 1
                    if bucket:
                        head_time = bucket[0][0]
                        if int(head_time * inv_width) == base:
                            if len(bucket) == 1:
                                # singleton: pop in place, no steal
                                single = bucket.pop()
                                self._count -= 1
                            elif bucket[1][0] != head_time:
                                # head alone at its timestamp: no batch
                                single = bucket.pop(0)
                                self._count -= 1
                            elif bucket[-1][0] == head_time:
                                # uniform bucket: steal the list whole
                                ready = bucket
                                buckets[idx] = []
                                self._count -= len(ready)
                            else:
                                j = 2
                                while bucket[j][0] == head_time:
                                    j += 1
                                ready = bucket[:j]
                                del bucket[:j]
                                self._count -= len(ready)
                            break
                    elif self._count == 0:
                        break
                base += 1
                scanned += 1
                if scanned > mask:
                    # full-lap miss: width too small for the live
                    # distribution — re-fit and re-anchor (see
                    # _pull_batch); the next probe hits the minimum
                    self._resize()
                    if self._count == 0:
                        break
                    buckets = self._buckets
                    dirty = self._dirty
                    mask = self._mask
                    inv_width = self._inv_width
                    base = self._cur_base
                    scanned = 0
            self._cur_base = base
            if single is not None:
                # ---- singleton fire (see run_while: pending head, no
                # batch bookkeeping; an exception has no unfired tail
                # and the raising event already counted)
                if head_time > bound:
                    self._put_back([single])
                    break
                if fired >= budget:
                    self._put_back([single])
                    break
                self._now = head_time
                fired += 1
                try:
                    single[2](*single[3])
                except BaseException:
                    self._events_processed += fired
                    raise
                continue
            if ready is None:
                break
            # ---- fire the batch in (time, seq) order ----
            # head_time survives from the scan: ready[0] set it
            if head_time > bound:
                self._put_back(ready)
                break
            self._now = head_time
            if budget == _NO_BUDGET:
                # bare loop: no per-event cancelled check — a cancelled
                # event's callback IS the counting no-op (see
                # FastEvent.cancel), and its hits are subtracted from the
                # batch's fired total afterwards.  This also catches
                # same-timestamp cancels made by callbacks mid-batch.
                fired += len(ready)
                ev = None
                try:
                    for ev in ready:
                        ev[2](*ev[3])
                except BaseException:
                    # keep the unfired tail queued, like the heap engine,
                    # and settle the count of events that did fire (the
                    # raising event counts; unfired and no-op'd do not)
                    pos = ready.index(ev)
                    self._put_back(ready[pos + 1 :])
                    fired -= len(ready) - 1 - pos
                    nh = noop_hits[0]
                    if nh:
                        fired -= nh
                        noop_hits[0] = 0
                    self._events_processed += fired
                    raise
                nh = noop_hits[0]
                if nh:
                    fired -= nh
                    noop_hits[0] = 0
            else:
                consumed = 0
                try:
                    for ev in ready:
                        if ev[4]:
                            consumed += 1
                            continue
                        if fired >= budget:
                            break
                        fired += 1
                        consumed += 1
                        ev[2](*ev[3])
                except BaseException:
                    self._put_back(ready[consumed:])
                    self._events_processed += fired
                    raise
                if fired >= budget:
                    self._put_back(ready[consumed:])
                    break
        self._events_processed += fired

    def _run_instrumented(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """Instrumented twin of the :meth:`run` drain (hook per event)."""
        instruments = self._instruments
        budget = _NO_BUDGET if max_events is None else max_events
        fired = 0
        try:
            while True:
                ready = self._pull_batch(instruments)
                if ready is None:
                    break
                head_time = ready[0][0]
                if until is not None and head_time > until:
                    self._put_back(ready)
                    break
                self._now = head_time
                consumed = 0
                remaining = len(ready)
                try:
                    for ev in ready:
                        if ev[4]:
                            consumed += 1
                            remaining -= 1
                            instruments.on_cancel_discard()
                            continue
                        if fired >= budget:
                            break
                        fired += 1
                        consumed += 1
                        remaining -= 1
                        instruments.on_fire(self._count + remaining)
                        ev[2](*ev[3])
                except BaseException:
                    self._put_back(ready[consumed:])
                    raise
                if fired >= budget:
                    self._put_back(ready[consumed:])
                    break
        finally:
            self._events_processed += fired

    def run_while(
        self,
        keep_going: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain pending events for as long as ``keep_going()`` is true.

        Same semantics as :meth:`Simulator.run_while` (head-peek
        ``max_time``: an event exactly at the bound fires, one strictly
        past it does not, and the clock advances to ``max_time`` when
        the bound stopped the drain).  The predicate is evaluated before
        every event; events it declines stay queued.  Returns the number
        of events executed.
        """
        if self._running:
            raise SimulationError("FastSimulator.run_while is not re-entrant")
        self._running = True
        instruments = self._instruments
        budget = _NO_BUDGET if max_events is None else max_events
        fired = 0
        timed_out = False
        try:
            while instruments is not None:
                ready = self._pull_batch(instruments)
                if ready is None:
                    break
                head_time = ready[0][0]
                if max_time is not None and head_time > max_time:
                    self._put_back(ready)
                    timed_out = True
                    break
                stopped = False
                consumed = 0
                remaining = len(ready)
                try:
                    for ev in ready:
                        if ev[4]:
                            consumed += 1
                            remaining -= 1
                            instruments.on_cancel_discard()
                            continue
                        if fired >= budget or not keep_going():
                            stopped = True
                            break
                        self._now = head_time
                        fired += 1
                        consumed += 1
                        remaining -= 1
                        instruments.on_fire(self._count + remaining)
                        ev[2](*ev[3])
                except BaseException:
                    self._put_back(ready[consumed:])
                    raise
                if stopped:
                    self._put_back(ready[consumed:])
                    break
            # uninstrumented hot path: the pull is inlined exactly like
            # _run_fast's — run_while is the runner's main drive loop, so
            # a per-batch method call here costs real end-to-end time on
            # timer-heavy workloads whose batches are near-singletons.
            # Unlike run()'s per-timestamp batches, this loop pulls the
            # whole *year-run* (the bucket prefix belonging to the
            # cursor's year) and fires it under an insert-watch: the
            # expensive rescan then amortizes over the run instead of
            # repeating per event.  schedule() flags any insert at or
            # below the run's horizon; the fire loop puts the unfired
            # tail back and rescans the moment an insert lands before
            # the next event, so global (time, seq) order is exact.
            buckets = self._buckets
            dirty = self._dirty
            mask = self._mask
            inv_width = self._inv_width
            bound = math.inf if max_time is None else max_time
            while instruments is None:
                if self._maint:
                    self._do_maintenance()
                    buckets = self._buckets
                    dirty = self._dirty
                    mask = self._mask
                    inv_width = self._inv_width
                if self._count == 0:
                    break
                # ---- pull the cursor-year run ----
                base = self._cur_base
                scanned = 0
                run = None
                single = None
                head_time = 0.0
                while True:
                    idx = base & mask
                    bucket = buckets[idx]
                    if bucket:
                        if dirty[idx]:
                            if len(bucket) > 1:
                                bucket.sort()
                            dirty[idx] = 0
                        while bucket and bucket[0][4]:
                            del bucket[0]
                            self._count -= 1
                        if bucket:
                            head_time = bucket[0][0]
                            if int(head_time * inv_width) == base:
                                if len(bucket) == 1:
                                    # singleton: pop in place, no steal
                                    single = bucket.pop()
                                    self._count -= 1
                                elif int(bucket[-1][0] * inv_width) == base:
                                    # whole bucket is this year: steal it
                                    run = bucket
                                    buckets[idx] = []
                                    self._count -= len(run)
                                else:
                                    j = 1
                                    while int(bucket[j][0] * inv_width) == base:
                                        j += 1
                                    run = bucket[:j]
                                    del bucket[:j]
                                    self._count -= j
                                break
                        elif self._count == 0:
                            break
                    base += 1
                    scanned += 1
                    if scanned > mask:
                        # full-lap miss: width too small for the live
                        # distribution — re-fit and re-anchor (see
                        # _pull_batch); the next probe hits the minimum
                        self._resize()
                        if self._count == 0:
                            break
                        buckets = self._buckets
                        dirty = self._dirty
                        mask = self._mask
                        inv_width = self._inv_width
                        base = self._cur_base
                        scanned = 0
                self._cur_base = base
                if single is not None:
                    # ---- singleton fire: the dominant shape on timer
                    # workloads.  The scan guarantees the head is pending
                    # and no callback ran between pull and fire, so the
                    # cancelled check, the run loop, and the insert-watch
                    # all drop out (no tail exists to misorder; an
                    # exception has no unfired tail and the outer finally
                    # settles the count).
                    if head_time > bound:
                        self._put_back([single])
                        timed_out = True
                        break
                    if fired >= budget or not keep_going():
                        self._put_back([single])
                        break
                    self._now = head_time
                    fired += 1
                    single[2](*single[3])
                    continue
                if run is None:
                    break
                # ---- fire the year-run under the insert-watch ----
                self._ins = math.inf
                self._horizon = run[-1][0]
                rescan = False
                stopped = False
                consumed = 0
                try:
                    for ev in run:
                        if ev[4]:
                            consumed += 1
                            continue
                        t = ev[0]
                        if self._ins < t:
                            # a callback scheduled ahead of this event:
                            # put the tail back and rescan (a tie at the
                            # current timestamp keeps firing — the new
                            # event's seq is higher, so it belongs after
                            # every already-pulled event of that time)
                            rescan = True
                            break
                        if t > bound:
                            timed_out = True
                            stopped = True
                            break
                        if fired >= budget or not keep_going():
                            stopped = True
                            break
                        self._now = t
                        fired += 1
                        consumed += 1
                        ev[2](*ev[3])
                except BaseException:
                    self._horizon = -math.inf
                    self._put_back(run[consumed:])
                    raise
                self._horizon = -math.inf
                if rescan:
                    self._put_back(run[consumed:])
                    continue
                if stopped:
                    self._put_back(run[consumed:])
                    break
        finally:
            self._running = False
            self._events_processed += fired
        if timed_out and self._now < max_time:
            self._now = max_time
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain, guarded by ``max_events``."""
        self.run(max_events=max_events)
        if self.peek_time() is not None:
            raise SimulationError(
                f"event queue not drained after {max_events} events; "
                "possible livelock"
            )


ENGINES = ("default", "fast")


def make_simulator(engine: str = "default"):
    """Engine factory: ``"default"`` (binary heap) or ``"fast"``.

    The default engine is the reference implementation whose golden
    decision traces are pinned byte-for-byte; the fast engine is the
    calendar-queue rewrite, held to decision-trace *equivalence* on the
    golden configs (same events, same order — see
    ``tests/test_fast_engine_equivalence.py``).
    """
    if engine == "default":
        return Simulator()
    if engine == "fast":
        return FastSimulator()
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
