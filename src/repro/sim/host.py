"""Multi-flow session host: N protocol flows over one shared link pair.

:func:`~repro.sim.runner.run_transfer` wires exactly one sender/receiver
pair to dedicated channels — the paper's setting.  A production-scale
deployment of the window protocol multiplexes *many* concurrent flows
over the same impaired links, which is where per-connection window
behaviour, link sharing, and fairness start to matter (Ghaderi &
Towsley; Jain — see PAPERS.md).  :class:`SessionHost` realises that
regime on the existing machinery:

* one **forward** and one **reverse** channel are built from the usual
  :class:`~repro.sim.runner.LinkSpec` descriptions — loss, delay,
  aging, and framing act on the *shared* link, not per-flow copies;
* a :class:`~repro.channel.mux.FlowMux` per direction tags each flow's
  traffic with its flow id and demultiplexes deliveries, so every
  endpoint pair sees an ordinary channel surface
  (:class:`~repro.channel.mux.FlowPort`, labelled ``SR.f<id>``);
* each flow gets its own trace actor names (``sender.f<id>``), span
  tracker, latency bookkeeping, and — when requested — its own
  :class:`~repro.verify.runtime.InvariantMonitor` or sampled
  :class:`~repro.obs.probes.InvariantProbe`, because the paper's
  invariant 6 ∧ 7 ∧ 8 is a *per-flow* statement: each flow's counters,
  in-flight data, and ack spans form an independent instance of the
  protocol over its slice of the link.

:func:`run_flows` is the entry point.  With one flow it delegates to
:func:`~repro.sim.runner.run_transfer` unchanged (byte-identical
results, same decision trace — ``run_transfer`` *is* the N=1 special
case); with N >= 2 it runs the shared-link session and returns a
:class:`SessionResult` holding per-flow :class:`FlowResult` rows plus
aggregate goodput and the Jain fairness index across flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import jain_fairness
from repro.channel.arbiter import ArbiterConfig
from repro.channel.mux import FlowMux
from repro.channel.sampling import maybe_block
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.sim.engine import Simulator, make_simulator
from repro.sim.randomness import RandomStreams
from repro.sim.runner import (
    LinkSpec,
    TransferResult,
    _derive_timeout,
    run_transfer,
)
from repro.trace.recorder import NullRecorder, TraceRecorder
from repro.workloads.sources import GreedySource, Source

__all__ = [
    "FlowSpec",
    "FlowResult",
    "SessionResult",
    "SessionHost",
    "run_flows",
    "uniform_flows",
    "mixed_flows",
    "session_to_transfer",
]


@dataclass
class FlowSpec:
    """One flow: an endpoint pair plus the source that drives it.

    ``weight`` is the flow's scheduling weight at the link arbiter
    (WRR/DRR); it is ignored when the session has no arbiter or uses
    the ``fifo`` scheduler.
    """

    sender: SenderEndpoint
    receiver: ReceiverEndpoint
    source: Source
    label: str = ""  # cosmetic (protocol name etc.); not protocol state
    weight: float = 1.0  # arbiter scheduling weight (wrr/drr)


@dataclass
class FlowResult:
    """Everything measured for one flow of a multi-flow session."""

    flow: int
    label: str
    completed: bool
    delivered: int
    submitted: int
    in_order: bool  # complete AND exactly-once in-order
    ordered_prefix: bool  # delivered payloads form an in-order prefix
    duration: float  # session duration (shared clock)
    sender_stats: dict = field(default_factory=dict)
    receiver_stats: dict = field(default_factory=dict)
    forward_stats: dict = field(default_factory=dict)  # this flow's port
    reverse_stats: dict = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    timeout_period: float = 0.0
    monitor: Any = None  # per-flow InvariantMonitor / InvariantProbe
    delivered_payloads: List[Any] = field(default_factory=list)
    queue_stats: dict = field(default_factory=dict)  # arbiter counters

    @property
    def throughput(self) -> float:
        """This flow's goodput over the shared session duration."""
        return self.delivered / self.duration if self.duration > 0 else 0.0

    @property
    def violations(self) -> int:
        """Invariant violations observed for this flow (0 when unwatched)."""
        if self.monitor is None:
            return 0
        return len(self.monitor.violations)

    def as_dict(self) -> dict:
        """JSON-safe row (what the sweep serializer carries per flow)."""
        row = {
            "flow": self.flow,
            "label": self.label,
            "completed": self.completed,
            "delivered": self.delivered,
            "submitted": self.submitted,
            "in_order": self.in_order,
            "ordered_prefix": self.ordered_prefix,
            "sender_stats": self.sender_stats,
            "receiver_stats": self.receiver_stats,
            "forward_stats": self.forward_stats,
            "reverse_stats": self.reverse_stats,
            "timeout_period": self.timeout_period,
            "violations": self.violations,
        }
        if self.queue_stats:  # only arbitrated sessions carry the key
            row["queue_stats"] = self.queue_stats
        return row


@dataclass
class SessionResult:
    """Per-flow plus aggregate outcome of one multi-flow session."""

    completed: bool  # every flow finished
    duration: float
    delivered: int  # aggregate across flows
    submitted: int
    in_order: bool  # every flow delivered exactly-once in-order
    flows: List[FlowResult] = field(default_factory=list)
    fairness: float = 1.0  # Jain index over per-flow goodput
    forward_stats: dict = field(default_factory=dict)  # shared link
    reverse_stats: dict = field(default_factory=dict)
    arbiter_stats: dict = field(default_factory=dict)  # {} without one
    trace: Any = None
    obs: Any = None
    obs_path: Optional[str] = None
    causal: Any = None  # CausalRecorder when the causal layer was on
    flight_path: Optional[str] = None  # flight dump, when a trigger fired
    transfer: Optional[TransferResult] = None  # set on the N=1 path

    @property
    def throughput(self) -> float:
        """Aggregate goodput: payloads delivered per unit virtual time."""
        return self.delivered / self.duration if self.duration > 0 else 0.0

    @property
    def violations(self) -> int:
        """Total invariant violations across all watched flows."""
        return sum(flow.violations for flow in self.flows)

    def summary(self) -> str:
        status = "completed" if self.completed else "INCOMPLETE"
        order = "in-order" if self.in_order else "ORDER VIOLATION"
        return (
            f"{status}/{order}: {len(self.flows)} flow(s), "
            f"{self.delivered}/{self.submitted} delivered in "
            f"{self.duration:.2f}tu, aggregate throughput="
            f"{self.throughput:.4f}/tu, fairness={self.fairness:.3f}"
        )


def uniform_flows(
    protocol: str,
    count: int,
    window: int,
    total: int,
    **protocol_kwargs,
) -> List[FlowSpec]:
    """``count`` identical greedy flows of the named protocol.

    The homogeneous-population case every fairness experiment starts
    from; heterogeneous mixes come from :func:`mixed_flows` (or by
    composing :class:`FlowSpec` by hand).
    """
    from repro.protocols.registry import make_pair  # cycle guard

    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    specs = []
    for _ in range(count):
        sender, receiver = make_pair(
            protocol, window=window, **protocol_kwargs
        )
        specs.append(
            FlowSpec(
                sender=sender,
                receiver=receiver,
                source=GreedySource(total),
                label=protocol,
            )
        )
    return specs


def mixed_flows(
    protocol: str,
    windows: Sequence[int],
    total: int,
    timeout_modes: Optional[Sequence[Optional[str]]] = None,
    weights: Optional[Sequence[float]] = None,
    sources: Optional[Sequence[Source]] = None,
    **protocol_kwargs,
) -> List[FlowSpec]:
    """One flow per entry of ``windows``, heterogeneous on purpose.

    The genuinely-competing-sessions case E17 studies: flows of the
    same protocol but different window sizes (and optionally timeout
    modes, arbiter scheduling weights, or workload sources) contending
    for a shared link.  All optional sequences must match
    ``len(windows)``; ``None`` entries in ``timeout_modes`` keep the
    protocol's default, a ``sources`` default of ``None`` gives every
    flow a greedy source offering ``total`` payloads.
    """
    from repro.protocols.registry import make_pair  # cycle guard

    if not windows:
        raise ValueError("mixed_flows needs at least one window entry")
    for name, seq in (
        ("timeout_modes", timeout_modes),
        ("weights", weights),
        ("sources", sources),
    ):
        if seq is not None and len(seq) != len(windows):
            raise ValueError(
                f"{name} must match windows "
                f"({len(seq)} != {len(windows)})"
            )
    specs = []
    for index, window in enumerate(windows):
        kwargs = dict(protocol_kwargs)
        mode = timeout_modes[index] if timeout_modes is not None else None
        if mode is not None:
            kwargs["timeout_mode"] = mode
        sender, receiver = make_pair(protocol, window=window, **kwargs)
        specs.append(
            FlowSpec(
                sender=sender,
                receiver=receiver,
                source=(
                    sources[index]
                    if sources is not None
                    else GreedySource(total)
                ),
                label=f"{protocol}/w{window}",
                weight=weights[index] if weights is not None else 1.0,
            )
        )
    return specs


def _wire_domain(sender: Any) -> Optional[int]:
    numbering = getattr(sender, "numbering", None)
    domain = numbering.domain_size if numbering is not None else None
    if domain is None and hasattr(sender, "book"):
        domain = sender.book.domain.n  # byte-exact bounded endpoints
    return domain


def _session_from_transfer(
    spec: FlowSpec, result: TransferResult
) -> SessionResult:
    """Wrap the N=1 delegation's TransferResult as a session result."""
    flow = FlowResult(
        flow=0,
        label=spec.label,
        completed=result.completed,
        delivered=result.delivered,
        submitted=result.submitted,
        in_order=result.in_order,
        ordered_prefix=result.ordered_prefix,
        duration=result.duration,
        sender_stats=result.sender_stats,
        receiver_stats=result.receiver_stats,
        forward_stats=result.forward_stats,
        reverse_stats=result.reverse_stats,
        latencies=result.latencies,
        timeout_period=result.timeout_period,
        monitor=result.monitor,
        delivered_payloads=result.delivered_payloads,
    )
    return SessionResult(
        completed=result.completed,
        duration=result.duration,
        delivered=result.delivered,
        submitted=result.submitted,
        in_order=result.in_order,
        flows=[flow],
        fairness=1.0,
        forward_stats=result.forward_stats,
        reverse_stats=result.reverse_stats,
        trace=result.trace,
        obs=result.obs,
        obs_path=result.obs_path,
        causal=result.causal,
        flight_path=result.flight_path,
        transfer=result,
    )


class _FlowHarness:
    """Per-flow wiring state the host keeps while a session runs."""

    __slots__ = (
        "index",
        "spec",
        "forward_port",
        "reverse_port",
        "delivered_payloads",
        "submit_times",
        "latencies",
        "tracker",
        "monitor",
        "original_submit",
        "submit_was_instance_attr",
    )

    def __init__(self, index: int, spec: FlowSpec) -> None:
        self.index = index
        self.spec = spec
        self.forward_port = None
        self.reverse_port = None
        self.delivered_payloads: List[Any] = []
        self.submit_times: Dict[int, float] = {}
        self.latencies: List[float] = []
        self.tracker = None  # per-flow SpanTracker when obs is on
        self.monitor = None
        self.original_submit: Optional[Callable] = None
        self.submit_was_instance_attr = False

    @property
    def finished(self) -> bool:
        return (
            self.spec.source.exhausted
            and self.spec.sender.all_acknowledged
            and len(self.delivered_payloads) >= self.spec.source.total
        )


class SessionHost:
    """Build, run, and measure one multi-flow session.

    Parameters mirror :func:`~repro.sim.runner.run_transfer` where they
    make sense for a shared link; ``fault_plan`` is not supported here
    because its crash/restart scripting names a single endpoint pair —
    scripted link faults on multi-flow sessions are an open item
    (ROADMAP).
    """

    def __init__(
        self,
        flows: Sequence[FlowSpec],
        forward: Optional[LinkSpec] = None,
        reverse: Optional[LinkSpec] = None,
        seed: int = 0,
        max_time: Optional[float] = None,
        max_events: int = 20_000_000,
        collect_payloads: bool = False,
        trace: bool = False,
        trace_capacity: Optional[int] = None,
        monitor_invariants: bool = False,
        obs: Any = False,
        obs_run_id: Optional[str] = None,
        obs_labels: Optional[dict] = None,
        obs_sample_invariants_every: int = 0,
        causal: bool = False,
        engine: str = "default",
        arbiter: Optional[ArbiterConfig] = None,
    ) -> None:
        self.flows = [
            _FlowHarness(index, spec) for index, spec in enumerate(flows)
        ]
        if not self.flows:
            raise ValueError("a session needs at least one flow")
        self.forward_spec = forward if forward is not None else LinkSpec()
        self.reverse_spec = reverse if reverse is not None else LinkSpec()
        self.seed = seed
        self.max_time = max_time
        self.max_events = max_events
        self.collect_payloads = collect_payloads
        self.trace = trace
        self.trace_capacity = trace_capacity
        self.monitor_invariants = monitor_invariants
        self.obs = obs
        self.obs_run_id = obs_run_id
        self.obs_labels = obs_labels
        self.obs_sample_invariants_every = obs_sample_invariants_every
        self.causal = causal
        self.engine = engine
        self.arbiter = (
            arbiter if arbiter is not None and arbiter.active else None
        )

    # ------------------------------------------------------------------

    def run(self) -> SessionResult:
        sim = make_simulator(self.engine)
        streams = RandomStreams(self.seed)

        causal_rec = None
        if self.causal:
            from repro.obs.causal import CausalRecorder  # cycle guard

            causal_rec = CausalRecorder(
                sim,
                run_id=self.obs_run_id or "session",
                labels=self.obs_labels,
            )
            sim.timer_observer = causal_rec.timer_observer()

        obs_session = None
        if self.obs:
            from repro.obs.session import Observability  # cycle guard

            if isinstance(self.obs, Observability):
                obs_session = self.obs
            else:
                obs_session = Observability(
                    run_id=self.obs_run_id or "session",
                    labels=self.obs_labels,
                    sample_invariants_every=self.obs_sample_invariants_every,
                )
            obs_session.attach_sim(sim)

        forward_channel = self.forward_spec.build(
            sim, maybe_block(streams.get("channel.forward"), self.engine), "SR"
        )
        reverse_channel = self.reverse_spec.build(
            sim, maybe_block(streams.get("channel.reverse"), self.engine), "RS"
        )
        # only the data direction is arbitrated: acks are the paper's
        # cheap control frames, so the reverse link keeps pure
        # loss/delay (see repro.channel.arbiter module docs)
        forward_mux = FlowMux(forward_channel, arbiter=self.arbiter)
        reverse_mux = FlowMux(reverse_channel)
        self._link_arbiter = forward_mux.arbiter
        if obs_session is not None:
            obs_session.attach_channel(forward_channel, forward_channel.name)
            obs_session.attach_channel(reverse_channel, reverse_channel.name)
        if causal_rec is not None:
            # observe the *shared* channels, where the FlowEnvelope is
            # still intact — the causal observer unwraps it, so transit
            # nodes carry the flow id of the message they touched
            forward_channel.add_observer(
                causal_rec.channel_observer(forward_channel.name)
            )
            reverse_channel.add_observer(
                causal_rec.channel_observer(reverse_channel.name)
            )

        recorder = (
            TraceRecorder(sim, capacity=self.trace_capacity)
            if self.trace
            else NullRecorder()
        )

        for flow in self.flows:
            self._wire_flow(flow, sim, forward_mux, reverse_mux, recorder,
                            obs_session, causal_rec)

        def unfinished() -> bool:
            return not all(flow.finished for flow in self.flows)

        try:
            for flow in self.flows:
                flow.spec.source.attach(sim, flow.spec.sender)
            sim.run_while(
                unfinished, max_time=self.max_time, max_events=self.max_events
            )
        finally:
            for flow in self.flows:
                self._restore_submit(flow)

        return self._collect(
            sim, forward_channel, reverse_channel, recorder, obs_session,
            causal_rec,
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _wire_flow(
        self, flow, sim, forward_mux, reverse_mux, recorder, obs_session,
        causal_rec=None,
    ) -> None:
        sender, receiver = flow.spec.sender, flow.spec.receiver
        fid = flow.index
        flow.forward_port = forward_mux.port(fid, weight=flow.spec.weight)
        flow.reverse_port = reverse_mux.port(fid)

        # flow-aware identity: distinct trace actors per flow, and the
        # window-core endpoints carry their flow id for diagnostics
        sender.actor_name = f"sender.f{fid}"
        receiver.actor_name = f"receiver.f{fid}"
        if hasattr(sender, "flow_id"):
            sender.flow_id = fid
        if hasattr(receiver, "flow_id"):
            receiver.flow_id = fid

        flow_recorder = recorder
        if causal_rec is not None:
            # the causal tee sits beneath the obs tee so probe NOTE
            # records (recorded through the obs recorder) reach the
            # causal layer; every record is stamped with this flow id
            from repro.obs.causal import CausalTee  # cycle guard

            flow_recorder = CausalTee(sim, causal_rec, flow_recorder, flow=fid)
            causal_rec.watch_endpoints(
                (f"sender.f{fid}", sender), (f"receiver.f{fid}", receiver)
            )
        if obs_session is not None:
            # per-flow span tracker on the shared registry: instruments
            # (histograms/counters) merge into session aggregates while
            # each flow keeps its own span table and latency list
            from repro.obs.spans import ObsRecorder, SpanTracker

            flow.tracker = SpanTracker(obs_session.registry, flow=fid)
            obs_session.add_span_tracker(flow.tracker)
            flow_recorder = ObsRecorder(sim, flow.tracker, flow_recorder)
            obs_session.attach_channel(
                flow.forward_port, flow.forward_port.name
            )
            obs_session.attach_channel(
                flow.reverse_port, flow.reverse_port.name
            )

        _derive_timeout(sender, receiver, flow.forward_port, flow.reverse_port)

        if obs_session is not None:

            def on_deliver(seq, payload, flow=flow, sim=sim):
                flow.delivered_payloads.append(payload)
                flow.tracker.on_deliver(seq, sim.now)

        else:

            def on_deliver(seq, payload, flow=flow, sim=sim):
                flow.delivered_payloads.append(payload)
                submitted_at = flow.submit_times.pop(seq, None)
                if submitted_at is not None:
                    flow.latencies.append(sim.now - submitted_at)

        if causal_rec is not None:
            plain_deliver = on_deliver

            def on_deliver(
                seq, payload, flow=flow, sim=sim, fid=fid,
                causal_rec=causal_rec, plain_deliver=plain_deliver,
            ):
                plain_deliver(seq, payload)
                causal_rec.on_deliver(
                    seq, sim.now, flow=fid, actor=f"receiver.f{fid}"
                )

        receiver.on_deliver = on_deliver

        if self.monitor_invariants:
            from repro.verify.runtime import InvariantMonitor  # cycle guard

            flow.monitor = InvariantMonitor(
                sender, receiver, flow.forward_port, flow.reverse_port,
                domain=_wire_domain(sender),
            )
        elif (
            obs_session is not None
            and obs_session.sample_invariants_every
        ):
            from repro.obs.probes import InvariantProbe  # cycle guard

            flow.monitor = InvariantProbe(
                sender, receiver, flow.forward_port, flow.reverse_port,
                domain=_wire_domain(sender),
                sample_every=obs_session.sample_invariants_every,
                registry=obs_session.registry,
                recorder=(
                    flow_recorder if flow_recorder is not recorder else None
                ),
            )

        sender.attach(sim, flow.forward_port, flow_recorder)
        receiver.attach(sim, flow.reverse_port, flow_recorder)
        if obs_session is not None:
            controller = getattr(sender, "_retx", None)  # built during attach
            if controller is not None:
                obs_session.attach_controller(controller)
        if causal_rec is not None:
            controller = getattr(sender, "_retx", None)
            if controller is not None:
                # chained after any obs instruments bound just above
                causal_rec.attach_controller(controller, flow=fid)
        flow.forward_port.connect(receiver.on_message)
        flow.reverse_port.connect(sender.on_message)
        if (
            getattr(sender, "timeout_mode", None) == "oracle"
            and hasattr(sender, "enable_oracle")
        ):
            sender.enable_oracle(
                flow.forward_port, flow.reverse_port, receiver
            )

        # timestamp submits for per-flow latency (or per-flow spans)
        flow.submit_was_instance_attr = "submit" in vars(sender)
        flow.original_submit = sender.submit

        if obs_session is not None:

            def timed_submit(payload, flow=flow, sim=sim):
                seq = flow.original_submit(payload)
                flow.tracker.on_submit(seq, sim.now)
                return seq

        else:

            def timed_submit(payload, flow=flow, sim=sim):
                seq = flow.original_submit(payload)
                flow.submit_times[seq] = sim.now
                return seq

        if causal_rec is not None:
            plain_submit = timed_submit

            def timed_submit(
                payload, sim=sim, fid=fid, causal_rec=causal_rec,
                plain_submit=plain_submit,
            ):
                seq = plain_submit(payload)
                causal_rec.on_submit(seq, sim.now, flow=fid)
                return seq

        sender.submit = timed_submit

    @staticmethod
    def _restore_submit(flow) -> None:
        if flow.original_submit is None:
            return
        if flow.submit_was_instance_attr:
            flow.spec.sender.submit = flow.original_submit
        else:
            try:
                del flow.spec.sender.submit
            except AttributeError:
                pass

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @staticmethod
    def _link_stats(channel) -> dict:
        stats = channel.stats.as_dict()
        if hasattr(channel, "discarded"):  # framed link corruption counters
            stats["corrupted"] = channel.corrupted
            stats["discarded"] = channel.discarded
            stats["bytes_sent"] = channel.bytes_sent
        return stats

    def _collect(
        self, sim, forward_channel, reverse_channel, recorder, obs_session,
        causal_rec=None,
    ) -> SessionResult:
        arbiter = getattr(self, "_link_arbiter", None)
        flow_results: List[FlowResult] = []
        for flow in self.flows:
            spec = flow.spec
            sender_stats = spec.sender.stats.as_dict()
            controller = getattr(spec.sender, "_retx", None)
            if controller is not None:
                sender_stats["adaptive"] = controller.stats_dict()
                sender_stats["link_dead"] = getattr(
                    spec.sender, "link_dead", False
                )
            latencies = (
                flow.tracker.latencies()
                if flow.tracker is not None
                else flow.latencies
            )
            ordered_prefix = (
                flow.delivered_payloads
                == spec.source.submitted[: len(flow.delivered_payloads)]
            )
            flow_results.append(
                FlowResult(
                    flow=flow.index,
                    label=spec.label,
                    completed=flow.finished,
                    delivered=len(flow.delivered_payloads),
                    submitted=len(spec.source.submitted),
                    in_order=(
                        ordered_prefix
                        and len(flow.delivered_payloads)
                        == len(spec.source.submitted)
                    ),
                    ordered_prefix=ordered_prefix,
                    duration=sim.now,
                    sender_stats=sender_stats,
                    receiver_stats=spec.receiver.stats.as_dict(),
                    forward_stats=flow.forward_port.stats.as_dict(),
                    reverse_stats=flow.reverse_port.stats.as_dict(),
                    latencies=latencies,
                    timeout_period=(
                        getattr(spec.sender, "timeout_period", 0.0) or 0.0
                    ),
                    monitor=flow.monitor,
                    delivered_payloads=(
                        flow.delivered_payloads
                        if self.collect_payloads
                        else []
                    ),
                    queue_stats=(
                        arbiter.flow_stats(flow.index).as_dict()
                        if arbiter is not None
                        else {}
                    ),
                )
            )

        result = SessionResult(
            completed=all(flow.completed for flow in flow_results),
            duration=sim.now,
            delivered=sum(flow.delivered for flow in flow_results),
            submitted=sum(flow.submitted for flow in flow_results),
            in_order=all(flow.in_order for flow in flow_results),
            flows=flow_results,
            fairness=jain_fairness(
                [flow.delivered for flow in flow_results]
            ),
            forward_stats=self._link_stats(forward_channel),
            reverse_stats=self._link_stats(reverse_channel),
            arbiter_stats=(
                arbiter.stats_dict() if arbiter is not None else {}
            ),
            trace=recorder if self.trace else None,
            obs=obs_session,
        )
        if causal_rec is not None:
            causal_rec.on_fairness(result.fairness)
            for flow in flow_results:
                if flow.sender_stats.get("link_dead") and not any(
                    reason == "link_dead"
                    for _, reason, _ in causal_rec.triggers
                ):
                    causal_rec.trigger(
                        "link_dead", f"flow {flow.flow} reports link_dead"
                    )
            result.causal = causal_rec
            result.flight_path = causal_rec.close_flight()
            if obs_session is not None:
                obs_session.causal = causal_rec
        if obs_session is not None:
            self._finalize_obs(obs_session, result)
        return result

    def _finalize_obs(self, obs_session, result: SessionResult) -> None:
        """Session aggregates + per-flow gauges into the obs registry."""
        gauge = obs_session.registry.gauge(
            "flow_stat",
            "final per-flow counters",
            labelnames=("flow", "stat"),
        )
        for flow in result.flows:
            labels = {"flow": str(flow.flow)}
            gauge.labels(stat="delivered", **labels).set(flow.delivered)
            gauge.labels(stat="submitted", **labels).set(flow.submitted)
            gauge.labels(stat="retransmissions", **labels).set(
                flow.sender_stats.get("retransmissions", 0)
            )
            gauge.labels(stat="violations", **labels).set(flow.violations)
            gauge.labels(stat="completed", **labels).set(
                1.0 if flow.completed else 0.0
            )
        obs_session.registry.gauge(
            "session_fairness", "Jain fairness index over per-flow goodput"
        ).set(result.fairness)
        obs_session.registry.gauge(
            "session_flows", "flows hosted by this session"
        ).set(len(result.flows))
        if result.arbiter_stats:
            depth_gauge = obs_session.registry.gauge(
                "link_queue_depth",
                "peak arbiter queue occupancy per flow (frames)",
                labelnames=("flow",),
            )
            drops = obs_session.registry.counter(
                "link_drops_total",
                "arbiter droptail rejections per flow",
                labelnames=("flow",),
            )
            grants = obs_session.registry.counter(
                "arbiter_grants_total",
                "frames granted onto the link per flow",
                labelnames=("flow",),
            )
            for flow_id, stats in result.arbiter_stats["per_flow"].items():
                labels = {"flow": str(flow_id)}
                depth_gauge.labels(**labels).set(stats["max_depth"])
                drops.labels(**labels).inc(stats["dropped"])
                grants.labels(**labels).inc(stats["granted"])
        obs_session.finalize(result)


def run_flows(
    flows: Sequence[FlowSpec],
    forward: Optional[LinkSpec] = None,
    reverse: Optional[LinkSpec] = None,
    seed: int = 0,
    max_time: Optional[float] = None,
    max_events: int = 20_000_000,
    collect_payloads: bool = False,
    trace: bool = False,
    trace_capacity: Optional[int] = None,
    monitor_invariants: bool = False,
    obs: Any = False,
    obs_run_id: Optional[str] = None,
    obs_labels: Optional[dict] = None,
    obs_sample_invariants_every: int = 0,
    causal: bool = False,
    engine: str = "default",
    arbiter: Optional[ArbiterConfig] = None,
) -> SessionResult:
    """Run N flows over one shared link pair and measure the session.

    ``flows`` with exactly one entry delegates to
    :func:`~repro.sim.runner.run_transfer` — no mux, identical wiring,
    byte-identical results and decision trace (the returned session's
    ``transfer`` field carries the underlying
    :class:`~repro.sim.runner.TransferResult`).  With N >= 2 the flows
    share one forward and one reverse channel through a
    :class:`~repro.channel.mux.FlowMux` per direction.

    An *active* ``arbiter`` (finite rate) disables the N=1 delegation:
    a capacity-limited run needs the mux/arbiter wiring even for one
    flow, so it always goes through :class:`SessionHost`.
    """
    flows = list(flows)
    if not flows:
        raise ValueError("run_flows needs at least one FlowSpec")
    arbitrated = arbiter is not None and arbiter.active
    if len(flows) == 1 and not arbitrated:
        spec = flows[0]
        result = run_transfer(
            spec.sender,
            spec.receiver,
            spec.source,
            forward=forward,
            reverse=reverse,
            seed=seed,
            max_time=max_time,
            max_events=max_events,
            collect_payloads=collect_payloads,
            trace=trace,
            trace_capacity=trace_capacity,
            monitor_invariants=monitor_invariants,
            obs=obs,
            obs_run_id=obs_run_id,
            obs_labels=obs_labels,
            obs_sample_invariants_every=obs_sample_invariants_every,
            causal=causal,
            engine=engine,
        )
        return _session_from_transfer(spec, result)
    host = SessionHost(
        flows,
        forward=forward,
        reverse=reverse,
        seed=seed,
        max_time=max_time,
        max_events=max_events,
        collect_payloads=collect_payloads,
        trace=trace,
        trace_capacity=trace_capacity,
        monitor_invariants=monitor_invariants,
        obs=obs,
        obs_run_id=obs_run_id,
        obs_labels=obs_labels,
        obs_sample_invariants_every=obs_sample_invariants_every,
        causal=causal,
        engine=engine,
        arbiter=arbiter if arbitrated else None,
    )
    return host.run()


def session_to_transfer(session: SessionResult) -> TransferResult:
    """Flatten a session into the sweep runner's TransferResult shape.

    The N=1 path already carries its exact ``TransferResult``.  For
    N >= 2 the top-level sender/receiver stats are numeric sums across
    flows (aggregate retransmissions, acks, deliveries), the link stats
    are the shared channels' aggregates, and the per-flow rows plus the
    fairness index ride the ``per_flow`` / ``fairness`` fields.
    """
    if session.transfer is not None:
        transfer = session.transfer
        transfer.per_flow = [flow.as_dict() for flow in session.flows]
        transfer.fairness = session.fairness
        return transfer

    def summed(dicts: List[dict]) -> dict:
        out: Dict[str, Any] = {}
        for stats in dicts:
            for key, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    out[key] = out.get(key, 0) + value
        return out

    latencies: List[float] = []
    for flow in session.flows:
        latencies.extend(flow.latencies)
    violations: List[str] = []
    monitored = False
    for flow in session.flows:
        if flow.monitor is not None:
            monitored = True
            violations.extend(
                f"flow {flow.flow}: {violation}"
                for violation in flow.monitor.violations
            )
    monitor = None
    if monitored:
        from repro.perf.sweep import MonitorSummary  # cycle guard

        monitor = MonitorSummary(violations)
    return TransferResult(
        completed=session.completed,
        duration=session.duration,
        delivered=session.delivered,
        submitted=session.submitted,
        in_order=session.in_order,
        ordered_prefix=all(
            flow.ordered_prefix for flow in session.flows
        ),
        sender_stats=summed([flow.sender_stats for flow in session.flows]),
        receiver_stats=summed(
            [flow.receiver_stats for flow in session.flows]
        ),
        forward_stats=session.forward_stats,
        reverse_stats=session.reverse_stats,
        trace=session.trace,
        timeout_period=max(
            flow.timeout_period for flow in session.flows
        ),
        monitor=monitor,
        latencies=latencies,
        obs=session.obs,
        obs_path=session.obs_path,
        causal=session.causal,
        flight_path=session.flight_path,
        per_flow=[flow.as_dict() for flow in session.flows],
        fairness=session.fairness,
        arbiter_stats=session.arbiter_stats,
    )
