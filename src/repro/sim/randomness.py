"""Seeded random-number streams for reproducible simulations.

Each stochastic component of a simulation (channel loss, channel delay,
workload arrivals, ...) draws from its own named stream so that changing
one component's consumption pattern does not perturb the others.  This is
the standard "common random numbers" discipline for comparative
discrete-event studies: when two protocols are simulated with the same
master seed, their channels see the same loss and delay draws, which
sharpens every comparison in the E2/E3/E10 sweeps.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["RandomStreams", "stream_seed"]


def stream_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name.

    Uses SHA-256 so that stream seeds are uncorrelated even for adjacent
    master seeds and similar names (``random.Random`` with nearby integer
    seeds can produce correlated low-order behaviour).
    """
    digest = hashlib.sha256(f"{master_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, named ``random.Random`` streams.

    >>> streams = RandomStreams(42)
    >>> loss_rng = streams.get("channel.loss")
    >>> delay_rng = streams.get("channel.delay")

    Asking for the same name twice returns the same stream object, so
    components can be wired lazily without accidental stream duplication.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(stream_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family of streams (e.g. per-replication)."""
        return RandomStreams(stream_seed(self.master_seed, f"spawn/{name}"))

    def names(self) -> Iterator[str]:
        """Names of all streams created so far."""
        return iter(sorted(self._streams))
