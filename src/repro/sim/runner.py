"""End-to-end transfer harness: wire endpoints, channels, and a source.

:func:`run_transfer` is the one entry point every experiment, example, and
integration test uses: it builds the two channels from :class:`LinkSpec`
descriptions, attaches a sender/receiver pair and a traffic source,
derives a provably safe timeout period when the sender has none, runs the
simulation to completion (or a time/event budget), and returns a
:class:`TransferResult` with full statistics and the end-to-end
correctness verdict (exactly-once, in-order delivery of every submitted
payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.channel.channel import Channel
from repro.channel.delay import ConstantDelay, DelayModel
from repro.channel.impairments import LossModel, NoLoss
from repro.channel.sampling import maybe_block
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.sim.engine import Simulator, make_simulator
from repro.sim.randomness import RandomStreams
from repro.trace.recorder import NullRecorder, TraceRecorder
from repro.workloads.sources import Source

__all__ = ["LinkSpec", "TransferResult", "run_transfer"]


@dataclass
class LinkSpec:
    """Description of one unidirectional link.

    With ``bit_error_rate > 0`` the link carries checksummed byte frames
    (see :mod:`repro.wire`): messages are serialized, bits flip in
    transit, and frames failing CRC validation are discarded — corruption
    becomes clean loss, as on a real link.  Framed links require byte
    payloads.
    """

    delay: Optional[DelayModel] = None  # default: ConstantDelay(1.0)
    loss: Optional[LossModel] = None  # default: NoLoss()
    max_lifetime: Optional[float] = None  # channel aging bound
    bit_error_rate: float = 0.0  # frames the link, flips bits in transit
    duplicate_probability: float = 0.0  # assumption-boundary ablations only

    def build(self, sim: Simulator, rng, name: str):
        """Build the channel stack for this link, named ``name``.

        Every channel object gets a unique, stable label: a framed link
        presents ``name`` on the wrapper while the raw byte channel
        underneath is labelled ``name.raw``, so traces and obs series
        never see two distinct channel objects sharing one label (flow
        ports over a built link extend it the same way: ``name.f<id>``).
        """
        framed = self.bit_error_rate > 0.0
        channel = Channel(
            sim,
            delay=self.delay if self.delay is not None else ConstantDelay(1.0),
            loss=self.loss if self.loss is not None else NoLoss(),
            rng=rng,
            max_lifetime=self.max_lifetime,
            duplicate_probability=self.duplicate_probability,
            name=f"{name}.raw" if framed else name,
        )
        if framed:
            from repro.wire.framed import FramedChannel  # cycle guard

            return FramedChannel(
                channel, self.bit_error_rate, rng=rng, name=name
            )
        return channel


@dataclass
class TransferResult:
    """Everything measured during one simulated transfer."""

    completed: bool  # source exhausted, all acked, all delivered
    duration: float  # virtual time at completion (or cutoff)
    delivered: int
    submitted: int
    in_order: bool  # payloads arrived exactly once, in order
    sender_stats: dict = field(default_factory=dict)
    receiver_stats: dict = field(default_factory=dict)
    forward_stats: dict = field(default_factory=dict)
    reverse_stats: dict = field(default_factory=dict)
    delivered_payloads: List[Any] = field(default_factory=list)
    trace: Any = None
    timeout_period: float = 0.0
    monitor: Any = None  # InvariantMonitor when monitor_invariants=True
    latencies: List[float] = field(default_factory=list)  # submit -> deliver
    fault_stats: dict = field(default_factory=dict)  # injected-fault counters
    obs: Any = None  # Observability session when obs= was requested
    obs_path: Optional[str] = None  # exported .jsonl (sweep-run telemetry)
    per_flow: List[dict] = field(default_factory=list)  # multi-flow rows
    fairness: Optional[float] = None  # Jain index when flows share the link
    ordered_prefix: bool = True  # delivered payloads form an in-order prefix
    stabilization: Optional[dict] = None  # corruption-recovery verdict
    causal: Any = None  # CausalRecorder when causal= was requested
    flight_path: Optional[str] = None  # flight dump, when a trigger fired
    arbiter_stats: dict = field(default_factory=dict)  # link-arbiter counters

    def latency_percentile(self, q: float) -> float:
        """Submit-to-deliver latency percentile (requires latencies)."""
        from repro.analysis.stats import percentile  # cycle guard

        return percentile(self.latencies, q)

    @property
    def mean_latency(self) -> float:
        """Mean submit-to-deliver latency across all payloads."""
        if not self.latencies:
            raise ValueError("no latencies recorded")
        return sum(self.latencies) / len(self.latencies)

    @property
    def throughput(self) -> float:
        """Delivered payloads per unit virtual time."""
        return self.delivered / self.duration if self.duration > 0 else 0.0

    @property
    def goodput_efficiency(self) -> float:
        """Delivered payloads per data transmission (retransmission waste)."""
        sent = self.sender_stats.get("data_sent", 0)
        return self.delivered / sent if sent else 0.0

    @property
    def acks_per_message(self) -> float:
        """Acknowledgment messages per delivered payload (E4 metric)."""
        acks = self.receiver_stats.get("acks_sent", 0)
        return acks / self.delivered if self.delivered else 0.0

    def summary(self) -> str:
        status = "completed" if self.completed else "INCOMPLETE"
        order = "in-order" if self.in_order else "ORDER VIOLATION"
        return (
            f"{status}/{order}: {self.delivered}/{self.submitted} delivered in "
            f"{self.duration:.2f}tu, throughput={self.throughput:.4f}/tu, "
            f"efficiency={self.goodput_efficiency:.3f}, "
            f"acks/msg={self.acks_per_message:.3f}"
        )


def _derive_timeout(sender, receiver, forward: Channel, reverse: Channel) -> None:
    """Give the sender a provably safe timeout period if it has none.

    Also fills in the sender's ``reverse_lifetime`` (the coverage-release
    drain wait of the per-message-safe mode) with the tight channel bound
    when the sender has the attribute and no explicit value.
    """
    from repro.protocols.blockack import safe_timeout_period  # cycle guard

    reverse_bound = reverse.effective_max_lifetime
    if (
        hasattr(sender, "reverse_lifetime")
        and sender.reverse_lifetime is None
        and reverse_bound is not None
    ):
        sender.reverse_lifetime = reverse_bound + 0.05
    if getattr(sender, "timeout_period", None) is not None:
        return

    forward_bound = forward.effective_max_lifetime
    if forward_bound is None or reverse_bound is None:
        raise ValueError(
            "cannot derive a safe timeout: a channel has unbounded message "
            "lifetime; set LinkSpec.max_lifetime (the paper's aging "
            "mechanism) or pass an explicit timeout_period"
        )
    ack_latency = 0.0
    policy = getattr(receiver, "ack_policy", None)
    if policy is not None:
        ack_latency = policy.max_latency
    sender.timeout_period = safe_timeout_period(
        forward_bound, reverse_bound, ack_latency, margin=0.05
    )


def run_transfer(
    sender: SenderEndpoint,
    receiver: ReceiverEndpoint,
    source: Source,
    forward: Optional[LinkSpec] = None,
    reverse: Optional[LinkSpec] = None,
    seed: int = 0,
    max_time: Optional[float] = None,
    max_events: int = 20_000_000,
    collect_payloads: bool = False,
    trace: bool = False,
    trace_capacity: Optional[int] = None,
    monitor_invariants: bool = False,
    record_channel_drops: bool = False,
    fault_plan: Optional[Any] = None,
    obs: Any = False,
    obs_run_id: Optional[str] = None,
    obs_labels: Optional[dict] = None,
    obs_sample_invariants_every: int = 0,
    causal: bool = False,
    engine: str = "default",
) -> TransferResult:
    """Run one complete transfer and measure it.

    The simulation stops when the source is exhausted, every payload is
    acknowledged at the sender, and the channels have drained — or when
    ``max_time``/``max_events`` is hit, in which case the result is marked
    incomplete.

    With ``monitor_invariants=True`` an
    :class:`~repro.verify.runtime.InvariantMonitor` watches every channel
    event for breaches of the paper's invariant (returned as
    ``result.monitor``); safe configurations stay clean over arbitrarily
    long adversarial runs.

    ``fault_plan`` (a :class:`~repro.robustness.faults.FaultPlan`)
    installs scripted frame corruption, brownout loss ramps, and endpoint
    crash/restart on top of the links; injection counters come back in
    ``result.fault_stats``.  A sender running with ``adaptive=`` config
    additionally reports its controller under
    ``result.sender_stats["adaptive"]``.  A plan carrying
    :class:`~repro.robustness.corruption.StateCorruption` events attaches
    a :class:`~repro.verify.runtime.StabilizationMonitor` automatically
    and reports the recovery verdict (``converged`` / ``degraded`` /
    ``diverged``), repair counts, and time-to-reconvergence under
    ``result.stabilization``.

    ``obs`` turns on the unified telemetry layer (:mod:`repro.obs`):
    pass True for a fresh per-run :class:`~repro.obs.session.Observability`
    (optionally shaped by ``obs_run_id`` / ``obs_labels`` /
    ``obs_sample_invariants_every``), or an existing session to reuse its
    registry.  The session instruments the engine, both channels, the
    endpoints (per-seq lifecycle spans via the trace-record tee), and the
    adaptive controller; ``result.latencies`` then comes from the span
    tracker instead of the runner's submit-wrapping bookkeeping, and the
    session is returned as ``result.obs`` for snapshotting/export.  With
    ``obs`` falsy (the default) none of this code runs and no telemetry
    objects are allocated.

    ``causal`` turns on the causal diagnosis layer
    (:mod:`repro.obs.causal`): every protocol-relevant event becomes a
    node of a per-seq causal graph held in a bounded flight-recorder
    ring, delivery latencies are decomposed into exact
    queue/timer/retransmission/propagation components
    (``result.causal.attributions``), and an anomaly trigger (link-dead,
    degraded/diverged stabilization, deep RTO backoff, invariant-probe
    violation) dumps the ring to ``results/obs/flight/<run_id>.jsonl``
    (``result.flight_path``).  Independent of ``obs`` and composable
    with it; the graph never perturbs rng or scheduling, so decision
    traces are bit-identical with the layer on or off.

    ``engine`` selects the event-loop implementation (see
    :data:`repro.sim.engine.ENGINES`): ``"default"`` is the binary-heap
    engine whose golden decision traces are pinned byte-for-byte;
    ``"fast"`` is the calendar-queue engine with batched same-timestamp
    drain and block-sampled channel randomness — decision-trace
    equivalent (the channel streams are bit-identical by construction)
    but measurably faster on event-dense workloads.
    """
    sim = make_simulator(engine)
    streams = RandomStreams(seed)

    causal_rec = None
    if causal:
        from repro.obs.causal import CausalRecorder, CausalTee  # cycle guard

        causal_rec = CausalRecorder(
            sim, run_id=obs_run_id or "transfer", labels=obs_labels
        )
        sim.timer_observer = causal_rec.timer_observer()

    obs_session = None
    if obs:
        from repro.obs.session import Observability  # cycle guard

        if isinstance(obs, Observability):
            obs_session = obs
        else:
            obs_session = Observability(
                run_id=obs_run_id or "transfer",
                labels=obs_labels,
                sample_invariants_every=obs_sample_invariants_every,
            )
        obs_session.attach_sim(sim)

    forward_spec = forward if forward is not None else LinkSpec()
    reverse_spec = reverse if reverse is not None else LinkSpec()
    forward_channel = forward_spec.build(
        sim, maybe_block(streams.get("channel.forward"), engine), "SR"
    )
    reverse_channel = reverse_spec.build(
        sim, maybe_block(streams.get("channel.reverse"), engine), "RS"
    )
    if obs_session is not None:
        obs_session.attach_channel(forward_channel, "SR")
        obs_session.attach_channel(reverse_channel, "RS")
    if causal_rec is not None:
        forward_channel.add_observer(causal_rec.channel_observer("SR"))
        reverse_channel.add_observer(causal_rec.channel_observer("RS"))
        causal_rec.watch_endpoints(("sender", sender), ("receiver", receiver))

    recorder = (
        TraceRecorder(sim, capacity=trace_capacity) if trace else NullRecorder()
    )
    if causal_rec is not None:
        # causal tee first, obs tee (below) on top: records the probe
        # emits through the obs recorder still reach the causal graph
        recorder = CausalTee(sim, causal_rec, recorder)
    if obs_session is not None:
        # the tee feeds every endpoint trace record into the span tracker
        # before forwarding; endpoints need no changes to be instrumented
        recorder = obs_session.make_recorder(sim, recorder)
    if trace and record_channel_drops:
        # channel loss/aging events appear in the trace as DROP records —
        # required by the refinement replay (repro.verify.refinement)
        from repro.core.messages import BlockAck, DataMessage
        from repro.trace.events import EventKind as _EK

        def drop_observer(channel_name):
            def observe(kind, message):
                if kind not in ("lose", "age"):
                    return
                if isinstance(message, DataMessage):
                    recorder.record(
                        f"channel:{channel_name}", _EK.DROP, seq=message.seq
                    )
                elif isinstance(message, BlockAck):
                    recorder.record(
                        f"channel:{channel_name}", _EK.DROP,
                        seq=message.lo, seq_hi=message.hi,
                    )

            return observe

        forward_channel.add_observer(drop_observer("SR"))
        reverse_channel.add_observer(drop_observer("RS"))

    delivered_payloads: List[Any] = []
    delivered_seqs: List[int] = []
    submit_times: dict = {}
    latencies: List[float] = []

    # submit is wrapped (to timestamp each payload for the latency stats)
    # for the duration of this call only; the original binding is restored
    # on exit so a sender endpoint reused across transfers does not stack
    # timed_submit wrappers.  With observability on the timestamps go to
    # the span tracker (per-seq lifecycle spans) and latencies are derived
    # from the spans; otherwise the original dict bookkeeping runs.
    submit_was_instance_attr = "submit" in vars(sender)
    original_submit = sender.submit

    if obs_session is not None:
        tracker = obs_session.span_tracker

        def timed_submit(payload: Any) -> int:
            seq = original_submit(payload)
            tracker.on_submit(seq, sim.now)
            return seq

        def on_deliver(seq: int, payload: Any) -> None:
            delivered_seqs.append(seq)
            delivered_payloads.append(payload)  # kept for the ordering check
            # idempotent: protocols that emit DELIVER trace records have
            # already stamped this span through the recorder tee
            tracker.on_deliver(seq, sim.now)

    else:

        def timed_submit(payload: Any) -> int:
            seq = original_submit(payload)
            submit_times[seq] = sim.now
            return seq

        def on_deliver(seq: int, payload: Any) -> None:
            delivered_seqs.append(seq)
            delivered_payloads.append(payload)  # kept for the ordering check
            submitted_at = submit_times.pop(seq, None)
            if submitted_at is not None:
                latencies.append(sim.now - submitted_at)

    if causal_rec is not None:
        plain_submit, plain_deliver = timed_submit, on_deliver

        def timed_submit(payload: Any) -> int:
            seq = plain_submit(payload)
            causal_rec.on_submit(seq, sim.now)
            return seq

        def on_deliver(seq: int, payload: Any) -> None:
            plain_deliver(seq, payload)
            # idempotent with the DELIVER trace record (attribution keyed)
            causal_rec.on_deliver(seq, sim.now)

    receiver.on_deliver = on_deliver
    _derive_timeout(sender, receiver, forward_channel, reverse_channel)

    def wire_domain() -> Optional[int]:
        numbering = getattr(sender, "numbering", None)
        domain = numbering.domain_size if numbering is not None else None
        if domain is None and hasattr(sender, "book"):
            domain = sender.book.domain.n  # byte-exact bounded endpoints
        return domain

    monitor = None
    stab_monitor = None
    if fault_plan is not None and getattr(fault_plan, "corruptions", ()):
        # a corrupting fault plan always gets a StabilizationMonitor (the
        # convergence watchdog's scorekeeper); it subsumes the plain
        # invariant monitor, so monitor_invariants shares the instance
        from repro.verify.runtime import StabilizationMonitor  # cycle guard

        stab_monitor = StabilizationMonitor(
            sender, receiver, forward_channel, reverse_channel,
            domain=wire_domain(),
        )
        fault_plan.monitor = stab_monitor
        if monitor_invariants:
            monitor = stab_monitor
    elif monitor_invariants:
        from repro.verify.runtime import InvariantMonitor  # cycle guard

        monitor = InvariantMonitor(
            sender, receiver, forward_channel, reverse_channel,
            domain=wire_domain(),
        )
    if obs_session is not None:
        obs_session.install_probe(
            sender, receiver, forward_channel, reverse_channel,
            domain=wire_domain(),
        )

    sender.attach(sim, forward_channel, recorder)
    receiver.attach(sim, reverse_channel, recorder)
    if obs_session is not None:
        controller = getattr(sender, "_retx", None)  # built during attach
        if controller is not None:
            obs_session.attach_controller(controller)
    if causal_rec is not None:
        controller = getattr(sender, "_retx", None)
        if controller is not None:
            # chains on top of any obs instruments bound just above
            causal_rec.attach_controller(controller)
    forward_channel.connect(receiver.on_message)
    reverse_channel.connect(sender.on_message)
    if (
        getattr(sender, "timeout_mode", None) == "oracle"
        and hasattr(sender, "enable_oracle")
    ):
        sender.enable_oracle(forward_channel, reverse_channel, receiver)
    if fault_plan is not None:
        if causal_rec is not None:
            # fault nodes + flush-on-fault-boundary for a streaming dump
            fault_plan.observer = causal_rec.fault_observer()
        # must come after the connects above: the plan re-connects each
        # channel through its corruption/outage interceptor
        fault_plan.install(
            sim, forward_channel, reverse_channel, sender, receiver
        )

    def finished() -> bool:
        return (
            source.exhausted
            and sender.all_acknowledged
            and len(delivered_payloads) >= source.total
        )

    def unfinished() -> bool:
        return not (
            source.exhausted
            and sender.all_acknowledged
            and len(delivered_payloads) >= source.total
        )

    sender.submit = timed_submit
    try:
        source.attach(sim, sender)
        # drain inside the engine (one predicate call per event) instead
        # of sim.step() + finished() through Python-level indirection
        sim.run_while(unfinished, max_time=max_time, max_events=max_events)
    finally:
        if submit_was_instance_attr:
            sender.submit = original_submit
        else:
            try:
                del sender.submit
            except AttributeError:
                pass
        if fault_plan is not None:
            # put the channels' own loss models back: a plan-wrapped
            # brownout left installed (e.g. one scheduled around a
            # crash/restart) would survive a later Channel.reset and
            # replay a different rng stream on a reused channel
            fault_plan.uninstall()

    forward_stats = forward_channel.stats.as_dict()
    reverse_stats = reverse_channel.stats.as_dict()
    for channel, stats in (
        (forward_channel, forward_stats),
        (reverse_channel, reverse_stats),
    ):
        if hasattr(channel, "discarded"):  # framed link: corruption counters
            stats["corrupted"] = channel.corrupted
            stats["discarded"] = channel.discarded
            stats["bytes_sent"] = channel.bytes_sent

    sender_stats = sender.stats.as_dict()
    controller = getattr(sender, "_retx", None)
    if controller is not None:
        sender_stats["adaptive"] = controller.stats_dict()
        sender_stats["link_dead"] = getattr(sender, "link_dead", False)

    if obs_session is not None:
        # span-derived submit->deliver latencies (seq order; identical to
        # the delivery-order list for these in-order protocols)
        latencies = obs_session.span_tracker.latencies()

    in_order = delivered_payloads == source.submitted[: len(delivered_payloads)]
    result = TransferResult(
        completed=finished(),
        duration=sim.now,
        delivered=len(delivered_payloads),
        submitted=len(source.submitted),
        in_order=in_order and len(delivered_payloads) == len(source.submitted),
        ordered_prefix=in_order,
        sender_stats=sender_stats,
        receiver_stats=receiver.stats.as_dict(),
        forward_stats=forward_stats,
        reverse_stats=reverse_stats,
        delivered_payloads=delivered_payloads if collect_payloads else [],
        trace=recorder if trace else None,
        timeout_period=getattr(sender, "timeout_period", 0.0) or 0.0,
        monitor=monitor,
        latencies=latencies,
        fault_stats=fault_plan.stats.as_dict() if fault_plan is not None else {},
        obs=obs_session,
    )
    if stab_monitor is not None:
        result.stabilization = stab_monitor.summary(
            result.completed, result.in_order
        )
    if causal_rec is not None:
        if result.stabilization is not None:
            causal_rec.on_stabilization(result.stabilization["verdict"])
        if sender_stats.get("link_dead") and not any(
            reason == "link_dead" for _, reason, _ in causal_rec.triggers
        ):
            # backstop: a sender can go link-dead without routing the
            # verdict through controller instruments (custom endpoints)
            causal_rec.trigger("link_dead", "sender reports link_dead")
        result.causal = causal_rec
        result.flight_path = causal_rec.close_flight()
        if obs_session is not None:
            obs_session.causal = causal_rec  # attributions ride the export
    if obs_session is not None:
        obs_session.finalize(result)
    return result
