"""Restartable timers on top of the event engine.

Protocol endpoints need timers that can be started, stopped, and restarted
many times (retransmission timers above all).  Wrapping raw
:class:`~repro.sim.engine.Event` handles in a :class:`Timer` keeps the
endpoint code free of cancel-and-reschedule boilerplate and of the classic
bug where a stale timer event fires after the timer was logically stopped.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Timer", "TimerBank", "AdaptiveTimer", "AdaptiveTimerBank"]


class Timer:
    """A single restartable one-shot timer.

    The callback fires once, ``period`` after the most recent
    :meth:`start`/:meth:`restart`.  Stopping or restarting cancels the
    in-flight event, so the callback can never fire for a superseded arming.

    When the owning simulator carries a ``timer_observer`` attribute
    (see :class:`~repro.sim.engine.Simulator`), every arm, cancel, and
    fire is reported as ``observer(op, timer)`` with ``op`` in
    ``"arm"``/``"cancel"``/``"fire"`` — the seam the causal recorder
    uses to chain timer-fire → retransmit edges.  The cost when no
    observer is set is one attribute read per operation; the engines'
    event loops are untouched, so schedules are identical either way.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[..., None],
        *args: Any,
        name: str = "timer",
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self._expires_at: Optional[float] = None
        self.name = name
        self.key: Any = None  # TimerBank stamps its key here

    @property
    def running(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._event is not None and self._event.pending

    @property
    def expires_at(self) -> Optional[float]:
        """Virtual time at which the timer will fire, or None if idle."""
        return self._expires_at if self.running else None

    def start(self, period: float) -> None:
        """Arm the timer ``period`` from now.  Restarts if already running."""
        self.stop()
        self._expires_at = self._sim.now + period
        self._event = self._sim.schedule(period, self._fire)
        observer = getattr(self._sim, "timer_observer", None)
        if observer is not None:
            observer("arm", self)

    def restart(self, period: float) -> None:
        """Alias of :meth:`start`; reads better at call sites that re-arm."""
        self.start(period)

    def stop(self) -> None:
        """Disarm the timer.  Safe to call when idle."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
            observer = getattr(self._sim, "timer_observer", None)
            if observer is not None:
                observer("cancel", self)
        self._expires_at = None

    def _fire(self) -> None:
        self._event = None
        self._expires_at = None
        observer = getattr(self._sim, "timer_observer", None)
        if observer is not None:
            observer("fire", self)
        self._callback(*self._args)


class TimerBank:
    """A keyed collection of independent timers.

    The sophisticated-timeout sender (paper Section IV) keeps one
    retransmission timer per outstanding sequence number; a ``TimerBank``
    maps keys (sequence numbers) to timers and creates them on demand.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[Any], None],
        name: str = "timerbank",
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._timers: dict[Any, Timer] = {}
        self.name = name

    def start(self, key: Any, period: float) -> None:
        """Arm (or re-arm) the timer for ``key``."""
        timer = self._timers.get(key)
        if timer is None:
            timer = Timer(
                self._sim, self._callback, key, name=f"{self.name}[{key!r}]"
            )
            timer.key = key
            self._timers[key] = timer
        timer.start(period)

    def stop(self, key: Any) -> None:
        """Disarm the timer for ``key``.  Safe if the key is unknown."""
        timer = self._timers.get(key)
        if timer is not None:
            timer.stop()

    def stop_all(self) -> None:
        """Disarm every timer in the bank."""
        for timer in self._timers.values():
            timer.stop()

    def running(self, key: Any) -> bool:
        """True if the timer for ``key`` is armed."""
        timer = self._timers.get(key)
        return timer is not None and timer.running

    def active_keys(self) -> list:
        """Keys whose timers are currently armed."""
        return [key for key, timer in self._timers.items() if timer.running]

    def prune(self) -> None:
        """Drop idle timers to keep the bank small on long runs."""
        self._timers = {
            key: timer for key, timer in self._timers.items() if timer.running
        }


class AdaptiveTimer(Timer):
    """A timer whose period is supplied by a callable at each arming.

    Adaptive-retransmission senders arm timers with a period that moves
    run to run (RTO estimate times backoff factor).  Rather than thread
    the period through every call site, the timer owns a ``period_fn``
    consulted at arm time: :meth:`start`/:meth:`restart` with no
    argument ask ``period_fn()``; passing an explicit period still
    works, so an ``AdaptiveTimer`` with ``period_fn=lambda: T`` is a
    drop-in :class:`Timer` with a default period.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[..., None],
        *args: Any,
        period_fn: Callable[[], float],
        name: str = "timer",
    ) -> None:
        super().__init__(sim, callback, *args, name=name)
        self._period_fn = period_fn

    def start(self, period: Optional[float] = None) -> None:
        """Arm for ``period`` — or for ``period_fn()`` when omitted."""
        super().start(period if period is not None else self._period_fn())

    def restart(self, period: Optional[float] = None) -> None:
        """Alias of :meth:`start`; reads better at re-arming call sites."""
        self.start(period)


class AdaptiveTimerBank(TimerBank):
    """A :class:`TimerBank` whose per-key periods come from a callable.

    ``period_fn(key)`` is consulted whenever :meth:`start` is called
    without an explicit period, letting each key's timer back off
    independently.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[Any], None],
        period_fn: Callable[[Any], float],
        name: str = "timerbank",
    ) -> None:
        super().__init__(sim, callback, name=name)
        self._period_fn = period_fn

    def start(self, key: Any, period: Optional[float] = None) -> None:
        """Arm (or re-arm) ``key`` — for ``period_fn(key)`` when omitted."""
        super().start(key, period if period is not None else self._period_fn(key))
