"""Public conformance kit for third-party endpoint implementations."""

from repro.testing.conformance import SCENARIOS, ConformanceError, check_conformance

__all__ = ["check_conformance", "ConformanceError", "SCENARIOS"]
