"""Conformance kit: validate any sender/receiver pair against the spec.

A library that defines a protocol interface should ship the tests that
define *conforming behaviour*.  :func:`check_conformance` takes a factory
producing a matched ``(SenderEndpoint, ReceiverEndpoint)`` pair and runs
it through the battery every implementation in this repository passes:

1.  **lossless delivery** — every payload exactly once, in order, on a
    perfect FIFO channel, with zero retransmissions;
2.  **pipelining** — a window of ``w`` sustains at least ``0.8 * w/RTT``
    on a long transfer (no accidental stop-and-wait);
3.  **loss recovery** — exactly-once in-order delivery with Bernoulli
    loss on both channels;
4.  **reorder tolerance** — correctness under heavy delay jitter
    (implementations may pay throughput, not correctness);
5.  **combined adversity soak** — loss + jitter across several seeds;
6.  **quiescence** — after completion the endpoints stop transmitting
    (no timer leaks: the event queue drains).

Use it in your own test suite::

    from repro.testing import check_conformance

    def test_my_protocol_conforms():
        check_conformance(lambda: (MySender(8), MyReceiver(8)), window=8)

Each failure raises :class:`ConformanceError` naming the scenario.  Pass
``reorder_tolerant=False`` for protocols that are *documented* to degrade
under reorder (go-back-N passes correctness but would fail a throughput
gate, so the reorder scenario only checks correctness anyway).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

__all__ = ["check_conformance", "ConformanceError", "SCENARIOS"]

PairFactory = Callable[[], Tuple[SenderEndpoint, ReceiverEndpoint]]

SCENARIOS = (
    "lossless",
    "pipelining",
    "loss-recovery",
    "reorder-tolerance",
    "adversity-soak",
    "quiescence",
)


class ConformanceError(AssertionError):
    """An implementation failed one conformance scenario."""

    def __init__(self, scenario: str, detail: str) -> None:
        self.scenario = scenario
        super().__init__(f"[{scenario}] {detail}")


def _run(factory: PairFactory, total, forward, reverse, seed, max_time=10_000.0):
    """One scenario run.

    ``max_time`` doubles as a loose liveness gate: a conforming
    implementation finishes these transfers in well under 1000 time
    units, so 10k leaves an order of magnitude of slack while still
    failing implementations whose recovery effectively never happens.
    """
    sender, receiver = factory()
    return run_transfer(
        sender, receiver, GreedySource(total),
        forward=forward, reverse=reverse, seed=seed, max_time=max_time,
    )


def _require(condition: bool, scenario: str, detail: str) -> None:
    if not condition:
        raise ConformanceError(scenario, detail)


def check_conformance(
    factory: PairFactory,
    window: int,
    total: int = 200,
    seeds: Sequence[int] = (1, 2, 3),
    loss: float = 0.08,
    check_pipelining: bool = True,
) -> None:
    """Run the full battery; raises :class:`ConformanceError` on failure.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a *fresh* matched pair.
    window:
        The pair's window size (used for the pipelining bound).
    total:
        Messages per scenario.
    seeds:
        Seeds for the adversity soak.
    loss:
        Loss probability for the recovery scenarios.
    check_pipelining:
        Disable for protocols intentionally slower than the window bound
        (e.g. Stenning with a tight domain).
    """
    # 1. lossless delivery, zero waste
    result = _run(
        factory, total,
        LinkSpec(delay=ConstantDelay(1.0)), LinkSpec(delay=ConstantDelay(1.0)),
        seed=0,
    )
    _require(result.completed, "lossless", f"did not complete: {result.summary()}")
    _require(result.in_order, "lossless", f"order violated: {result.summary()}")
    _require(
        result.sender_stats.get("retransmissions", 0) == 0,
        "lossless",
        "retransmitted on a perfect channel",
    )

    # 2. pipelining
    if check_pipelining:
        bound = window / 2.0  # RTT = 2 on unit links
        _require(
            result.throughput >= 0.8 * min(bound, total / 10),
            "pipelining",
            f"throughput {result.throughput:.3f} below 80% of w/RTT={bound:.2f}",
        )

    # 3. loss recovery
    lossy = lambda: LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(loss))
    result = _run(factory, total, lossy(), lossy(), seed=1)
    _require(
        result.completed and result.in_order,
        "loss-recovery",
        f"failed under {loss:.0%} loss: {result.summary()}",
    )

    # 4. reorder tolerance (correctness only)
    jitter = lambda: LinkSpec(delay=UniformDelay(0.2, 1.8))
    result = _run(factory, total, jitter(), jitter(), seed=2)
    _require(
        result.completed and result.in_order,
        "reorder-tolerance",
        f"failed under heavy jitter: {result.summary()}",
    )

    # 5. combined adversity soak
    for seed in seeds:
        both = lambda: LinkSpec(
            delay=UniformDelay(0.3, 1.7), loss=BernoulliLoss(loss)
        )
        result = _run(factory, total, both(), both(), seed=seed)
        _require(
            result.completed and result.in_order,
            "adversity-soak",
            f"seed {seed}: {result.summary()}",
        )

    # 6. quiescence: the completed run's event queue must have drained —
    # run_transfer stops at completion, so re-run a short transfer and
    # drain manually
    from repro.sim.engine import Simulator
    from repro.sim.randomness import RandomStreams

    sim = Simulator()
    streams = RandomStreams(9)
    forward = LinkSpec(delay=ConstantDelay(1.0)).build(sim, streams.get("f"), "SR")
    reverse = LinkSpec(delay=ConstantDelay(1.0)).build(sim, streams.get("r"), "RS")
    sender, receiver = factory()
    if getattr(sender, "timeout_period", "missing") is None:
        sender.timeout_period = 2.1
    if getattr(sender, "reverse_lifetime", "missing") is None:
        sender.reverse_lifetime = 1.0
    sender.attach(sim, forward)
    receiver.attach(sim, reverse)
    forward.connect(receiver.on_message)
    reverse.connect(sender.on_message)
    if (
        getattr(sender, "timeout_mode", None) == "oracle"
        and hasattr(sender, "enable_oracle")
    ):
        sender.enable_oracle(forward, reverse, receiver)
    source = GreedySource(10)
    source.attach(sim, sender)
    sim.run(max_events=100_000)
    _require(
        sender.all_acknowledged,
        "quiescence",
        "drained event queue but transfer incomplete",
    )
    _require(
        sim.pending_count == 0,
        "quiescence",
        f"{sim.pending_count} timer(s) still armed after completion",
    )
