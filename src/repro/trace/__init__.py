"""Structured protocol traces: recording, filtering, equivalence checking."""

from repro.trace.events import EventKind, TraceEvent
from repro.trace.recorder import NullRecorder, TraceRecorder, decision_diff

__all__ = [
    "EventKind",
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "decision_diff",
]
