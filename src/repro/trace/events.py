"""Structured protocol trace events.

A trace is a list of :class:`TraceEvent` records describing everything a
protocol endpoint or channel did, in virtual-time order.  Traces serve
three masters:

* debugging — ``print(recorder.format())`` reads like a protocol analyser;
* the bounded-equivalence experiment (E7) — two protocol variants run under
  identical schedules must produce *identical decision traces* (modulo the
  wire encoding of sequence numbers);
* tests — asserting on trace shapes is often clearer than poking at
  endpoint internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

__all__ = ["EventKind", "TraceEvent"]


class EventKind(Enum):
    """What happened."""

    SEND_DATA = "send_data"  # sender put a (new) data message on the wire
    RESEND_DATA = "resend_data"  # sender retransmitted after a timeout
    RECV_DATA = "recv_data"  # receiver got a data message
    SEND_ACK = "send_ack"  # receiver put an acknowledgment on the wire
    RESEND_ACK = "resend_ack"  # receiver re-acked a duplicate data message
    RECV_ACK = "recv_ack"  # sender got an acknowledgment
    DELIVER = "deliver"  # receiver released a payload to the application
    ACCEPT = "accept"  # receiver accepted (committed) a sequence number
    TIMEOUT = "timeout"  # a retransmission timer fired
    WINDOW_OPEN = "window_open"  # sender window reopened (na advanced)
    DROP = "drop"  # channel lost a message
    NOTE = "note"  # free-form annotation


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event."""

    time: float
    actor: str  # "sender", "receiver", "channel:SR", ...
    kind: EventKind
    seq: Optional[int] = None  # primary sequence number, if any
    seq_hi: Optional[int] = None  # block upper bound, for ack events
    detail: Any = None  # free-form extra payload

    def format(self) -> str:
        """Render one analyser-style line."""
        if self.seq is not None and self.seq_hi is not None:
            subject = f"({self.seq},{self.seq_hi})"
        elif self.seq is not None:
            subject = str(self.seq)
        else:
            subject = ""
        detail = f" {self.detail}" if self.detail is not None else ""
        return (
            f"{self.time:10.4f}  {self.actor:<10}  "
            f"{self.kind.value:<12} {subject}{detail}"
        )

    def decision_key(self) -> tuple:
        """The behaviour-defining projection used for trace equivalence.

        Excludes ``detail`` (which may carry variant-specific wire
        encodings) and keeps what the protocol *decided*: who did what to
        which true sequence numbers, when.
        """
        return (self.time, self.actor, self.kind, self.seq, self.seq_hi)

    def as_record(self) -> dict:
        """JSON-safe export form (the ``event`` records of ``repro.obs``).

        ``detail`` survives only if it is already a basic JSON value;
        richer payloads are stringified — the export is for analysis, not
        for reconstructing arbitrary objects.
        """
        detail = self.detail
        if detail is not None and not isinstance(detail, (bool, int, float, str)):
            detail = repr(detail)
        return {
            "type": "event",
            "time": self.time,
            "actor": self.actor,
            "kind": self.kind.value,
            "seq": self.seq,
            "seq_hi": self.seq_hi,
            "detail": detail,
        }

    @classmethod
    def from_record(cls, record: dict) -> "TraceEvent":
        """Rebuild an event from :meth:`as_record` output.

        ``TraceEvent -> as_record -> JSON -> from_record`` round-trips
        exactly whenever ``detail`` is a basic JSON value (or None).
        """
        return cls(
            time=record["time"],
            actor=record["actor"],
            kind=EventKind(record["kind"]),
            seq=record.get("seq"),
            seq_hi=record.get("seq_hi"),
            detail=record.get("detail"),
        )
