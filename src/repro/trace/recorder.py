"""Trace collection and comparison."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.sim.engine import Simulator
from repro.trace.events import EventKind, TraceEvent

__all__ = ["TraceRecorder", "NullRecorder", "decision_diff"]


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records in virtual-time order."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        self._sim = sim
        self._events: List[TraceEvent] = []
        self._capacity = capacity
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        return True

    @property
    def dropped_events(self) -> int:
        """Events discarded because the capacity bound was reached.

        A truncated trace is not the full execution; anything comparing
        traces (E7's decision diff, the refinement replay) must check
        this is zero before trusting the recording.
        """
        return self._dropped

    def record(
        self,
        actor: str,
        kind: EventKind,
        seq: Optional[int] = None,
        seq_hi: Optional[int] = None,
        detail=None,
    ) -> None:
        """Append one event stamped with the current virtual time.

        Once ``capacity`` is reached further events are counted in
        :attr:`dropped_events` rather than silently discarded.
        """
        if self._capacity is not None and len(self._events) >= self._capacity:
            self._dropped += 1
            return
        self._events.append(
            TraceEvent(
                time=self._sim.now,
                actor=actor,
                kind=kind,
                seq=seq,
                seq_hi=seq_hi,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        return self._events

    def filter(
        self,
        kind: Optional[EventKind] = None,
        actor: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria."""
        result = self._events
        if kind is not None:
            result = [e for e in result if e.kind is kind]
        if actor is not None:
            result = [e for e in result if e.actor == actor]
        if predicate is not None:
            result = [e for e in result if predicate(e)]
        return list(result)

    def count(self, kind: EventKind) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind is kind)

    def format(self, limit: Optional[int] = None) -> str:
        """Render the (possibly truncated) trace as analyser-style text."""
        events = self._events if limit is None else self._events[:limit]
        lines = [event.format() for event in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        if self._dropped:
            lines.append(
                f"!!! trace truncated: {self._dropped} event(s) dropped at "
                f"capacity {self._capacity}"
            )
        return "\n".join(lines)

    def decision_trace(self) -> List[tuple]:
        """Behaviour-defining projection of the whole trace (see E7)."""
        return [event.decision_key() for event in self._events]


class NullRecorder:
    """A recorder that drops everything; used on hot benchmark paths.

    Duck-typed stand-in for :class:`TraceRecorder` — same interface, no
    storage, so endpoints need no ``if trace is not None`` litter.
    """

    @property
    def enabled(self) -> bool:
        return False

    @property
    def dropped_events(self) -> int:
        return 0

    def record(self, actor, kind, seq=None, seq_hi=None, detail=None) -> None:
        pass

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def filter(self, kind=None, actor=None, predicate=None) -> List[TraceEvent]:
        return []

    def count(self, kind: EventKind) -> int:
        return 0

    def format(self, limit=None) -> str:
        return "(tracing disabled)"

    def decision_trace(self) -> List[tuple]:
        return []


def decision_diff(
    left: Iterable[tuple], right: Iterable[tuple], limit: int = 10
) -> List[str]:
    """First differences between two decision traces (empty = identical)."""
    differences: List[str] = []
    left_list, right_list = list(left), list(right)
    for index, (a, b) in enumerate(zip(left_list, right_list)):
        if a != b:
            differences.append(f"@{index}: {a!r} != {b!r}")
            if len(differences) >= limit:
                return differences
    if len(left_list) != len(right_list):
        differences.append(
            f"length mismatch: {len(left_list)} vs {len(right_list)} events"
        )
    return differences
