"""Real transports: the simulator's endpoints on wall clocks and sockets."""

from repro.transport.clock import RealtimeEvent, RealtimeScheduler
from repro.transport.session import UdpTransferStats, transfer_over_udp
from repro.transport.udp import UdpTransport

__all__ = [
    "RealtimeScheduler",
    "RealtimeEvent",
    "UdpTransport",
    "transfer_over_udp",
    "UdpTransferStats",
]
