"""A wall-clock scheduler with the simulator's scheduling interface.

Everything in this library — senders, receivers, timers, ack policies —
talks to a scheduler through three things: ``schedule(delay, fn, *args)``
returning a cancellable handle, the ``now`` property, and nothing else.
:class:`RealtimeScheduler` implements that same surface over
``time.monotonic`` and a worker thread, so **the exact protocol endpoint
objects that run in simulation run unchanged over real transports**
(:mod:`repro.transport.udp`).

Concurrency model: one worker thread owns every callback.  ``schedule``
may be called from any thread (the UDP receive thread, the application);
callbacks themselves always execute serialized on the worker, which is
the same single-threaded discipline the simulation provides — endpoint
code needs no locks.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, List, Optional

__all__ = ["RealtimeScheduler", "RealtimeEvent"]


class RealtimeEvent:
    """Cancellable handle for a scheduled callback (mirrors sim.Event)."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, when: float, seq: int, callback, args) -> None:
        self.time = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled

    def __lt__(self, other: "RealtimeEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class RealtimeScheduler:
    """Wall-clock event loop compatible with the simulator's interface.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with RealtimeScheduler() as clock:
            sender.attach(clock, transport)
            ...
    """

    def __init__(self) -> None:
        self._heap: List[RealtimeEvent] = []
        self._lock = threading.Condition()
        self._counter = itertools.count()
        self._origin = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._exceptions: List[BaseException] = []

    # -- the simulator-compatible surface ---------------------------------

    @property
    def now(self) -> float:
        """Seconds since the scheduler was created."""
        return time.monotonic() - self._origin

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> RealtimeEvent:
        """Schedule ``callback(*args)`` on the worker, ``delay`` from now.

        Thread-safe; a zero delay runs as soon as the worker is free.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        event = RealtimeEvent(
            self.now + delay, next(self._counter), callback, args
        )
        with self._lock:
            heapq.heappush(self._heap, event)
            self._lock.notify()
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> RealtimeEvent:
        """Run ``callback`` on the worker thread as soon as possible."""
        return self.schedule(0.0, callback, *args)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "RealtimeScheduler":
        if self._running:
            raise RuntimeError("scheduler already running")
        self._running = True
        self._thread = threading.Thread(
            target=self._run, name="repro-clock", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain_timeout: float = 1.0) -> None:
        """Stop the worker; raises the first callback exception, if any."""
        with self._lock:
            self._running = False
            self._lock.notify()
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout)
            self._thread = None
        if self._exceptions:
            raise self._exceptions[0]

    def __enter__(self) -> "RealtimeScheduler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def failed(self) -> bool:
        """True if a callback raised (the exception re-raises on stop)."""
        return bool(self._exceptions)

    # -- worker --------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while self._running:
                    while self._heap and self._heap[0].cancelled:
                        heapq.heappop(self._heap)
                    if not self._heap:
                        self._lock.wait(timeout=0.1)
                        continue
                    wait = self._heap[0].time - self.now
                    if wait <= 0:
                        event = heapq.heappop(self._heap)
                        break
                    self._lock.wait(timeout=min(wait, 0.1))
                else:
                    return
            try:
                event.callback(*event.args)
            except BaseException as error:  # noqa: BLE001 - surfaced on stop
                self._exceptions.append(error)
                with self._lock:
                    self._running = False
                    return
