"""High-level helper: ship a list of byte payloads over UDP, reliably.

:func:`transfer_over_udp` wires two block-acknowledgment endpoints (the
same objects the simulator runs) to two UDP sockets on loopback-or-
anywhere, drives the sender from a queue, and blocks until every payload
is delivered in order and acknowledged — or a wall-clock deadline passes.

This is the zero-to-reliable-transport path for library users::

    delivered = transfer_over_udp([b"one", b"two", b"three"], loss=0.2)
    assert delivered == [b"one", b"two", b"three"]
"""

from __future__ import annotations

import random
import threading
from typing import List, Optional, Sequence, Tuple

from repro.core.numbering import ModularNumbering
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.transport.clock import RealtimeScheduler
from repro.transport.udp import UdpTransport

__all__ = ["transfer_over_udp", "UdpTransferStats"]


class UdpTransferStats:
    """What a UDP transfer did, for reporting."""

    def __init__(self) -> None:
        self.delivered: List[bytes] = []
        self.data_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.duration = 0.0
        self.completed = False
        self.sender_transport: dict = {}  # datagram counters, sender socket
        self.receiver_transport: dict = {}  # ... and receiver socket
        self.corrupt_frames = 0  # frames discarded on arrival, both sockets


def transfer_over_udp(
    payloads: Sequence[bytes],
    window: int = 8,
    loss: float = 0.0,
    timeout_period: float = 0.25,
    deadline: float = 30.0,
    seed: Optional[int] = None,
    timeout_mode: str = "per_message_safe",
) -> UdpTransferStats:
    """Reliably deliver ``payloads`` over loopback UDP; return statistics.

    ``loss`` injects egress drops on both directions (loopback itself is
    effectively lossless).  ``timeout_period`` is in wall-clock seconds
    and must exceed the realistic round trip plus scheduling slack; the
    0.25 s default is very conservative for loopback.
    """
    for payload in payloads:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("UDP transfer payloads must be bytes")

    stats = UdpTransferStats()
    numbering = ModularNumbering(window)
    sender = BlockAckSender(
        window,
        numbering=numbering,
        timeout_mode=timeout_mode,
        timeout_period=timeout_period,
        reverse_lifetime=timeout_period,
    )
    receiver = BlockAckReceiver(window, numbering=numbering)
    rng = random.Random(seed)

    done = threading.Event()

    with RealtimeScheduler() as clock:
        # two bidirectional sockets: each endpoint sends AND receives on
        # its own (data out / acks in for the sender, and vice versa)
        sender_socket = UdpTransport(clock, drop_probability=loss, rng=rng)
        receiver_socket = UdpTransport(clock, drop_probability=loss, rng=rng)
        sender_socket.set_remote(receiver_socket.local_address)
        receiver_socket.set_remote(sender_socket.local_address)
        try:
            sender.attach(clock, sender_socket)
            receiver.attach(clock, receiver_socket)
            sender_socket.connect(sender.on_message)  # acks arrive here
            receiver_socket.connect(receiver.on_message)  # data arrives here

            def on_deliver(seq: int, payload) -> None:
                stats.delivered.append(payload)
                maybe_finish()

            def maybe_finish() -> None:
                if (
                    len(stats.delivered) >= len(payloads)
                    and sender.all_acknowledged
                ):
                    done.set()

            receiver.on_deliver = on_deliver

            pending = list(payloads)

            def pump() -> None:
                while pending and sender.can_accept:
                    sender.submit(pending.pop(0))
                maybe_finish()

            sender.on_window_open = pump
            # watch for completion: acks arrive asynchronously
            def watch() -> None:
                maybe_finish()
                if not done.is_set():
                    clock.schedule(0.05, watch)

            start = clock.now
            clock.call_soon(pump)
            clock.call_soon(watch)
            stats.completed = done.wait(timeout=deadline)
            stats.duration = clock.now - start
        finally:
            sender_socket.close()
            receiver_socket.close()

    stats.data_sent = sender.stats.data_sent
    stats.retransmissions = sender.stats.retransmissions
    stats.acks_sent = receiver.stats.acks_sent
    stats.sender_transport = sender_socket.stats.as_dict()
    stats.receiver_transport = receiver_socket.stats.as_dict()
    stats.corrupt_frames = (
        sender_socket.stats.corrupt_frames
        + receiver_socket.stats.corrupt_frames
    )
    return stats
