"""UDP transport: the protocol endpoints on real sockets.

:class:`UdpTransport` presents the channel surface the endpoints expect
(``send`` / ``connect``) over a UDP socket, using the byte codec from
:mod:`repro.wire`.  UDP supplies genuine loss, duplication-free datagram
semantics, and (across real networks) reordering — the paper's channel
model, as shipped by the operating system.  An optional egress drop
probability injects loss deterministically for demos and tests on
loopback, where the kernel rarely loses anything.

All decoded messages are handed to the endpoint on the
:class:`~repro.transport.clock.RealtimeScheduler` worker thread, so the
protocol code keeps its single-threaded discipline.
"""

from __future__ import annotations

import random
import socket
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.transport.clock import RealtimeScheduler
from repro.wire.codec import CorruptFrame, decode_message, encode_message

__all__ = ["TransportStats", "UdpTransport"]

Address = Tuple[str, int]


@dataclass
class TransportStats:
    """Datagram-level counters for one UDP socket.

    ``corrupt_frames`` counts arriving frames that failed codec/CRC
    validation (:class:`~repro.wire.codec.CorruptFrame`) and were
    discarded in the receive loop — real-link corruption the protocol
    layer never sees, reported alongside the endpoints' own stats.
    """

    sent: int = 0
    dropped: int = 0  # egress loss injection
    received: int = 0  # decoded and dispatched to the endpoint
    corrupt_frames: int = 0  # discarded: failed frame validation

    def as_dict(self) -> dict:
        return {
            "sent": self.sent,
            "dropped": self.dropped,
            "received": self.received,
            "corrupt_frames": self.corrupt_frames,
        }


class UdpTransport:
    """One direction-pair of UDP communication for a protocol endpoint.

    Parameters
    ----------
    scheduler:
        The realtime scheduler whose worker thread runs the endpoint.
    local:
        ``(host, port)`` to bind; port 0 picks a free port (see
        :attr:`local_address`).
    remote:
        Peer address to send to; may be set later via :meth:`set_remote`.
    drop_probability:
        Egress loss injection for tests/demos (loopback does not lose).
    encode, decode:
        Frame codec; defaults to the flat message codec of
        :mod:`repro.wire.codec`.  Duplex sessions pass the combo-frame
        codec of :mod:`repro.duplex.codec`.
    """

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        local: Address = ("127.0.0.1", 0),
        remote: Optional[Address] = None,
        drop_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        encode: Callable[[Any], bytes] = encode_message,
        decode: Callable[[bytes], Any] = decode_message,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        self.scheduler = scheduler
        self.remote = remote
        self.drop_probability = drop_probability
        self.rng = rng if rng is not None else random.Random()
        self._encode = encode
        self._decode = decode
        self._receiver: Optional[Callable[[Any], None]] = None
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind(local)
        self._socket.settimeout(0.1)
        self._closed = threading.Event()
        self._rx_thread = threading.Thread(
            target=self._receive_loop, name="repro-udp-rx", daemon=True
        )
        self.stats = TransportStats()

    # back-compat counter aliases (the counters live in ``stats`` now)
    @property
    def sent(self) -> int:
        return self.stats.sent

    @property
    def dropped(self) -> int:
        return self.stats.dropped

    @property
    def received(self) -> int:
        return self.stats.received

    @property
    def undecodable(self) -> int:
        return self.stats.corrupt_frames

    @property
    def local_address(self) -> Address:
        return self._socket.getsockname()

    def set_remote(self, remote: Address) -> None:
        self.remote = remote

    def metrics_text(self, labels: Optional[dict] = None) -> str:
        """Live counters in the Prometheus text exposition format.

        Rendered by :class:`repro.obs.metrics.TextExposition` from the
        same ``TransportStats`` the properties above read, so a real
        socket pair can be scraped (or logged) mid-session; ``labels``
        adds context such as the endpoint role or the peer address.
        """
        from repro.obs.metrics import TextExposition  # cycle guard

        return TextExposition.render_counters(
            "udp_transport", self.stats.as_dict(), labels
        )

    # -- the channel surface the endpoints expect ---------------------------

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Set the delivery callback and start receiving."""
        self._receiver = receiver
        if not self._rx_thread.is_alive():
            self._rx_thread.start()

    def send(self, message: Any) -> None:
        if self.remote is None:
            raise RuntimeError("remote address not set")
        self.stats.sent += 1
        if self.drop_probability and self.rng.random() < self.drop_probability:
            self.stats.dropped += 1
            return
        self._socket.sendto(self._encode(message), self.remote)

    # -- reception -------------------------------------------------------------

    def _receive_loop(self) -> None:
        while not self._closed.is_set():
            try:
                frame, _ = self._socket.recvfrom(65536 + 64)
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed
            try:
                message = self._decode(frame)
            except CorruptFrame:
                # corruption on the wire: count it, drop the frame
                self.stats.corrupt_frames += 1
                continue
            self.stats.received += 1
            # hand off to the scheduler's worker: endpoints stay
            # single-threaded
            self.scheduler.call_soon(self._dispatch, message)

    def _dispatch(self, message: Any) -> None:
        if self._receiver is not None:
            self._receiver(message)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._closed.set()
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "UdpTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
