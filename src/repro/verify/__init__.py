"""Formal model of the paper's protocol and an explicit-state model checker."""

from repro.verify.actions import TIMEOUT_MODES, AbstractProtocolModel, Transition
from repro.verify.explorer import Explorer, ExplorationReport, RandomWalker, WalkReport
from repro.verify.faulty import GbnViolation, NaiveGbnReceiver, NaiveGbnSender
from repro.verify.invariants import (
    InvariantViolation,
    assertion_6,
    assertion_7,
    assertion_8,
    assertion_9_10_11,
    check_invariant,
    require_invariant,
)
from repro.verify.refinement import (
    RefinementReport,
    check_refinement,
    replay_trace,
)
from repro.verify.runtime import InvariantMonitor, MonitorViolation
from repro.verify.scenarios import (
    ScenarioResult,
    run_intro_scenario_blockack,
    run_intro_scenario_gbn,
)
from repro.verify.state import SystemState, initial_state

__all__ = [
    "AbstractProtocolModel",
    "Transition",
    "TIMEOUT_MODES",
    "Explorer",
    "ExplorationReport",
    "RandomWalker",
    "WalkReport",
    "SystemState",
    "initial_state",
    "assertion_6",
    "assertion_7",
    "assertion_8",
    "assertion_9_10_11",
    "check_invariant",
    "require_invariant",
    "InvariantViolation",
    "NaiveGbnSender",
    "NaiveGbnReceiver",
    "GbnViolation",
    "ScenarioResult",
    "run_intro_scenario_gbn",
    "run_intro_scenario_blockack",
    "InvariantMonitor",
    "MonitorViolation",
    "RefinementReport",
    "check_refinement",
    "replay_trace",
]
