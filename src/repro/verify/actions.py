"""The paper's guarded-command actions as explorable transitions.

:class:`AbstractProtocolModel` is the Section-II/Section-IV system verbatim:
six protocol actions (0-5) plus environment actions for message loss.
Given a state it enumerates every enabled transition; the explorer and the
randomized progress driver both consume that enumeration.

Timeout modes
-------------

``simple``
    Paper Section II, action 2::

        timeout ≡ (na ≠ ns) ∧ (C_SR = {}) ∧ (C_RS = {}) ∧ ¬rcvd[nr]

    The four conjuncts: something is outstanding; nothing is in transit in
    either direction; and the receiver cannot make progress on its own
    (``¬rcvd[nr]`` is false whenever action 4 or 5 of the receiver is
    enabled, because ``rcvd`` is never cleared).  Only then may the sender
    retransmit ``na``.

``per_message``
    Paper Section IV, action 2'::

        timeout(i) ≡ (na ≤ i < ns) ∧ ¬ackd[i] ∧ (*SR^i = 0)
                     ∧ (i < nr ∨ ¬rcvd[i]) ∧ (*RS^i = 0)

    One virtual timer per outstanding message; distinct messages can be
    retransmitted without serialized timeout periods between them.

``impatient``
    A deliberately broken guard — retransmit whenever anything is
    outstanding.  Violates assertion 8 (two copies of one message in
    transit); exists so the model checker can show the invariant is not
    vacuous (E8 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.verify.state import SystemState, initial_state

__all__ = ["Transition", "AbstractProtocolModel", "TIMEOUT_MODES"]

TIMEOUT_MODES = ("simple", "per_message", "impatient")


@dataclass(frozen=True)
class Transition:
    """One enabled action instance: a label plus the successor state."""

    action: str  # which paper action (e.g. "0:send", "3:recv_data")
    detail: str  # instance detail (which message), for witness traces
    target: SystemState
    is_environment: bool = False  # loss actions: environment, not protocol

    def __str__(self) -> str:
        return f"{self.action}[{self.detail}]" if self.detail else self.action


class AbstractProtocolModel:
    """The abstract block-acknowledgment protocol as a transition system.

    Parameters
    ----------
    window:
        The paper's ``w``.
    max_send:
        Exploration bound: the sender stops allocating new sequence
        numbers at this value, making the reachable state space finite.
    timeout_mode:
        One of :data:`TIMEOUT_MODES`; see module docstring.
    allow_loss:
        If True, environment transitions that lose any in-transit message
        are included (the paper's fault model).
    """

    def __init__(
        self,
        window: int,
        max_send: int,
        timeout_mode: str = "simple",
        allow_loss: bool = True,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if max_send < 0:
            raise ValueError(f"max_send must be non-negative, got {max_send}")
        if timeout_mode not in TIMEOUT_MODES:
            raise ValueError(
                f"timeout_mode must be one of {TIMEOUT_MODES}, got {timeout_mode!r}"
            )
        self.window = window
        self.max_send = max_send
        self.timeout_mode = timeout_mode
        self.allow_loss = allow_loss

    # ------------------------------------------------------------------

    def initial(self) -> SystemState:
        return initial_state()

    def is_final(self, state: SystemState) -> bool:
        """Everything sent, delivered, acknowledged; channels drained."""
        return (
            state.na == self.max_send
            and state.ns == self.max_send
            and state.nr == self.max_send
            and state.vr == self.max_send
            and not state.c_sr
            and not state.c_rs
        )

    # ------------------------------------------------------------------
    # transition enumeration
    # ------------------------------------------------------------------

    def transitions(self, state: SystemState) -> Iterator[Transition]:
        """All enabled transitions (protocol first, then environment)."""
        yield from self._send(state)
        yield from self._recv_ack(state)
        yield from self._timeout(state)
        yield from self._recv_data(state)
        yield from self._advance_vr(state)
        yield from self._send_ack(state)
        if self.allow_loss:
            yield from self._losses(state)

    def protocol_transitions(self, state: SystemState) -> list[Transition]:
        """Enabled protocol actions only (deadlock is judged on these)."""
        return [t for t in self.transitions(state) if not t.is_environment]

    # -- action 0: send a new data message -------------------------------

    def _send(self, state: SystemState) -> Iterator[Transition]:
        if state.ns < state.na + self.window and state.ns < self.max_send:
            target = state.with_sr_added(state.ns).replace(ns=state.ns + 1)
            yield Transition("0:send", f"data {state.ns}", target)

    # -- action 1: receive a block acknowledgment ------------------------

    def _recv_ack(self, state: SystemState) -> Iterator[Transition]:
        seen = set()
        for pair in state.c_rs:
            if pair in seen:  # identical pairs yield identical successors
                continue
            seen.add(pair)
            lo, hi = pair
            after = state.with_rs_removed(pair)
            ackd = set(after.ackd)
            ackd.update(range(lo, hi + 1))
            na = after.na
            while na in ackd:  # paper: do ackd[na] -> na := na + 1 od
                na += 1
            target = after.replace(na=na, ackd=frozenset(ackd))
            yield Transition("1:recv_ack", f"ack ({lo},{hi})", target)

    # -- action 2 / 2': timeout retransmission ---------------------------

    def _timeout(self, state: SystemState) -> Iterator[Transition]:
        if self.timeout_mode == "simple":
            enabled = (
                state.na != state.ns
                and not state.c_sr
                and not state.c_rs
                and not state.is_rcvd(state.nr)
            )
            if enabled:
                yield Transition(
                    "2:timeout", f"resend {state.na}", state.with_sr_added(state.na)
                )
        elif self.timeout_mode == "per_message":
            for seq in range(state.na, state.ns):
                enabled = (
                    not state.is_ackd(seq)
                    and state.count_sr(seq) == 0
                    and (seq < state.nr or not state.is_rcvd(seq))
                    and state.count_rs(seq) == 0
                )
                if enabled:
                    yield Transition(
                        "2':timeout(i)", f"resend {seq}", state.with_sr_added(seq)
                    )
        else:  # impatient: deliberately unsafe
            if state.na != state.ns:
                yield Transition(
                    "2!:impatient", f"resend {state.na}", state.with_sr_added(state.na)
                )

    # -- action 3: receive a data message ---------------------------------

    def _recv_data(self, state: SystemState) -> Iterator[Transition]:
        seen = set()
        for seq in state.c_sr:
            if seq in seen:
                continue
            seen.add(seq)
            after = state.with_sr_removed(seq)
            if seq < after.nr:
                target = after.with_rs_added((seq, seq))
                yield Transition("3:recv_data", f"dup data {seq}", target)
            else:
                target = after.replace(rcvd=after.rcvd | {seq})
                yield Transition("3:recv_data", f"data {seq}", target)

    # -- action 4: slide vr over the received run -------------------------

    def _advance_vr(self, state: SystemState) -> Iterator[Transition]:
        if state.is_rcvd(state.vr):
            target = state.replace(vr=state.vr + 1)
            yield Transition("4:advance_vr", f"vr -> {state.vr + 1}", target)

    # -- action 5: emit the pending block acknowledgment ------------------

    def _send_ack(self, state: SystemState) -> Iterator[Transition]:
        if state.nr < state.vr:
            pair = (state.nr, state.vr - 1)
            target = state.with_rs_added(pair).replace(nr=state.vr)
            yield Transition("5:send_ack", f"ack {pair}", target)

    # -- environment: message loss ----------------------------------------

    def _losses(self, state: SystemState) -> Iterator[Transition]:
        seen = set()
        for seq in state.c_sr:
            if seq in seen:
                continue
            seen.add(seq)
            yield Transition(
                "env:lose_data",
                f"data {seq}",
                state.with_sr_removed(seq),
                is_environment=True,
            )
        seen_pairs = set()
        for pair in state.c_rs:
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            yield Transition(
                "env:lose_ack",
                f"ack {pair}",
                state.with_rs_removed(pair),
                is_environment=True,
            )
